//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! plain-old-data types; nothing actually serializes through serde. These
//! marker traits are blanket-implemented for every type so any bound written
//! against them is satisfied, and the re-exported derive macros expand to
//! nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
