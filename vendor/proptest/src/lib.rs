//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Implements value generation (no shrinking): `Strategy` with `prop_map`,
//! `Just`, numeric range strategies, tuples, `any::<T>()`,
//! `collection::vec`, weighted `prop_oneof!`, `prop_assert*!`,
//! `prop_assume!`, and the `proptest!` runner macro with
//! `#![proptest_config(..)]` support.
//!
//! Case generation is deterministic: the RNG stream for a test case is
//! derived from the test's module path, name, and case index, so failures
//! reproduce across runs. When a case fails the generated inputs are printed
//! in full (`{:?}`) instead of being shrunk; paste them into a regular unit
//! test to investigate.
//!
//! `*.proptest-regressions` files are not consulted — recorded regression
//! seeds only replay under the real proptest's generator. Keep the files:
//! they document the concrete shrunk inputs of past failures.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom};

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case; stable across runs and platforms.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run-time knobs accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; local rejects are cheap `return`s.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_local_rejects: 65_536,
        }
    }
}

/// Why a test case did not pass; the error type of `proptest!` bodies.
#[derive(Debug)]
pub enum TestCaseError {
    /// Precondition not met (`prop_assume!`); the case is skipped.
    Reject(String),
    /// Explicit failure; the test aborts and prints its inputs.
    Fail(String),
}

impl TestCaseError {
    /// An explicit failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy covering the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Weighted choice between strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V: Debug> Union<V> {
    /// Build from `(weight, strategy)` arms. Panics if `arms` is empty or
    /// all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.arms {
            if pick < u64::from(*w) {
                return strat.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

/// Box one `prop_oneof!` arm, unifying its value type with its siblings.
pub fn weighted_arm<S>(weight: u32, strategy: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(strategy))
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::weighted_arm($weight, $strategy)),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::weighted_arm(1, $strategy)),+])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Without shrinking there is nothing to redo, so a rejected case simply
/// returns early and counts as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u64..10, v in collection::vec(any::<u32>(), 1..4)) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __values = ( $($crate::Strategy::generate(&($strategy), &mut __rng),)+ );
                let __repr = ::std::format!("{:#?}", __values);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            let ( $($pat,)+ ) = __values;
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                let __print_inputs = || {
                    ::std::eprintln!(
                        "proptest shim: {} failed at case {}/{} with inputs:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __repr,
                    );
                };
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Reject(_),
                    )) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Fail(__msg),
                    )) => {
                        __print_inputs();
                        ::std::panic!("{}", __msg);
                    }
                    ::std::result::Result::Err(__panic) => {
                        __print_inputs();
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }

        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 5i32..8), f in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..8).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_vec_and_map(
            v in crate::collection::vec(prop_oneof![3 => Just(1u8), 1 => Just(2u8)], 1..20),
            w in crate::collection::vec(any::<u32>().prop_map(|x| x % 7), 4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| *x == 1 || *x == 2));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|x| *x < 7));
        }

        #[test]
        fn assume_skips(x in 0u64..4) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("some::test", 5);
        let mut b = crate::TestRng::for_case("some::test", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("some::test", 6);
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
