//! Offline stand-in for the slice of `criterion` the bench targets use.
//!
//! No statistics are collected. Each registered benchmark routine is executed
//! once and its wall-clock time printed, so `cargo bench` still works as a
//! smoke test and `cargo clippy --all-targets` has something real to check.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility; sampling is not implemented.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for compatibility; measurement windows are not implemented.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; warm-up is not implemented.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Run `routine` once and report its wall-clock time.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut routine);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, routine: &mut F) {
    let mut bencher = Bencher { elapsed: None };
    let start = Instant::now();
    routine(&mut bencher);
    let elapsed = bencher.elapsed.unwrap_or_else(|| start.elapsed());
    eprintln!("bench {id}: {elapsed:?} (single pass; offline criterion shim)");
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run `routine` once under `group/id` and report its wall-clock time.
    pub fn bench_function<I, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        I: Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut routine);
        self
    }

    /// Like [`Self::bench_function`] with an explicit input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: Display,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let mut bencher = Bencher { elapsed: None };
        let start = Instant::now();
        routine(&mut bencher, input);
        let elapsed = bencher.elapsed.unwrap_or_else(|| start.elapsed());
        eprintln!(
            "bench {}/{}: {:?} (single pass; offline criterion shim)",
            self.name, id, elapsed
        );
        self
    }

    /// Accepted for compatibility.
    #[must_use]
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing context passed to benchmark routines.
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Execute `routine` once, recording its duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let _ = black_box(routine());
        self.elapsed = Some(start.elapsed());
    }

    /// Execute `setup` then `routine` once, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let _ = black_box(routine(input));
        self.elapsed = Some(start.elapsed());
    }
}

/// Batch sizing hints; ignored by the shim.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name plus parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
