//! Offline stand-in for the slice of `rand` this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float half-open ranges.
//!
//! Workload generation needs determinism and "good enough" uniformity, not
//! cryptographic quality, so the core is SplitMix64. Integer sampling uses a
//! simple modulo reduction; the bias is negligible for the range widths the
//! workloads draw from.

use core::ops::Range;

/// Random number generator types.
pub mod rngs {
    /// Deterministic generator with a SplitMix64 core.
    ///
    /// Unrelated to the real `rand::rngs::StdRng` (ChaCha) beyond the name;
    /// streams are stable across runs for a given seed, which is what the
    /// workloads and examples rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        /// Advance the SplitMix64 state and return the next 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use rngs::StdRng;

/// Construction of a generator from simple seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut rng = StdRng {
            state: seed ^ 0x6A09_E667_F3BC_C908,
        };
        // One warm-up step so nearby seeds diverge immediately.
        rng.next_u64();
        rng
    }
}

/// Types that can be drawn uniformly from a half-open `start..end` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw a value in `[range.start, range.end)`.
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range: empty range");
        let unit = (rng.next_u64() >> 40) as f64 * (1.0 / (1u64 << 24) as f64);
        range.start + (range.end - range.start) * unit as f32
    }
}

/// Convenience sampling methods, mirroring `rand::RngExt`.
pub trait RngExt {
    /// Draw a uniform value from the half-open range `start..end`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
}

impl RngExt for StdRng {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
