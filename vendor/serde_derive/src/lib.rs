//! Offline stand-in for `serde_derive`.
//!
//! This workspace derives `Serialize`/`Deserialize` on a few plain-old-data
//! types but never performs real serialization, so the derives only need to
//! compile. Both expand to nothing; the blanket impls in the companion
//! `serde` shim satisfy any trait bounds.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
