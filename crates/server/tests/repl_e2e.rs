//! End-to-end replication: a primary server and a live standby on
//! loopback sockets, real pull threads, real promotion.

#![allow(clippy::unwrap_used)]

use mmdb_core::{Algorithm, MmdbConfig};
use mmdb_server::{ReplOptions, Server, ServerConfig, ServerHandle};
use mmdb_shard::ShardedMmdb;
use mmdb_types::RecordId;
use mmdb_wire::{Client, ErrorCode, Request, Response, WireError, REPL_VERSION};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 2;

fn spawn(repl: ReplOptions, repl_sync: bool) -> ServerHandle {
    let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
    let db = ShardedMmdb::open_in_memory(cfg, SHARDS).unwrap();
    let config = ServerConfig {
        poll_interval: Duration::from_millis(10),
        checkpoint_interval: Some(Duration::from_millis(5)),
        repl: ReplOptions { repl_sync, ..repl },
        ..ServerConfig::default()
    };
    Server::spawn_sharded(db, config).unwrap()
}

fn spawn_primary(repl_sync: bool) -> ServerHandle {
    spawn(ReplOptions::default(), repl_sync)
}

fn spawn_standby(primary: &ServerHandle) -> ServerHandle {
    spawn(
        ReplOptions {
            replica_of: Some(primary.local_addr().to_string()),
            ..ReplOptions::default()
        },
        false,
    )
}

/// Polls until both servers report the same storage fingerprint.
fn wait_converged(primary_addr: &str, standby_addr: &str) -> u64 {
    let mut a = Client::connect(primary_addr).unwrap();
    let mut b = Client::connect(standby_addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let fp_primary = a.fingerprint().unwrap();
        let fp_standby = b.fingerprint().unwrap();
        if fp_primary == fp_standby {
            return fp_primary;
        }
        assert!(
            Instant::now() < deadline,
            "standby never converged: primary {fp_primary:#x}, standby {fp_standby:#x}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn standby_replays_live_writes_and_serves_reads() {
    let primary = spawn_primary(false);
    let standby = spawn_standby(&primary);
    let primary_addr = primary.local_addr().to_string();
    let standby_addr = standby.local_addr().to_string();

    let mut c = Client::connect(&primary_addr).unwrap();
    let words = c.info().unwrap().record_words as usize;
    for i in 0..60u64 {
        c.retry_transient(200, |c| c.put(RecordId(i % 32), &vec![i as u32 + 1; words]))
            .unwrap();
    }
    wait_converged(&primary_addr, &standby_addr);

    // the standby serves committed reads at its applied watermark
    let mut s = Client::connect(&standby_addr).unwrap();
    assert_eq!(s.get(RecordId(59 % 32)).unwrap(), vec![60u32; words]);

    // ... but refuses writes while unpromoted
    match s.put(RecordId(0), &vec![9; words]) {
        Err(WireError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::Invalid);
            assert!(message.contains("read-only replica"), "{message}");
        }
        other => panic!("write on standby must fail, got {other:?}"),
    }
    assert!(!standby.is_writable());

    primary.shutdown_join();
    standby.shutdown_join();
}

#[test]
fn promotion_flips_standby_writable_sub_second() {
    let primary = spawn_primary(false);
    let standby = spawn_standby(&primary);
    let primary_addr = primary.local_addr().to_string();
    let standby_addr = standby.local_addr().to_string();

    let mut c = Client::connect(&primary_addr).unwrap();
    let words = c.info().unwrap().record_words as usize;
    for i in 0..20u64 {
        c.retry_transient(200, |c| c.put(RecordId(i), &vec![0xC0DE; words]))
            .unwrap();
    }
    wait_converged(&primary_addr, &standby_addr);

    // lose the primary abruptly, then promote the standby
    primary.shutdown_join();
    let t0 = Instant::now();
    let mut s = Client::connect(&standby_addr).unwrap();
    s.promote().unwrap();
    let took = t0.elapsed();
    assert!(
        took < Duration::from_secs(1),
        "promotion took {took:?}, expected sub-second"
    );
    assert!(standby.is_writable());

    // replayed state survived promotion and the server now takes writes
    assert_eq!(s.get(RecordId(3)).unwrap(), vec![0xC0DE; words]);
    s.retry_transient(200, |c| c.put(RecordId(3), &vec![0xBEEF; words]))
        .unwrap();
    assert_eq!(s.get(RecordId(3)).unwrap(), vec![0xBEEF; words]);

    standby.shutdown_join();
}

#[test]
fn late_standby_bootstraps_past_a_truncated_log() {
    let primary = spawn_primary(false);
    let primary_addr = primary.local_addr().to_string();

    // Write, then give the primary's checkpointers time to complete
    // enough checkpoints that auto-truncation cuts the log prefix on
    // every shard — the history a standby would need is gone from the
    // log before one ever attaches.
    let mut c = Client::connect(&primary_addr).unwrap();
    let words = c.info().unwrap().record_words as usize;
    for i in 0..40u64 {
        c.retry_transient(200, |c| c.put(RecordId(i), &vec![i as u32 + 7; words]))
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats_json().unwrap();
        if stats.contains("\"log.truncations\"") || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // A standby attaching now cannot replay from LSN 0; it must re-seed
    // from the primary's database and stream from there.
    let standby = spawn_standby(&primary);
    let standby_addr = standby.local_addr().to_string();
    wait_converged(&primary_addr, &standby_addr);
    let mut s = Client::connect(&standby_addr).unwrap();
    assert_eq!(s.get(RecordId(11)).unwrap(), vec![18u32; words]);

    // ... and live writes after the bootstrap keep flowing
    c.retry_transient(200, |c| c.put(RecordId(50), &vec![0xABCD; words]))
        .unwrap();
    wait_converged(&primary_addr, &standby_addr);
    assert_eq!(s.get(RecordId(50)).unwrap(), vec![0xABCD; words]);

    primary.shutdown_join();
    standby.shutdown_join();
}

#[test]
fn promote_fires_callback_and_non_replica_refuses() {
    // a standalone server refuses Promote
    let standalone = spawn_primary(false);
    let mut c = Client::connect(standalone.local_addr().to_string()).unwrap();
    match c.promote() {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Invalid),
        other => panic!("promote on standalone must fail, got {other:?}"),
    }
    standalone.shutdown_join();

    // a replica's promotion fires the on_promote callback exactly once
    let primary = spawn_primary(false);
    let fired = Arc::new(AtomicBool::new(false));
    let standby = {
        let fired = Arc::clone(&fired);
        spawn(
            ReplOptions {
                replica_of: Some(primary.local_addr().to_string()),
                on_promote: Some(Arc::new(move || fired.store(true, Ordering::SeqCst))),
                ..ReplOptions::default()
            },
            false,
        )
    };
    let mut s = Client::connect(standby.local_addr().to_string()).unwrap();
    s.promote().unwrap();
    assert!(fired.load(Ordering::SeqCst));
    primary.shutdown_join();
    standby.shutdown_join();
}

#[test]
fn version_negotiation_is_in_protocol_and_picks_the_newest_common() {
    let primary = spawn_primary(false);
    let mut c = Client::connect(primary.local_addr().to_string()).unwrap();

    // a standby from a future build with no common version is refused
    // with a structured error, not a dropped connection
    let future = Request::ReplHello {
        ver_min: REPL_VERSION + 1,
        ver_max: REPL_VERSION + 5,
    };
    match c.request(&future) {
        Err(WireError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::Invalid);
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("disjoint version range must be refused, got {other:?}"),
    }
    // ... and an inverted range is malformed, same structured refusal
    let inverted = Request::ReplHello {
        ver_min: REPL_VERSION,
        ver_max: 0,
    };
    assert!(matches!(
        c.request(&inverted),
        Err(WireError::Remote {
            code: ErrorCode::Invalid,
            ..
        })
    ));
    // the rejection left the connection healthy: an old client that
    // never speaks repl opcodes keeps its full legacy surface
    c.ping().unwrap();
    assert!(c.info().unwrap().record_words > 0);

    // a newer standby offering an overlapping range negotiates down to
    // the newest version this primary speaks
    let overlapping = Request::ReplHello {
        ver_min: 1,
        ver_max: REPL_VERSION + 3,
    };
    match c.request(&overlapping) {
        Ok(Response::ReplWelcome(w)) => {
            assert_eq!(w.ver, REPL_VERSION);
            assert_eq!(w.shards, SHARDS as u32);
        }
        other => panic!("overlapping range must negotiate, got {other:?}"),
    }
    primary.shutdown_join();
}

#[test]
fn background_compaction_respects_standby_pin_and_causes_no_bootstrap_gaps() {
    // A declared primary with the background log-maintenance thread
    // running aggressively: rotation seals chunks and compaction wants
    // to rewrite them, but the replication truncation pin — seeded at
    // startup, raised only by standby acks — must stall both, so a
    // standby that attaches late never finds a gap (and the compactor
    // is never the cause of a `repl.bootstrap_gaps` refusal).
    let dir = std::env::temp_dir().join(format!("mmdb-repl-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
    cfg.log_chunk_bytes = 4096; // many cold chunks under the workload
    let db = ShardedMmdb::open_dir(cfg, &dir, 1).unwrap().0;
    let primary = Server::spawn_sharded(
        db,
        ServerConfig {
            poll_interval: Duration::from_millis(10),
            checkpoint_interval: Some(Duration::from_millis(5)),
            compact_interval: Some(Duration::from_millis(5)),
            repl: ReplOptions {
                primary: true,
                ..ReplOptions::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let primary_addr = primary.local_addr().to_string();

    // Overwrite a tiny hot set so nearly every frame is superseded —
    // maximal temptation for the compactor — across many chunk seals.
    let mut c = Client::connect(&primary_addr).unwrap();
    let words = c.info().unwrap().record_words as usize;
    for i in 0..120u64 {
        c.retry_transient(200, |c| c.put(RecordId(i % 4), &vec![i as u32 + 1; words]))
            .unwrap();
    }
    // let checkpoints and maintenance passes race the pin for a while
    let deadline = Instant::now() + Duration::from_secs(5);
    while primary.compaction_passes() < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        primary.compaction_passes() >= 3,
        "maintenance thread never ran"
    );

    // now the standby attaches — every log byte from the pin onward
    // must still be there, byte-exact
    let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
    let standby_db = ShardedMmdb::open_in_memory(cfg, 1).unwrap();
    let standby = Server::spawn_sharded(
        standby_db,
        ServerConfig {
            poll_interval: Duration::from_millis(10),
            checkpoint_interval: Some(Duration::from_millis(5)),
            repl: ReplOptions {
                replica_of: Some(primary_addr.clone()),
                ..ReplOptions::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let standby_addr = standby.local_addr().to_string();

    // more writes (and maintenance passes) while the standby pulls
    for i in 0..60u64 {
        c.retry_transient(200, |c| {
            c.put(RecordId(i % 4), &vec![0xA000 + i as u32; words])
        })
        .unwrap();
    }
    wait_converged(&primary_addr, &standby_addr);

    let standby_db = standby.shutdown_join();
    let snap = standby_db.metrics_snapshot();
    assert_eq!(
        snap.counter("repl.bootstrap_gaps").unwrap_or(0),
        0,
        "standby hit a bootstrap gap — compaction or truncation cut pinned bytes"
    );
    primary.shutdown_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn semi_sync_commits_complete_with_standby_attached() {
    let primary = spawn_primary(true);
    let standby = spawn_standby(&primary);
    let primary_addr = primary.local_addr().to_string();
    let standby_addr = standby.local_addr().to_string();

    let mut c = Client::connect(&primary_addr).unwrap();
    let words = c.info().unwrap().record_words as usize;
    // semi-sync engages on the standby's hello; every one of these
    // commits then waits for a standby ack before returning
    for i in 0..30u64 {
        c.retry_transient(200, |c| c.put(RecordId(i), &vec![5; words]))
            .unwrap();
    }
    let fp = wait_converged(&primary_addr, &standby_addr);
    assert_ne!(fp, 0, "non-trivial converged state");

    standby.shutdown_join();
    primary.shutdown_join();
}
