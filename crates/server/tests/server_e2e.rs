//! End-to-end tests: a real server on a loopback socket, real clients.

#![allow(clippy::unwrap_used)]

use mmdb_core::{Algorithm, Mmdb, MmdbConfig};
use mmdb_obs::MetricsSnapshot;
use mmdb_server::{run_load, LoadConfig, Server, ServerConfig, ServerHandle, WorkloadKind};
use mmdb_types::RecordId;
use mmdb_wire::{read_frame, write_frame, Client, ErrorCode, Request, Response, WireError};
use std::time::{Duration, Instant};

fn spawn_server(algorithm: Algorithm, ckpt_interval: Option<Duration>) -> ServerHandle {
    let db = Mmdb::open_in_memory(MmdbConfig::small(algorithm)).unwrap();
    let config = ServerConfig {
        poll_interval: Duration::from_millis(10),
        checkpoint_interval: ckpt_interval,
        ..ServerConfig::default()
    };
    Server::spawn(db, config).unwrap()
}

#[test]
fn eight_closed_loop_connections_under_continuous_checkpoints() {
    let handle = spawn_server(Algorithm::FuzzyCopy, Some(Duration::from_millis(1)));
    let addr = handle.local_addr().to_string();

    let cfg = LoadConfig {
        addr: addr.clone(),
        connections: 8,
        txns_per_conn: 50,
        updates_per_txn: 4,
        seed: 7,
        workload: WorkloadKind::Uniform,
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).unwrap();
    assert_eq!(report.errors, 0, "no protocol or non-transient errors");
    assert_eq!(report.committed, 8 * 50);
    assert_eq!(report.latency_us.count, report.committed);
    assert!(report.throughput_tps > 0.0);

    // continuous checkpointing really ran alongside the load
    assert!(
        handle.checkpoints_completed() >= 1,
        "expected background checkpoints, saw {}",
        handle.checkpoints_completed()
    );

    // request telemetry is visible through the wire Stats op
    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats_json().unwrap();
    let snap = MetricsSnapshot::from_json(&stats).unwrap();
    let req_hist = snap.hist("net.request_ns").expect("request span histogram");
    assert!(req_hist.count >= 8 * 50, "spans for every request");
    assert!(snap.counter("net.requests").unwrap_or(0) >= 8 * 50);
    assert!(snap.counter("net.op.batch").unwrap_or(0) >= 8 * 50);
    assert_eq!(
        snap.counter("net.protocol_errors"),
        None,
        "no protocol errors"
    );

    let db = handle.shutdown_join();
    assert_eq!(db.txn_committed(), 8 * 50);
}

#[test]
fn two_color_transients_are_absorbed_as_retries_not_errors() {
    let handle = spawn_server(Algorithm::TwoColorCopy, Some(Duration::from_millis(1)));
    let cfg = LoadConfig {
        addr: handle.local_addr().to_string(),
        connections: 8,
        txns_per_conn: 30,
        updates_per_txn: 4,
        seed: 11,
        workload: WorkloadKind::Zipf(0.8),
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).unwrap();
    assert_eq!(report.errors, 0);
    assert_eq!(report.committed, 8 * 30);
    let db = handle.shutdown_join();
    assert_eq!(db.txn_committed(), 8 * 30);
}

#[test]
fn interactive_transaction_reads_its_own_writes() {
    let handle = spawn_server(Algorithm::FuzzyCopy, None);
    let mut c = Client::connect(handle.local_addr()).unwrap();

    let info = c.info().unwrap();
    assert!(info.n_records > 0);
    let value: Vec<u32> = (0..info.record_words).collect();

    let txn = c.begin().unwrap();
    c.write(txn, RecordId(3), &value).unwrap();
    assert_eq!(c.read(txn, RecordId(3)).unwrap(), value);
    // committed view unchanged until commit
    assert_ne!(c.get(RecordId(3)).unwrap(), value);
    c.commit(txn).unwrap();
    assert_eq!(c.get(RecordId(3)).unwrap(), value);

    // abort path: staged write discarded
    let txn = c.begin().unwrap();
    let other: Vec<u32> = vec![9; info.record_words as usize];
    c.write(txn, RecordId(3), &other).unwrap();
    c.abort(txn).unwrap();
    assert_eq!(c.get(RecordId(3)).unwrap(), value);

    handle.shutdown_join();
}

#[test]
fn disconnect_aborts_open_transactions() {
    let handle = spawn_server(Algorithm::FuzzyCopy, None);
    let addr = handle.local_addr();

    let before;
    {
        let mut c = Client::connect(addr).unwrap();
        let info = c.info().unwrap();
        before = c.get(RecordId(5)).unwrap();
        let mut value = before.clone();
        value[0] = value[0].wrapping_add(0xAA);
        assert_eq!(value.len(), info.record_words as usize);
        let txn = c.begin().unwrap();
        c.write(txn, RecordId(5), &value).unwrap();
        // drop without commit
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.txns_aborted_on_disconnect() == 0 {
        assert!(Instant::now() < deadline, "server never aborted the orphan");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut c = Client::connect(addr).unwrap();
    assert_eq!(
        c.get(RecordId(5)).unwrap(),
        before,
        "uncommitted write must not be visible"
    );
    handle.shutdown_join();
}

#[test]
fn wire_checkpoint_ops_and_fingerprint() {
    let handle = spawn_server(Algorithm::FuzzyCopy, None);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let info = c.info().unwrap();
    assert_eq!(info.algorithm, "FUZZYCOPY");

    let (_txn, runs) = c
        .put(RecordId(0), &vec![1u32; info.record_words as usize])
        .unwrap();
    assert!(runs >= 1);

    let summary = c.checkpoint_sync().unwrap();
    assert!(summary.segments_flushed >= 1);

    let fp1 = c.fingerprint().unwrap();
    let fp2 = c.fingerprint().unwrap();
    assert_eq!(fp1, fp2, "fingerprint is stable with no writes");

    handle.shutdown_join();
}

#[test]
fn shutdown_over_the_wire_stops_the_server() {
    let handle = spawn_server(Algorithm::FuzzyCopy, Some(Duration::from_millis(1)));
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.ping().unwrap();
    c.shutdown().unwrap();

    // the engine comes back out and is intact
    let db = handle.shutdown_join();
    assert!(!db.is_crashed());
    let _ = db.fingerprint(); // engine is whole enough to walk

    // and the port stops accepting (either refused, or accepted by a
    // lingering backlog entry and then closed without service)
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err(), "server must not serve after shutdown"),
    }
}

#[test]
fn malformed_frames_get_an_error_frame_then_close() {
    let handle = spawn_server(Algorithm::FuzzyCopy, None);
    let stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    let mut c = Client::over(stream.try_clone().unwrap()).unwrap();

    // a frame whose payload is garbage (bad version byte)
    {
        let mut w = stream.try_clone().unwrap();
        write_frame(&mut w, &[0xFF, 0xFF, 0x00]).unwrap();
    }
    match c.request(&Request::Ping) {
        // the server answers the garbage with a Protocol error frame,
        // which the client surfaces as Remote, then closes
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error frame, got {other:?}"),
    }
    handle.shutdown_join();
}

#[test]
fn request_only_checkpointer_drives_async_checkpoints() {
    // The idle checkpointer polls coarsely in request-only mode; a
    // client-started checkpoint must still be picked up and driven.
    let handle = spawn_server(Algorithm::FuzzyCopy, None);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(handle.checkpoints_completed(), 0);
    c.checkpoint_async().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.checkpoints_completed() == 0 {
        assert!(
            Instant::now() < deadline,
            "checkpointer never drove the requested checkpoint"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown_join();
}

#[test]
fn frame_straddling_poll_timeouts_is_not_torn() {
    // Regression: the server polls reads with a short SO_RCVTIMEO; a
    // frame arriving slower than the poll interval must reassemble,
    // not lose its already-received bytes and desynchronize.
    let handle = spawn_server(Algorithm::FuzzyCopy, None);
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let payload = Request::Ping.encode();
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    // dribble one byte at a time, pausing past the server's 10ms poll
    // interval so its read timeout fires repeatedly mid-frame
    for b in frame {
        use std::io::Write;
        stream.write_all(&[b]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(25));
    }
    let resp = read_frame(&mut stream).unwrap().expect("response frame");
    match Response::decode(&resp).unwrap() {
        Response::Pong => {}
        other => panic!("expected Pong, got {other:?}"),
    }
    handle.shutdown_join();
}

#[test]
fn shutdown_is_not_held_hostage_by_a_chatty_client() {
    // Regression: a client that keeps sending requests used to receive
    // ShuttingDown error frames forever, and shutdown_join waited on
    // its worker until the client voluntarily disconnected.
    let handle = spawn_server(Algorithm::FuzzyCopy, None);
    let addr = handle.local_addr();
    let chatty = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        loop {
            match c.ping() {
                // keep hammering through ShuttingDown refusals, exactly
                // what the bug needed to manifest
                Ok(()) | Err(WireError::Remote { .. }) => {}
                Err(_) => break, // server closed the connection
            }
        }
    });
    std::thread::sleep(Duration::from_millis(50)); // let the client get going
    handle.stop();
    let t0 = Instant::now();
    let _db = handle.shutdown_join();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown must not wait for the chatty client"
    );
    chatty.join().unwrap();
}

#[test]
fn out_of_range_and_bad_size_map_to_typed_errors() {
    let handle = spawn_server(Algorithm::FuzzyCopy, None);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let info = c.info().unwrap();

    match c.get(RecordId(info.n_records + 10)) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::OutOfRange),
        other => panic!("expected OutOfRange, got {other:?}"),
    }
    match c.put(RecordId(0), &[1u32; 1000]) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Invalid),
        other => panic!("expected Invalid (bad record size), got {other:?}"),
    }
    // the connection survives typed errors
    c.ping().unwrap();
    handle.shutdown_join();
}

#[test]
fn bench_net_json_from_a_real_run_validates() {
    let handle = spawn_server(Algorithm::CouCopy, Some(Duration::from_millis(1)));
    let addr = handle.local_addr().to_string();
    let cfg = LoadConfig {
        addr: addr.clone(),
        connections: 8,
        txns_per_conn: 10,
        updates_per_txn: 2,
        seed: 3,
        workload: WorkloadKind::Zipf(0.6),
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).unwrap();
    assert_eq!(report.errors, 0);
    let mut c = Client::connect(&addr).unwrap();
    let info = c.info().unwrap();
    let json = mmdb_server::bench_net_json(&cfg, &report, &info, handle.checkpoints_completed());
    mmdb_server::validate_bench_net_json(&json).unwrap();
    handle.shutdown_join();
}

#[test]
fn sharded_server_serves_affine_and_cross_shard_load() {
    let db = mmdb_shard::ShardedMmdb::open_in_memory(MmdbConfig::small(Algorithm::FuzzyCopy), 4)
        .unwrap();
    let config = ServerConfig {
        poll_interval: Duration::from_millis(10),
        checkpoint_interval: Some(Duration::from_millis(1)),
        ..ServerConfig::default()
    };
    let handle = Server::spawn_sharded(db, config).unwrap();
    let addr = handle.local_addr().to_string();

    let cfg = LoadConfig {
        addr: addr.clone(),
        connections: 8,
        txns_per_conn: 25,
        updates_per_txn: 4,
        seed: 17,
        workload: WorkloadKind::Uniform,
        shards: 4,
        cross_fraction: 0.2,
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).unwrap();
    assert_eq!(report.errors, 0);
    assert_eq!(report.committed, 8 * 25);

    // the merged Stats snapshot shows the topology and both txn classes
    let mut c = Client::connect(&addr).unwrap();
    let stats = c.stats_json().unwrap();
    let snap = MetricsSnapshot::from_json(&stats).unwrap();
    assert_eq!(snap.gauge("shard.count"), Some(4));
    assert!(snap.counter("router.txns_single").unwrap_or(0) > 0);
    assert!(snap.counter("router.txns_cross").unwrap_or(0) > 0);

    let db = handle.shutdown_join();
    assert_eq!(db.shards(), 4);
    assert!(db.audit_violations().is_empty(), "no protocol violations");
}

#[test]
fn response_timeout_protects_a_client() {
    // not a server defect test: just proves the client timeout plumbing
    // works against a listener that never answers
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut c = Client::connect(addr).unwrap();
    c.set_timeout(Some(Duration::from_millis(50))).unwrap();
    match c.ping() {
        Err(WireError::Io(e)) => assert!(
            e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut
        ),
        other => panic!("expected timeout, got {other:?}"),
    }
    drop(listener);
}

#[test]
fn slow_traced_request_shows_log_force_dominating_via_trace_dump() {
    // A 5ms modeled force latency makes every committing request slow
    // (threshold 1ms) with `log.force` as the dominant phase.
    let mut config = MmdbConfig::small(Algorithm::FuzzyCopy);
    config.log_force_latency_us = 5_000;
    let db = Mmdb::open_in_memory(config).unwrap();
    let server_cfg = ServerConfig {
        poll_interval: Duration::from_millis(10),
        checkpoint_interval: None,
        slow_trace_us: 1_000,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(db, server_cfg).unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.set_tracing(true);

    let info = c.info().unwrap();
    let value: Vec<u32> = (0..info.record_words).collect();
    c.put(RecordId(1), &value).unwrap();

    let dump = c.trace_dump(64).unwrap();
    let doc = mmdb_obs::TraceDumpDoc::from_json(&dump).unwrap();
    assert_eq!(doc.slow_threshold_us, 1_000);
    let slow = doc
        .slow
        .iter()
        .find(|e| e.op == "put")
        .expect("the put request beat the slow threshold");
    assert_ne!(slow.trace_id, 0, "client-side trace id propagated");
    assert!(
        slow.total_ns >= 5_000_000,
        "end-to-end covers the modeled force: {} ns",
        slow.total_ns
    );
    let root = slow
        .spans
        .iter()
        .find(|s| s.name == "net.request")
        .expect("root span in the tree");
    assert_eq!(root.trace_id, slow.trace_id);
    let force_ns: u64 = slow
        .spans
        .iter()
        .filter(|s| s.name == "log.force")
        .map(|s| s.dur_ns)
        .sum();
    assert!(
        force_ns * 2 >= slow.total_ns,
        "log.force dominates the slow request: {force_ns} of {} ns",
        slow.total_ns
    );
    // Every phase in the tree hangs off the request's trace.
    for s in &slow.spans {
        assert_eq!(s.trace_id, slow.trace_id, "span {} routed", s.name);
    }
    handle.shutdown_join();
}

#[test]
fn attribution_reconciles_with_the_request_histogram() {
    let handle = spawn_server(Algorithm::FuzzyCopy, Some(Duration::from_millis(1)));
    let addr = handle.local_addr().to_string();
    let cfg = LoadConfig {
        addr: addr.clone(),
        connections: 4,
        txns_per_conn: 25,
        updates_per_txn: 2,
        seed: 23,
        workload: WorkloadKind::Uniform,
        ..LoadConfig::default()
    };
    let report = run_load(&cfg).unwrap();
    assert_eq!(report.errors, 0);

    let mut c = Client::connect(&addr).unwrap();
    let snap = MetricsSnapshot::from_json(&c.stats_json().unwrap()).unwrap();
    let hist = snap.hist("net.request_ns").expect("request histogram");
    assert!(!snap.attribution.is_empty(), "attribution section present");
    let batch = snap
        .attribution
        .iter()
        .find(|r| r.op == "batch")
        .expect("batch op attributed");
    assert!(batch.requests >= 4 * 25);
    let phase_names: Vec<&str> = batch.phases.iter().map(|(n, _, _)| n.as_str()).collect();
    for required in ["engine.lock_wait", "txn.exec"] {
        assert!(
            phase_names.contains(&required),
            "batch phases missing {required}: {phase_names:?}"
        );
    }
    // Per-op end-to-end totals reconcile with the request histogram
    // (exact by construction; the bound here is the acceptance's 5%).
    let attr_total: u64 = snap
        .attribution
        .iter()
        .filter(|r| r.requests > 0)
        .map(|r| r.total_ns)
        .sum();
    // The histogram keeps recording after the stats snapshot request
    // itself, so compare against the sum captured in the same snapshot.
    let lo = hist.sum.saturating_sub(hist.sum / 20);
    let hi = hist.sum + hist.sum / 20;
    assert!(
        (lo..=hi).contains(&attr_total),
        "attribution {attr_total} ns vs histogram {} ns",
        hist.sum
    );
    handle.shutdown_join();
}
