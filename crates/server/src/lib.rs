//! **mmdb-server** — a threaded TCP server over the mmdb engine.
//!
//! The engine itself is deliberately single-threaded (every
//! interleaving of transactions, checkpoint steps and crashes must be
//! expressible in tests), so concurrency lives *around* it, exactly as
//! the paper's system model prescribes (§2: one processor alternating
//! between transaction work and checkpointer work):
//!
//! * a listener thread accepts connections and hands them to a fixed
//!   pool of worker threads,
//! * each worker speaks the [`mmdb_wire`] protocol over its connection;
//!   the [`mmdb_shard::ShardedMmdb`] router takes a *shard's* mutex
//!   only for the duration of one primitive action (a transaction
//!   step, never a whole interactive transaction),
//! * one dedicated checkpointer thread **per shard** interleaves
//!   [`checkpoint_step`](mmdb_core::Mmdb::checkpoint_step) calls with
//!   the workers' transactions through that shard's mutex — the
//!   paper's low-priority checkpointer process, replicated per
//!   partition so checkpoint work on shard *i* never blocks
//!   transactions on shard *j*.
//!
//! An unsharded server is the 1-shard special case ([`Server::spawn`]
//! wraps the engine via [`ShardedMmdb::from_single`]); the wire
//! protocol is identical either way, so clients are oblivious to the
//! topology.
//!
//! Shutdown is graceful: a client `Shutdown` request (or
//! [`ServerHandle::stop`]) raises a flag; workers finish their current
//! request, each checkpointer finishes (or abandons pacing of) its
//! current checkpoint, and [`ServerHandle::shutdown_join`] returns the
//! sharded database so callers can fingerprint or close it cleanly.
//!
//! The crate also hosts the closed-loop network load driver
//! ([`load`]) used by `mmdb-cli bench-net`.

pub mod conn;
pub mod load;

pub use load::{
    bench_group_json, bench_intra_json, bench_net_json, bench_shard_json, run_intra_sweep,
    run_load, validate_bench_group_json, validate_bench_intra_json, validate_bench_net_json,
    validate_bench_shard_json, GroupCompareEntry, IntraPoint, IntraSweepConfig, LoadConfig,
    LoadReport, ShardSweepEntry, WorkloadKind, BENCH_GROUP_SCHEMA, BENCH_INTRA_SCHEMA,
    BENCH_NET_SCHEMA, BENCH_SHARD_SCHEMA,
};

use mmdb_core::{Mmdb, StepOutcome};
use mmdb_repl::Replica;
use mmdb_shard::ShardedMmdb;
use mmdb_sync::{LockRank, RankedCondvar, RankedMutex};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads (each owns one connection at a time). Size this at
    /// or above the expected number of concurrent persistent
    /// connections: a closed-loop client parked in the accept queue
    /// behind long-lived connections makes no progress.
    pub workers: usize,
    /// How long a worker blocks in a read before re-checking the stop
    /// flag. Small values make shutdown snappy; it is not a client
    /// deadline.
    pub poll_interval: Duration,
    /// Drop a connection that has sent no request for this long.
    /// `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// Pause between background checkpoints. `Some(d)`: each shard's
    /// checkpointer begins a new checkpoint `d` after its previous one
    /// completes (continuous checkpointing, the paper's normal mode).
    /// `None`: checkpoints run only when a client sends
    /// `Checkpoint`.
    pub checkpoint_interval: Option<Duration>,
    /// Requests at or above this many microseconds end-to-end are
    /// recorded (with their full span tree) in the slow-request log
    /// served by the wire `TraceDump` request. `0` disables the log.
    pub slow_trace_us: u64,
    /// Pause between background log-maintenance passes. `Some(d)`: a
    /// dedicated thread rotates each shard's active log chunk and then
    /// compacts cold chunks (superseded committed frames become filler,
    /// optionally compressed — see
    /// [`compact_log`](mmdb_core::Mmdb::compact_log)) every `d`,
    /// taking each shard's mutex only for the duration of one shard's
    /// pass. `None` (the default): rotation and compaction run only
    /// when driven explicitly (e.g. by `mmdb-cli compact` offline).
    pub compact_interval: Option<Duration>,
    /// Replication role (standalone by default).
    pub repl: ReplOptions,
}

/// Replication role for a spawned server.
#[derive(Clone, Default)]
pub struct ReplOptions {
    /// `Some(addr)`: run as a read-only standby pulling from the
    /// primary at `addr` (one pull thread per shard). `None`: ordinary
    /// writable server (which *serves* standbys whenever one says
    /// hello — the primary role needs no configuration).
    pub replica_of: Option<String>,
    /// Semi-synchronous commits: once a standby attaches, every commit
    /// additionally waits until a standby acknowledges its LSN as
    /// applied-and-locally-durable. Size `workers` at or above
    /// `client connections + shards` — the acks arrive as ordinary
    /// requests and must find a free worker.
    pub repl_sync: bool,
    /// Declared primary: enable the ship taps (and with them the
    /// log-truncation pins) from startup rather than at the first
    /// standby hello. This is the replication-slot contract — a standby
    /// seeded from an identical `init` or a directory copy can attach
    /// later without finding its bytes already truncated away.
    /// `repl_sync` implies this.
    pub primary: bool,
    /// Called once after a wire `Promote` succeeds (e.g. to persist the
    /// role flip in `mmdb.conf`).
    pub on_promote: Option<Arc<dyn Fn() + Send + Sync>>,
    /// Standby only: directory for `repl.state`, the persisted
    /// primary-LSN applied watermarks. `None` keeps progress in memory
    /// (a restarted standby then re-seeds from its local durable LSN,
    /// which is only correct before its own checkpointer has run).
    pub state_dir: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for ReplOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplOptions")
            .field("replica_of", &self.replica_of)
            .field("repl_sync", &self.repl_sync)
            .field("primary", &self.primary)
            .field("on_promote", &self.on_promote.as_ref().map(|_| ".."))
            .field("state_dir", &self.state_dir)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 16,
            poll_interval: Duration::from_millis(50),
            idle_timeout: None,
            checkpoint_interval: Some(Duration::from_millis(10)),
            slow_trace_us: mmdb_obs::DEFAULT_SLOW_THRESHOLD_US,
            compact_interval: None,
            repl: ReplOptions::default(),
        }
    }
}

/// Shared server state visible to every thread.
pub(crate) struct Shared {
    pub(crate) db: ShardedMmdb,
    pub(crate) stop: AtomicBool,
    /// Checkpoints completed by the background checkpointer threads
    /// (summed across shards).
    pub(crate) ckpts_completed: AtomicU64,
    /// Log-maintenance passes completed by the background compaction
    /// thread (one pass = rotate + compact every shard once).
    pub(crate) compact_passes: AtomicU64,
    /// Interactive transactions aborted because their connection died.
    pub(crate) txns_aborted_on_disconnect: AtomicU64,
    /// Standby replication state when this server runs as a replica.
    pub(crate) replica: Option<Arc<Replica>>,
    /// Callback fired after a successful wire `Promote`.
    pub(crate) on_promote: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Shared {
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// The running server: spawn with [`Server::spawn`] (one engine) or
/// [`Server::spawn_sharded`] (a sharded topology).
pub struct Server;

/// Handle to a running server: address, stop control, and joins.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_join: Option<JoinHandle<()>>,
    worker_joins: Vec<JoinHandle<()>>,
    ckpt_joins: Vec<JoinHandle<()>>,
    repl_joins: Vec<JoinHandle<()>>,
    maint_join: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the listener + worker pool + checkpointer, and
    /// returns a handle. The engine moves into the server as a 1-shard
    /// [`ShardedMmdb`]; get it back with
    /// [`ServerHandle::shutdown_join`].
    pub fn spawn(db: Mmdb, config: ServerConfig) -> io::Result<ServerHandle> {
        Self::spawn_sharded(ShardedMmdb::from_single(db), config)
    }

    /// Binds, spawns the listener + worker pool + one checkpointer
    /// thread per shard, and returns a handle. The database moves into
    /// the server; get it back with [`ServerHandle::shutdown_join`].
    pub fn spawn_sharded(db: ShardedMmdb, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shards = db.shards();
        db.obs().set_slow_threshold_us(config.slow_trace_us);
        if config.repl.repl_sync {
            db.repl_gate().set_sync(true);
        }
        if config.repl.repl_sync || config.repl.primary {
            // A declared (or semi-sync) primary expects a standby:
            // enable the ship taps (and with them the log-truncation
            // pins) from the first commit, so a standby that attaches a
            // little late never finds its bytes already truncated away.
            db.enable_ship_taps();
        }
        let replica = config
            .repl
            .replica_of
            .as_ref()
            .map(|peer| Replica::new(peer.clone(), &db, config.repl.state_dir.clone()));
        let shared = Arc::new(Shared {
            db,
            stop: AtomicBool::new(false),
            ckpts_completed: AtomicU64::new(0),
            compact_passes: AtomicU64::new(0),
            txns_aborted_on_disconnect: AtomicU64::new(0),
            replica,
            on_promote: config.repl.on_promote.clone(),
        });

        // Each accepted stream carries its accept timestamp so the
        // worker that dequeues it can attribute the hand-off delay to a
        // `net.queue` phase (None when telemetry is off — no clock read).
        let conns = Arc::new(ConnQueue::new());
        if let Some(sink) = shared.db.obs().contention_sink() {
            conns.queue.set_sink(sink);
        }

        let mut worker_joins = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            let cfg = config.clone();
            worker_joins.push(
                std::thread::Builder::new()
                    .name(format!("mmdb-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &conns, &cfg))?,
            );
        }

        let mut ckpt_joins = Vec::with_capacity(shards);
        for shard in 0..shards {
            let shared = Arc::clone(&shared);
            let interval = config.checkpoint_interval;
            ckpt_joins.push(
                std::thread::Builder::new()
                    .name(format!("mmdb-checkpointer-{shard}"))
                    .spawn(move || checkpointer_loop(&shared, shard, interval))?,
            );
        }

        let mut repl_joins = Vec::new();
        if let Some(replica) = shared.replica.clone() {
            for shard in 0..shards {
                let shared = Arc::clone(&shared);
                let replica = Arc::clone(&replica);
                repl_joins.push(
                    std::thread::Builder::new()
                        .name(format!("mmdb-repl-pull-{shard}"))
                        .spawn(move || {
                            mmdb_repl::pull_shard_loop(&replica, &shared.db, shard);
                        })?,
                );
            }
        }

        let maint_join = match config.compact_interval {
            Some(interval) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("mmdb-compactor".into())
                        .spawn(move || maintenance_loop(&shared, interval))?,
                )
            }
            None => None,
        };

        let accept_join = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("mmdb-accept".into())
                .spawn(move || accept_loop(&shared, listener, &conns))?
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept_join: Some(accept_join),
            worker_joins,
            ckpt_joins,
            repl_joins,
            maint_join,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the stop flag; threads exit after their current unit of
    /// work. Does not wait — pair with [`ServerHandle::shutdown_join`].
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// True once the stop flag is raised (locally via
    /// [`ServerHandle::stop`] or remotely via a wire `Shutdown`).
    pub fn is_stopped(&self) -> bool {
        self.shared.stopping()
    }

    /// Checkpoints completed by the background checkpointers so far,
    /// summed across every shard.
    pub fn checkpoints_completed(&self) -> u64 {
        self.shared.ckpts_completed.load(Ordering::SeqCst)
    }

    /// Log-maintenance passes (rotate + compact across every shard)
    /// completed by the background compaction thread so far. Always 0
    /// unless [`ServerConfig::compact_interval`] is set.
    pub fn compaction_passes(&self) -> u64 {
        self.shared.compact_passes.load(Ordering::SeqCst)
    }

    /// Interactive transactions the server aborted because their
    /// connection disconnected without committing.
    pub fn txns_aborted_on_disconnect(&self) -> u64 {
        self.shared
            .txns_aborted_on_disconnect
            .load(Ordering::SeqCst)
    }

    /// True once this server is a promoted (writable) replica, or was
    /// never a replica at all.
    pub fn is_writable(&self) -> bool {
        self.shared
            .replica
            .as_ref()
            .map_or(true, |r| r.is_writable())
    }

    /// Stops the server, joins every thread, and returns the database.
    pub fn shutdown_join(mut self) -> ShardedMmdb {
        self.stop();
        if let Some(r) = &self.shared.replica {
            r.request_stop();
        }
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
        for j in self.worker_joins.drain(..) {
            let _ = j.join();
        }
        for j in self.ckpt_joins.drain(..) {
            let _ = j.join();
        }
        for j in self.repl_joins.drain(..) {
            let _ = j.join();
        }
        if let Some(j) = self.maint_join.take() {
            let _ = j.join();
        }
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| unreachable!("all server threads joined; no clones remain"));
        shared.db
    }
}

/// A connection queued for a worker: the stream plus its accept time
/// (`None` when telemetry is off, so idle queues never read the clock).
type QueuedConn = (TcpStream, Option<Instant>);

/// The accept-to-worker hand-off: a deque under a ranked mutex plus a
/// condvar doorbell. The listener pushes and rings; idle workers park on
/// the doorbell, which *releases the queue mutex while they wait* — so
/// an arriving connection is dispatched the moment any worker is free,
/// instead of waiting out whichever single worker happened to be holding
/// the lock inside a bounded `recv_timeout` poll (the old design's
/// up-to-`poll_interval` hand-off stall, and its `lint.baseline` L1
/// entry, are both gone).
struct ConnQueue {
    /// Ranked above every shard lock: a worker holds the queue mutex
    /// only to pop, never across a connection's lifetime, and everything
    /// else nests strictly below.
    queue: RankedMutex<VecDeque<QueuedConn>>,
    cv: RankedCondvar,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            queue: RankedMutex::new("server.conn_queue", LockRank::CONN_QUEUE, VecDeque::new()),
            cv: RankedCondvar::new(),
        }
    }

    /// Enqueues an accepted connection and wakes one parked worker.
    fn push(&self, conn: QueuedConn) {
        self.queue.lock().push_back(conn);
        self.cv.notify_one();
    }

    /// Dequeues the next connection, parking on the doorbell for at most
    /// `timeout`. Returns `None` on timeout so callers can re-check the
    /// stop flag; spurious wakes re-check the queue in the loop.
    fn pop(&self, timeout: Duration) -> Option<QueuedConn> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.lock();
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _timed_out) = self.cv.wait_timeout(q, left);
            q = guard;
        }
    }

    /// Wakes every parked worker (shutdown: they re-check the stop flag
    /// immediately instead of waiting out their poll interval).
    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener, conns: &Arc<ConnQueue>) {
    let telemetry = shared.db.obs().is_enabled();
    loop {
        if shared.stopping() {
            conns.wake_all(); // parked workers re-check the stop flag now
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let accepted = telemetry.then(Instant::now);
                conns.push((stream, accepted));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // transient accept errors (e.g. aborted handshake): keep serving
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn worker_loop(shared: &Shared, conns: &Arc<ConnQueue>, cfg: &ServerConfig) {
    loop {
        match conns.pop(cfg.poll_interval) {
            Some((stream, accepted)) => {
                if let Some(t0) = accepted {
                    // Accept-to-dispatch hand-off delay: the connection
                    // sat in the queue behind busy workers. No request
                    // scope exists yet, so this lands as a system phase.
                    shared.db.obs().phase_from("net.queue", t0, 0);
                }
                conn::serve_connection(shared, stream, cfg)
            }
            None => {
                if shared.stopping() {
                    return;
                }
            }
        }
    }
}

/// How often an idle request-only checkpointer re-checks for a
/// client-started checkpoint (bounds both wake-up CPU cost and the
/// latency before an async `Checkpoint` request starts being driven).
const IDLE_CHECKPOINTER_POLL: Duration = Duration::from_millis(20);

/// The paper's dedicated checkpointer process, one per shard:
/// repeatedly begin a checkpoint (per pacing), then drive it step by
/// step, yielding the shard's mutex between steps so transactions
/// interleave — the same discipline as the in-process concurrent
/// driver tests, replicated per partition.
fn checkpointer_loop(shared: &Shared, shard: usize, interval: Option<Duration>) {
    let mut next_begin_ok = true; // begin immediately on startup when paced
    loop {
        if shared.stopping() {
            return;
        }
        let mut did_work = false;
        let mut completed = false;
        shared.db.with_shard(shard, |db| {
            if !db.is_checkpoint_active() && !db.is_quiescing() {
                if interval.is_some() && next_begin_ok {
                    // Quiesce refusals and in-progress races are normal;
                    // the next iteration retries.
                    let _ = db.try_begin_checkpoint();
                    next_begin_ok = false;
                }
            } else {
                match db.checkpoint_step() {
                    Ok(StepOutcome::Progress { .. }) => did_work = true,
                    Ok(StepOutcome::WaitingForLog) => {
                        let _ = db.force_log();
                        did_work = true;
                    }
                    Ok(StepOutcome::Done { .. }) => {
                        completed = true;
                        did_work = true;
                    }
                    Err(_) => {}
                }
            }
        });
        if completed {
            shared.ckpts_completed.fetch_add(1, Ordering::SeqCst);
            if let Some(d) = interval {
                // pace: sleep in small slices so stop stays responsive
                let mut left = d;
                while !left.is_zero() && !shared.stopping() {
                    let slice = left.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
                next_begin_ok = true;
            }
        } else if !did_work {
            if interval.is_some() {
                if !next_begin_ok {
                    next_begin_ok = true; // begin attempt raced; retry soon
                }
                std::thread::sleep(Duration::from_micros(200));
            } else {
                // Request-only mode (`checkpoint_interval: None`): there
                // is nothing to drive until a client sends `Checkpoint`,
                // so poll coarsely instead of spinning at ~5 kHz for the
                // lifetime of the server.
                std::thread::sleep(IDLE_CHECKPOINTER_POLL);
            }
        }
        // after Progress: loop immediately — dropping the guard between
        // steps is what lets worker transactions interleave
    }
}

/// The background log-maintenance thread: every `interval`, rotate each
/// shard's active log chunk (sealing it so it becomes eligible) and
/// compact its cold chunks. One shard's mutex is held only for that
/// shard's rotate+compact — transactions on other shards are never
/// blocked, matching the per-shard checkpointer discipline. Compaction
/// honours replication truncation pins internally (a lagging standby
/// stalls chunk rewrites, it never loses bytes), so this loop needs no
/// replication awareness of its own.
fn maintenance_loop(shared: &Shared, interval: Duration) {
    loop {
        if shared.stopping() {
            return;
        }
        for shard in 0..shared.db.shards() {
            if shared.stopping() {
                return;
            }
            shared.db.with_shard(shard, |db| {
                // Failures here are operational (e.g. a chunk mid-seal
                // during shutdown), never correctness: the pass simply
                // retries next interval.
                let _ = db.rotate_log();
                let _ = db.compact_log();
            });
        }
        shared.compact_passes.fetch_add(1, Ordering::SeqCst);
        // pace: sleep in small slices so stop stays responsive
        let mut left = interval;
        while !left.is_zero() && !shared.stopping() {
            let slice = left.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
    }
}
