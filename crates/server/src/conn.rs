//! Per-connection request handling.
//!
//! Each connection is owned by exactly one worker thread for its whole
//! life. The worker goes through the [`mmdb_shard::ShardedMmdb`]
//! router, which takes a shard mutex per *primitive action*, never per
//! transaction, so an interactive `Begin`/`Write`/`Commit` sequence
//! interleaves with other connections and with checkpoint steps — the
//! paper's concurrency model, with the shard mutexes as processors.
//!
//! Connection-owned state is the set of open interactive transactions:
//! if the connection drops (or times out) with transactions still open,
//! the worker aborts them so they cannot pin the two-color checkpoint's
//! white set forever.
//!
//! Every request is wrapped in a request scope (`net.request` /
//! `net.request_ns`, carrying the client's trace context when the frame
//! was traced) plus per-op counters on the router's registry, so a
//! `Stats` request over the wire shows the network layer, the router
//! and every shard engine in one snapshot — and a `TraceDump` request
//! returns the span trees behind the slowest of them.

use crate::{ServerConfig, Shared};
use mmdb_core::CheckpointStart;
use mmdb_shard::ShardedMmdb;
use mmdb_types::{Lsn, MmdbError, TxnId};
use mmdb_wire::{
    write_frame, CkptStartState, CkptSummary, ErrorCode, FrameReader, PollFrame, Request, Response,
    ServerInfo,
};
use std::collections::HashSet;
use std::io::BufWriter;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Serves one connection to completion (peer close, idle timeout,
/// protocol error, or server shutdown).
pub(crate) fn serve_connection(shared: &Shared, stream: TcpStream, cfg: &ServerConfig) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.poll_interval));
    let mut writer = match stream.try_clone() {
        Ok(s) => BufWriter::new(s),
        Err(_) => return,
    };
    let mut reader = stream;

    let obs = shared.db.obs().clone();
    let mut open_txns: HashSet<TxnId> = HashSet::new();
    let mut last_activity = Instant::now();
    // Resumable reader: the 50ms poll timeout routinely fires in the
    // middle of a frame (large Batch payloads, slow links); partial
    // bytes stay buffered here instead of being discarded, so a frame
    // that straddles poll intervals reassembles instead of
    // desynchronizing the connection.
    let mut framer = FrameReader::new();

    loop {
        let payload = match framer.poll(&mut reader) {
            Ok(PollFrame::Frame(p)) => p,
            Ok(PollFrame::Closed) => break, // clean close
            Ok(PollFrame::Pending { progressed }) => {
                if progressed {
                    // a frame is trickling in: activity, not idleness
                    last_activity = Instant::now();
                }
                if shared.stopping() {
                    break;
                }
                if let Some(idle) = cfg.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        obs.counter("net.conn.idle_closed", 1);
                        break;
                    }
                }
                continue;
            }
            Err(_) => {
                obs.counter("net.conn.transport_errors", 1);
                break;
            }
        };
        last_activity = Instant::now();

        let (req, trace) = match Request::decode_with_trace(&payload) {
            Ok(r) => r,
            Err(e) => {
                obs.counter("net.protocol_errors", 1);
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut writer, &resp.encode());
                break; // desynchronized peer: close rather than guess
            }
        };

        let op = req.op_name();
        let is_shutdown = matches!(req, Request::Shutdown);
        // The request scope: every phase recorded on this thread (and
        // any flusher force it rings) lands in one span tree under the
        // client-supplied trace id, feeding the flight recorder, the
        // slow-request log, the attribution table and `net.request_ns`.
        let (trace_id, parent_span) = trace.map_or((0, 0), |t| (t.trace_id, t.parent_span));
        let scope = obs.request_scope("net.request", "net.request_ns", op, trace_id, parent_span);
        let resp = dispatch(shared, &req, &mut open_txns);
        scope.finish();
        obs.counter("net.requests", 1);
        obs.counter(op_counter(&req), 1);
        if matches!(resp, Response::Error { .. }) {
            obs.counter("net.request_errors", 1);
        }

        if write_frame(&mut writer, &resp.encode()).is_err() {
            obs.counter("net.conn.transport_errors", 1);
            break;
        }
        if is_shutdown {
            shared.stop.store(true, Ordering::SeqCst);
            break;
        }
        if shared.stopping() {
            // The response (typically a ShuttingDown error frame) is
            // flushed; close now so a client that keeps sending cannot
            // hold graceful shutdown hostage — without this, the loop
            // never reaches the Pending arm's stop check.
            break;
        }
    }

    if !open_txns.is_empty() {
        for txn in open_txns.drain() {
            if shared.db.abort(txn).is_ok() {
                shared
                    .txns_aborted_on_disconnect
                    .fetch_add(1, Ordering::SeqCst);
                obs.counter("net.txn.aborted_on_disconnect", 1);
            }
        }
    }
}

/// Executes one request against the sharded database, mapping engine
/// errors to wire error frames. The router takes shard mutexes
/// internally, one primitive action at a time.
fn dispatch(shared: &Shared, req: &Request, open_txns: &mut HashSet<TxnId>) -> Response {
    if shared.stopping() && !matches!(req, Request::Shutdown) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is shutting down".into(),
        };
    }
    let db = &shared.db;
    // An unpromoted standby is read-only: every write path is refused
    // at the door so replayed primary state can never interleave with
    // local writes.
    if matches!(
        req,
        Request::Put { .. } | Request::Batch { .. } | Request::Write { .. }
    ) && shared.replica.as_ref().is_some_and(|r| !r.is_writable())
    {
        return Response::Error {
            code: ErrorCode::Invalid,
            message: "read-only replica: writes are refused until promotion".into(),
        };
    }
    match req {
        Request::Ping => Response::Pong,
        Request::Get { rid } => match db.read_committed(*rid) {
            Ok(words) => Response::Value { words },
            Err(e) => error_response(&e),
        },
        Request::Put { rid, value } => {
            let updates = [(*rid, value.clone())];
            match db.run_txn(&updates) {
                Ok(run) => Response::Committed {
                    txn: run.txn,
                    runs: run.runs,
                },
                Err(e) => error_response(&e),
            }
        }
        Request::Batch { updates } => match db.run_txn(updates) {
            Ok(run) => Response::Committed {
                txn: run.txn,
                runs: run.runs,
            },
            Err(e) => error_response(&e),
        },
        Request::Begin => match db.begin_txn() {
            Ok(txn) => {
                open_txns.insert(txn);
                Response::Begun { txn }
            }
            Err(e) => error_response(&e),
        },
        Request::Read { txn, rid } => match db.read(*txn, *rid) {
            Ok(words) => Response::Value { words },
            Err(e) => interactive_error(&e, *txn, open_txns),
        },
        Request::Write { txn, rid, value } => match db.write(*txn, *rid, value) {
            Ok(()) => Response::Ok,
            Err(e) => interactive_error(&e, *txn, open_txns),
        },
        Request::Commit { txn } => match db.commit(*txn) {
            Ok(()) => {
                open_txns.remove(txn);
                Response::Committed { txn: *txn, runs: 1 }
            }
            Err(e) => interactive_error(&e, *txn, open_txns),
        },
        Request::Abort { txn } => match db.abort(*txn) {
            Ok(()) => {
                open_txns.remove(txn);
                Response::Ok
            }
            Err(e) => interactive_error(&e, *txn, open_txns),
        },
        Request::Stats => Response::StatsJson {
            json: db.metrics_snapshot().to_json_pretty(),
        },
        Request::Checkpoint { sync: true } => match db.checkpoint_all() {
            Ok(reports) => {
                // One summary for the whole topology: identity fields
                // (checkpoint number, target copy) from shard 0, work
                // counts summed across shards.
                let mut summary = CkptSummary {
                    ckpt: reports.first().map_or(0, |r| r.ckpt.raw()),
                    copy: reports.first().map_or(0, |r| r.copy as u8),
                    segments_flushed: 0,
                    segments_skipped: 0,
                    old_copies_flushed: 0,
                };
                for r in &reports {
                    summary.segments_flushed += r.segments_flushed;
                    summary.segments_skipped += r.segments_skipped;
                    summary.old_copies_flushed += r.old_copies_flushed;
                }
                Response::CkptDone(summary)
            }
            Err(e) => error_response(&e),
        },
        Request::Checkpoint { sync: false } => match db.try_begin_checkpoint() {
            Ok(CheckpointStart::Started(_)) => Response::CkptStarted {
                state: CkptStartState::Started,
            },
            Ok(CheckpointStart::Quiescing) => Response::CkptStarted {
                state: CkptStartState::Quiescing,
            },
            Err(MmdbError::CheckpointInProgress) => Response::CkptStarted {
                state: CkptStartState::AlreadyRunning,
            },
            Err(e) => error_response(&e),
        },
        Request::Fingerprint => Response::Fingerprint {
            fp: db.fingerprint(),
        },
        Request::Info => Response::Info(server_info(db)),
        Request::TraceDump { limit } => Response::TraceDump {
            json: db.trace_dump_json(*limit as usize),
        },
        Request::ReplHello { ver_min, ver_max } => {
            match mmdb_repl::serve_hello(db, *ver_min, *ver_max) {
                Ok(w) => Response::ReplWelcome(w),
                Err(e) => error_response(&e),
            }
        }
        Request::ReplAck {
            shard,
            applied,
            max_bytes,
            wait_ms,
        } => match mmdb_repl::serve_pull(db, *shard, Lsn(*applied), *max_bytes, *wait_ms) {
            Ok((start, durable, bytes)) => Response::ReplBatch {
                shard: *shard,
                start: start.raw(),
                durable: durable.raw(),
                bytes,
            },
            Err(e) => error_response(&e),
        },
        Request::ReplScan {
            shard,
            from,
            max_records,
        } => match mmdb_repl::serve_scan(db, *shard, *from, *max_records) {
            Ok((next, records)) => Response::ReplRecords { next, records },
            Err(e) => error_response(&e),
        },
        Request::Promote => match &shared.replica {
            Some(replica) => match mmdb_repl::promote(db, replica) {
                Ok(()) => {
                    if let Some(f) = &shared.on_promote {
                        f();
                    }
                    Response::Promoted
                }
                Err(e) => error_response(&e),
            },
            None => Response::Error {
                code: ErrorCode::Invalid,
                message: "this server is not a replica".into(),
            },
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}

fn server_info(db: &ShardedMmdb) -> ServerInfo {
    ServerInfo {
        n_records: db.n_records(),
        record_words: db.record_words() as u32,
        n_segments: db.config().params.db.n_segments(),
        algorithm: db.config().algorithm.name().to_string(),
    }
}

/// Like [`error_response`], but also evicts transactions the engine has
/// already killed (a two-color abort inside `commit` consumes the txn;
/// keeping it in `open_txns` would double-abort it at disconnect).
fn interactive_error(e: &MmdbError, txn: TxnId, open_txns: &mut HashSet<TxnId>) -> Response {
    if matches!(
        e,
        MmdbError::TwoColorViolation { .. } | MmdbError::NoSuchTxn(_)
    ) {
        open_txns.remove(&txn);
    }
    error_response(e)
}

/// Maps an engine error to a wire error frame. The Transient class is
/// the load-bearing one: closed-loop clients retry those instead of
/// counting them as failures.
fn error_response(e: &MmdbError) -> Response {
    let code = match e {
        MmdbError::TwoColorViolation { .. } | MmdbError::Quiesced => ErrorCode::Transient,
        MmdbError::CheckpointInProgress => ErrorCode::Busy,
        MmdbError::RecordOutOfRange { .. } | MmdbError::SegmentOutOfRange { .. } => {
            ErrorCode::OutOfRange
        }
        MmdbError::Corrupt(_) | MmdbError::NoCompleteBackup => ErrorCode::Corrupt,
        MmdbError::Io(_) => ErrorCode::Io,
        MmdbError::NoSuchTxn(_)
        | MmdbError::BadRecordSize { .. }
        | MmdbError::UnsoundConfiguration(_)
        | MmdbError::NoCheckpointInProgress
        | MmdbError::Invalid(_) => ErrorCode::Invalid,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Static counter name per opcode (obs counters require `'static`).
fn op_counter(req: &Request) -> &'static str {
    match req {
        Request::Ping => "net.op.ping",
        Request::Get { .. } => "net.op.get",
        Request::Put { .. } => "net.op.put",
        Request::Batch { .. } => "net.op.batch",
        Request::Begin => "net.op.begin",
        Request::Read { .. } => "net.op.read",
        Request::Write { .. } => "net.op.write",
        Request::Commit { .. } => "net.op.commit",
        Request::Abort { .. } => "net.op.abort",
        Request::Stats => "net.op.stats",
        Request::Checkpoint { .. } => "net.op.checkpoint",
        Request::Fingerprint => "net.op.fingerprint",
        Request::Info => "net.op.info",
        Request::TraceDump { .. } => "net.op.trace_dump",
        Request::ReplHello { .. } => "net.op.repl_hello",
        Request::ReplAck { .. } => "net.op.repl_ack",
        Request::ReplScan { .. } => "net.op.repl_scan",
        Request::Promote => "net.op.promote",
        Request::Shutdown => "net.op.shutdown",
    }
}
