//! Closed-loop network load driver.
//!
//! Spawns one thread per connection; each thread replays a
//! [`mmdb_workload`] update stream (Uniform or Zipf, deterministic per
//! seed) as `Batch` transactions over its own [`Client`], waiting for
//! each commit before sending the next — a closed loop, so offered load
//! tracks service capacity and the latency histogram is honest.
//!
//! Transient server errors (two-color aborts surfacing through a
//! quiesce, COU quiesce refusals) are retried and *counted as retries*,
//! not errors: under continuous checkpointing they are the ordinary
//! cost of transaction-consistent checkpoints (paper §3.2), not
//! failures. Anything else increments `errors` — a correct run reports
//! zero.
//!
//! [`bench_net_json`] renders a [`LoadReport`] with a fixed key set
//! ("deterministic schema": keys and shapes never vary run to run, only
//! wall-clock values do) and [`validate_bench_net_json`] checks that
//! shape, so CI can validate fresh output without byte-diffing.

use mmdb_obs::hist::{HistSummary, Histogram};
use mmdb_obs::json::{parse, Value};
use mmdb_types::{RecordId, Word};
use mmdb_wire::{Client, ErrorCode, ServerInfo, WireError, WireResult};
use mmdb_workload::{UniformWorkload, Workload, ZipfWorkload};
use std::time::{Duration, Instant};

/// Which record-selection distribution each connection replays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Uniform over the whole record space.
    Uniform,
    /// Zipf-like with the given skew parameter `theta` in `[0, 1)`.
    Zipf(f64),
}

impl WorkloadKind {
    /// Stable label used in the bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Zipf(_) => "zipf",
        }
    }

    /// The skew parameter (0.0 for uniform, keeping the JSON schema
    /// fixed across kinds).
    pub fn theta(self) -> f64 {
        match self {
            WorkloadKind::Uniform => 0.0,
            WorkloadKind::Zipf(theta) => theta,
        }
    }
}

/// Parameters for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `"127.0.0.1:7878"`.
    pub addr: String,
    /// Concurrent connections (one closed-loop thread each).
    pub connections: usize,
    /// Transactions each connection commits.
    pub txns_per_conn: u64,
    /// Records updated per transaction.
    pub updates_per_txn: u32,
    /// Base RNG seed; connection `i` derives an independent stream.
    pub seed: u64,
    /// Record-selection distribution.
    pub workload: WorkloadKind,
    /// Max transparent retries per transaction on transient errors.
    pub max_retries: u32,
    /// Per-response timeout for every connection.
    pub timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            connections: 8,
            txns_per_conn: 200,
            updates_per_txn: 4,
            seed: 42,
            workload: WorkloadKind::Uniform,
            max_retries: 1000,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections that ran.
    pub connections: usize,
    /// Transactions committed across all connections.
    pub committed: u64,
    /// Non-transient failures (0 in a correct run).
    pub errors: u64,
    /// Transparent transient retries absorbed by the driver.
    pub retries: u64,
    /// Wall-clock time from first spawn to last join.
    pub elapsed: Duration,
    /// Committed transactions per wall-clock second.
    pub throughput_tps: f64,
    /// Commit latency digest in microseconds, merged over connections.
    pub latency_us: HistSummary,
}

struct ConnOutcome {
    committed: u64,
    errors: u64,
    retries: u64,
    latency_us: Histogram,
}

/// Runs the closed-loop driver to completion. Fails only on setup
/// errors (connect/info); per-transaction failures are counted in the
/// report instead.
pub fn run_load(cfg: &LoadConfig) -> WireResult<LoadReport> {
    let info = {
        let mut probe = Client::connect(&cfg.addr)?;
        probe.set_timeout(Some(cfg.timeout))?;
        probe.info()?
    };
    let s_rec = info.record_words as usize;
    let n_records = info.n_records;

    let started = Instant::now();
    let mut joins = Vec::with_capacity(cfg.connections);
    for i in 0..cfg.connections {
        let cfg = cfg.clone();
        joins.push(std::thread::spawn(move || -> WireResult<ConnOutcome> {
            run_connection(&cfg, i, n_records, s_rec)
        }));
    }

    let mut report = LoadReport {
        connections: cfg.connections,
        committed: 0,
        errors: 0,
        retries: 0,
        elapsed: Duration::ZERO,
        throughput_tps: 0.0,
        latency_us: HistSummary::default(),
    };
    let mut merged = Histogram::new();
    let mut first_err: Option<WireError> = None;
    for j in joins {
        match j.join() {
            Ok(Ok(out)) => {
                report.committed += out.committed;
                report.errors += out.errors;
                report.retries += out.retries;
                merged.merge(&out.latency_us);
            }
            Ok(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Err(_) => {
                if first_err.is_none() {
                    first_err = Some(WireError::Unexpected("load thread panicked".into()));
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    report.elapsed = started.elapsed();
    report.latency_us = merged.summary();
    let secs = report.elapsed.as_secs_f64();
    report.throughput_tps = if secs > 0.0 {
        report.committed as f64 / secs
    } else {
        0.0
    };
    Ok(report)
}

fn run_connection(
    cfg: &LoadConfig,
    index: usize,
    n_records: u64,
    s_rec: usize,
) -> WireResult<ConnOutcome> {
    let mut client = Client::connect(&cfg.addr)?;
    client.set_timeout(Some(cfg.timeout))?;

    // Independent deterministic stream per connection.
    let seed = cfg
        .seed
        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut workload: Box<dyn Workload> = match cfg.workload {
        WorkloadKind::Uniform => {
            Box::new(UniformWorkload::new(n_records, cfg.updates_per_txn, seed))
        }
        WorkloadKind::Zipf(theta) => Box::new(ZipfWorkload::new(
            n_records,
            cfg.updates_per_txn,
            theta,
            seed,
        )),
    };

    let mut out = ConnOutcome {
        committed: 0,
        errors: 0,
        retries: 0,
        latency_us: Histogram::new(),
    };
    for _ in 0..cfg.txns_per_conn {
        let updates: Vec<(RecordId, Vec<Word>)> = workload.next_txn().materialize(s_rec);
        let t0 = Instant::now();
        match client.retry_transient(cfg.max_retries, |c| c.batch(&updates)) {
            Ok((_committed, retries)) => {
                out.committed += 1;
                out.retries += u64::from(retries);
                let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                out.latency_us.record(us);
            }
            Err(WireError::Remote {
                code: ErrorCode::ShuttingDown,
                ..
            }) => {
                // the server is draining: stop offering load (and do not
                // keep the connection pinned open, which would stall the
                // server's graceful shutdown); not a protocol failure
                return Ok(out);
            }
            Err(WireError::Io(_) | WireError::Protocol(_)) => {
                // the connection is gone or desynchronized: surface it
                out.errors += 1;
                return Ok(out);
            }
            Err(_) => out.errors += 1,
        }
    }
    Ok(out)
}

/// Schema tag for [`bench_net_json`] output.
pub const BENCH_NET_SCHEMA: &str = "mmdb-bench-net/v1";

/// Renders a load run as JSON with a fixed key set. `ckpts_completed`
/// comes from the server (background checkpoints during the run).
pub fn bench_net_json(
    cfg: &LoadConfig,
    report: &LoadReport,
    info: &ServerInfo,
    ckpts_completed: u64,
) -> String {
    let lat = &report.latency_us;
    let v = Value::Obj(vec![
        ("schema".into(), Value::s(BENCH_NET_SCHEMA)),
        (
            "config".into(),
            Value::Obj(vec![
                ("connections".into(), Value::u(report.connections as u64)),
                ("txns_per_conn".into(), Value::u(cfg.txns_per_conn)),
                (
                    "updates_per_txn".into(),
                    Value::u(u64::from(cfg.updates_per_txn)),
                ),
                ("workload".into(), Value::s(cfg.workload.label())),
                ("zipf_theta".into(), Value::f(cfg.workload.theta())),
                ("seed".into(), Value::u(cfg.seed)),
                ("algorithm".into(), Value::s(&info.algorithm)),
                ("n_records".into(), Value::u(info.n_records)),
            ]),
        ),
        (
            "results".into(),
            Value::Obj(vec![
                ("committed".into(), Value::u(report.committed)),
                ("errors".into(), Value::u(report.errors)),
                ("retries".into(), Value::u(report.retries)),
                ("elapsed_s".into(), Value::f(report.elapsed.as_secs_f64())),
                ("throughput_tps".into(), Value::f(report.throughput_tps)),
                (
                    "latency_us".into(),
                    Value::Obj(vec![
                        ("count".into(), Value::u(lat.count)),
                        ("mean".into(), Value::f(lat.mean)),
                        ("p50".into(), Value::u(lat.p50)),
                        ("p90".into(), Value::u(lat.p90)),
                        ("p99".into(), Value::u(lat.p99)),
                        ("max".into(), Value::u(lat.max)),
                    ]),
                ),
                ("ckpts_completed".into(), Value::u(ckpts_completed)),
            ]),
        ),
    ]);
    let mut s = v.to_pretty();
    s.push('\n');
    s
}

/// Validates the fixed schema of [`bench_net_json`] output: the schema
/// tag, every required key, and basic type/sanity constraints. Values
/// are wall-clock so CI validates shape, not bytes.
pub fn validate_bench_net_json(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema tag")?;
    if schema != BENCH_NET_SCHEMA {
        return Err(format!("schema {schema:?}, expected {BENCH_NET_SCHEMA:?}"));
    }
    let config = v.get("config").ok_or("missing config")?;
    for key in [
        "connections",
        "txns_per_conn",
        "updates_per_txn",
        "seed",
        "n_records",
    ] {
        config
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("config.{key} missing or not an integer"))?;
    }
    config
        .get("zipf_theta")
        .and_then(Value::as_f64)
        .ok_or("config.zipf_theta missing or not a number")?;
    for key in ["workload", "algorithm"] {
        config
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("config.{key} missing or not a string"))?;
    }
    let results = v.get("results").ok_or("missing results")?;
    for key in ["committed", "errors", "retries", "ckpts_completed"] {
        results
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("results.{key} missing or not an integer"))?;
    }
    for key in ["elapsed_s", "throughput_tps"] {
        let n = results
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("results.{key} missing or not a number"))?;
        if !n.is_finite() || n < 0.0 {
            return Err(format!("results.{key} = {n} is not a finite non-negative"));
        }
    }
    let lat = results
        .get("latency_us")
        .ok_or("missing results.latency_us")?;
    for key in ["count", "p50", "p90", "p99", "max"] {
        lat.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("latency_us.{key} missing or not an integer"))?;
    }
    lat.get("mean")
        .and_then(Value::as_f64)
        .ok_or("latency_us.mean missing or not a number")?;
    let committed = results
        .get("committed")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let count = lat.get("count").and_then(Value::as_u64).unwrap_or(0);
    if committed != count {
        return Err(format!(
            "latency_us.count {count} != results.committed {committed}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> String {
        let cfg = LoadConfig {
            addr: "127.0.0.1:0".into(),
            workload: WorkloadKind::Zipf(0.8),
            ..LoadConfig::default()
        };
        let mut hist = Histogram::new();
        for us in [120, 340, 95, 410, 230] {
            hist.record(us);
        }
        let report = LoadReport {
            connections: 8,
            committed: 5,
            errors: 0,
            retries: 3,
            elapsed: Duration::from_millis(250),
            throughput_tps: 20.0,
            latency_us: hist.summary(),
        };
        let info = ServerInfo {
            n_records: 2048,
            record_words: 8,
            n_segments: 32,
            algorithm: "FUZZYCOPY".into(),
        };
        bench_net_json(&cfg, &report, &info, 4)
    }

    #[test]
    fn bench_json_round_trips_through_its_own_validator() {
        let json = sample_json();
        validate_bench_net_json(&json).expect("fresh output validates");
    }

    #[test]
    fn validator_rejects_wrong_schema_and_missing_keys() {
        let json = sample_json();
        let wrong = json.replace(BENCH_NET_SCHEMA, "mmdb-bench-net/v0");
        assert!(validate_bench_net_json(&wrong).is_err());
        let broken = json.replace("\"throughput_tps\"", "\"throughput\"");
        assert!(validate_bench_net_json(&broken).is_err());
        assert!(validate_bench_net_json("{}").is_err());
        assert!(validate_bench_net_json("not json").is_err());
    }

    #[test]
    fn validator_cross_checks_committed_against_latency_count() {
        let json = sample_json();
        let tampered = json.replace("\"committed\": 5", "\"committed\": 6");
        assert!(validate_bench_net_json(&tampered).is_err());
    }

    #[test]
    fn workload_kind_labels_are_stable() {
        assert_eq!(WorkloadKind::Uniform.label(), "uniform");
        assert_eq!(WorkloadKind::Zipf(0.5).label(), "zipf");
        assert_eq!(WorkloadKind::Uniform.theta(), 0.0);
        assert_eq!(WorkloadKind::Zipf(0.5).theta(), 0.5);
    }
}
