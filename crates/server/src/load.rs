//! Network load driver (closed loop, or open loop at a target rate).
//!
//! Spawns one thread per connection; each thread replays a
//! [`mmdb_workload`] update stream (Uniform or Zipf, deterministic per
//! seed) as `Batch` transactions over its own [`Client`]. By default it
//! is a closed loop — each commit acks before the next send, so offered
//! load tracks service capacity. With
//! [`LoadConfig::target_rate_per_conn`] set, each connection instead
//! follows a fixed schedule (transaction `k` is due at `start + k/rate`)
//! and latency is measured **from the due time**: a stall charges the
//! server for every request it delayed, where a closed loop would
//! silently stop offering load during the stall and under-report tail
//! latency (coordinated omission).
//!
//! Transient server errors (two-color aborts surfacing through a
//! quiesce, COU quiesce refusals) are retried and *counted as retries*,
//! not errors: under continuous checkpointing they are the ordinary
//! cost of transaction-consistent checkpoints (paper §3.2), not
//! failures. Anything else increments `errors` — a correct run reports
//! zero.
//!
//! [`bench_net_json`] renders a [`LoadReport`] with a fixed key set
//! ("deterministic schema": keys and shapes never vary run to run, only
//! wall-clock values do) and [`validate_bench_net_json`] checks that
//! shape, so CI can validate fresh output without byte-diffing.

use mmdb_obs::hist::{HistSummary, Histogram};
use mmdb_obs::json::{parse, Value};
use mmdb_types::{RecordId, Word};
use mmdb_wire::{Client, ErrorCode, ServerInfo, WireError, WireResult};
use mmdb_workload::{UniformWorkload, Workload, ZipfWorkload};
use std::time::{Duration, Instant};

/// Which record-selection distribution each connection replays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Uniform over the whole record space.
    Uniform,
    /// Zipf-like with the given skew parameter `theta` in `[0, 1)`.
    Zipf(f64),
}

impl WorkloadKind {
    /// Stable label used in the bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Zipf(_) => "zipf",
        }
    }

    /// The skew parameter (0.0 for uniform, keeping the JSON schema
    /// fixed across kinds).
    pub fn theta(self) -> f64 {
        match self {
            WorkloadKind::Uniform => 0.0,
            WorkloadKind::Zipf(theta) => theta,
        }
    }
}

/// Parameters for [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `"127.0.0.1:7878"`.
    pub addr: String,
    /// Concurrent connections (one closed-loop thread each).
    pub connections: usize,
    /// Transactions each connection commits.
    pub txns_per_conn: u64,
    /// Records updated per transaction.
    pub updates_per_txn: u32,
    /// Base RNG seed; connection `i` derives an independent stream.
    pub seed: u64,
    /// Record-selection distribution.
    pub workload: WorkloadKind,
    /// Max transparent retries per transaction on transient errors.
    pub max_retries: u32,
    /// Per-response timeout for every connection.
    pub timeout: Duration,
    /// Shard count of the *server* topology (1 = unsharded). When > 1,
    /// each connection remaps its generated records onto a home shard
    /// (`connection_index % shards`) so the steady-state workload is
    /// shard-affine — the scale-out regime the topology is for. The
    /// distribution's shape is preserved within the shard.
    pub shards: usize,
    /// Fraction of transactions (per connection, deterministic) that
    /// deliberately span shards instead of staying on the home shard,
    /// exercising the two-phase cross-shard commit path. Ignored when
    /// `shards == 1`.
    pub cross_fraction: f64,
    /// Target send rate per connection, transactions per second. `0.0`
    /// keeps the closed loop. When positive, transaction `k` is due at
    /// `start + k/rate` and its latency is measured from that due time
    /// (the coordinated-omission-free measurement); a connection that
    /// falls behind sends immediately and the backlog shows up as tail
    /// latency instead of vanishing.
    pub target_rate_per_conn: f64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            connections: 8,
            txns_per_conn: 200,
            updates_per_txn: 4,
            seed: 42,
            workload: WorkloadKind::Uniform,
            max_retries: 1000,
            timeout: Duration::from_secs(30),
            shards: 1,
            cross_fraction: 0.0,
            target_rate_per_conn: 0.0,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections that ran.
    pub connections: usize,
    /// Transactions committed across all connections.
    pub committed: u64,
    /// Non-transient failures (0 in a correct run).
    pub errors: u64,
    /// Transparent transient retries absorbed by the driver.
    pub retries: u64,
    /// Wall-clock time from first spawn to last join.
    pub elapsed: Duration,
    /// Committed transactions per wall-clock second.
    pub throughput_tps: f64,
    /// Commit latency digest in microseconds, merged over connections.
    pub latency_us: HistSummary,
}

struct ConnOutcome {
    committed: u64,
    errors: u64,
    retries: u64,
    latency_us: Histogram,
}

/// Runs the closed-loop driver to completion. Fails only on setup
/// errors (connect/info); per-transaction failures are counted in the
/// report instead.
pub fn run_load(cfg: &LoadConfig) -> WireResult<LoadReport> {
    let info = {
        let mut probe = Client::connect(&cfg.addr)?;
        probe.set_timeout(Some(cfg.timeout))?;
        probe.info()?
    };
    let s_rec = info.record_words as usize;
    let n_records = info.n_records;

    let started = Instant::now();
    let mut joins = Vec::with_capacity(cfg.connections);
    for i in 0..cfg.connections {
        let cfg = cfg.clone();
        joins.push(std::thread::spawn(move || -> WireResult<ConnOutcome> {
            run_connection(&cfg, i, n_records, s_rec)
        }));
    }

    let mut report = LoadReport {
        connections: cfg.connections,
        committed: 0,
        errors: 0,
        retries: 0,
        elapsed: Duration::ZERO,
        throughput_tps: 0.0,
        latency_us: HistSummary::default(),
    };
    let mut merged = Histogram::new();
    let mut first_err: Option<WireError> = None;
    for j in joins {
        match j.join() {
            Ok(Ok(out)) => {
                report.committed += out.committed;
                report.errors += out.errors;
                report.retries += out.retries;
                merged.merge(&out.latency_us);
            }
            Ok(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Err(_) => {
                if first_err.is_none() {
                    first_err = Some(WireError::Unexpected("load thread panicked".into()));
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    report.elapsed = started.elapsed();
    report.latency_us = merged.summary();
    let secs = report.elapsed.as_secs_f64();
    report.throughput_tps = if secs > 0.0 {
        report.committed as f64 / secs
    } else {
        0.0
    };
    Ok(report)
}

fn run_connection(
    cfg: &LoadConfig,
    index: usize,
    n_records: u64,
    s_rec: usize,
) -> WireResult<ConnOutcome> {
    let mut client = Client::connect(&cfg.addr)?;
    client.set_timeout(Some(cfg.timeout))?;

    // Independent deterministic stream per connection.
    let seed = cfg
        .seed
        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut workload: Box<dyn Workload> = match cfg.workload {
        WorkloadKind::Uniform => {
            Box::new(UniformWorkload::new(n_records, cfg.updates_per_txn, seed))
        }
        WorkloadKind::Zipf(theta) => Box::new(ZipfWorkload::new(
            n_records,
            cfg.updates_per_txn,
            theta,
            seed,
        )),
    };

    let mut out = ConnOutcome {
        committed: 0,
        errors: 0,
        retries: 0,
        latency_us: Histogram::new(),
    };
    // Deterministic per-connection stream deciding which transactions
    // deliberately cross shards (xorshift64, independent of the record
    // distribution so remapping never perturbs it).
    let mut cross_rng = seed ^ 0x5DEE_CE66_D000_000B;
    if cross_rng == 0 {
        cross_rng = 0x9E37_79B9_7F4A_7C15;
    }
    let period = (cfg.target_rate_per_conn > 0.0)
        .then(|| Duration::from_secs_f64(1.0 / cfg.target_rate_per_conn));
    let schedule_start = Instant::now();
    for k in 0..cfg.txns_per_conn {
        let mut updates: Vec<(RecordId, Vec<Word>)> = workload.next_txn().materialize(s_rec);
        if cfg.shards > 1 {
            cross_rng ^= cross_rng << 13;
            cross_rng ^= cross_rng >> 7;
            cross_rng ^= cross_rng << 17;
            let cross = cfg.cross_fraction > 0.0
                && ((cross_rng >> 11) as f64) / ((1u64 << 53) as f64) < cfg.cross_fraction;
            remap_to_shards(&mut updates, index, cfg.shards, n_records, cross);
        }
        // Open loop: latency is anchored at the transaction's *due* time
        // under the schedule, not the actual send — the fix for
        // coordinated omission. A connection running behind does not
        // sleep; the accumulated delay is charged to every late request.
        let t0 = match period {
            Some(p) => {
                let due = schedule_start + p.mul_f64(k as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                due
            }
            None => Instant::now(),
        };
        match client.retry_transient(cfg.max_retries, |c| c.batch(&updates)) {
            Ok((_committed, retries)) => {
                out.committed += 1;
                out.retries += u64::from(retries);
                let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                out.latency_us.record(us);
            }
            Err(WireError::Remote {
                code: ErrorCode::ShuttingDown,
                ..
            }) => {
                // the server is draining: stop offering load (and do not
                // keep the connection pinned open, which would stall the
                // server's graceful shutdown); not a protocol failure
                return Ok(out);
            }
            Err(WireError::Io(_) | WireError::Protocol(_)) => {
                // the connection is gone or desynchronized: surface it
                out.errors += 1;
                return Ok(out);
            }
            Err(_) => out.errors += 1,
        }
    }
    Ok(out)
}

/// Rewrites each generated record onto the sharded record space: record
/// `r` becomes `(r / shards) * shards + target`, which lands on shard
/// `target` (`rid % shards` routing) while preserving the workload
/// distribution's shape within the shard. An affine transaction targets
/// only the connection's home shard; a cross transaction spreads
/// successive updates over successive shards.
fn remap_to_shards(
    updates: &mut [(RecordId, Vec<Word>)],
    conn_index: usize,
    shards: usize,
    n_records: u64,
    cross: bool,
) {
    let shards = shards as u64;
    let home = conn_index as u64 % shards;
    for (j, (rid, _)) in updates.iter_mut().enumerate() {
        let target = if cross {
            (home + j as u64) % shards
        } else {
            home
        };
        let mut g = (rid.raw() / shards) * shards + target;
        if g >= n_records {
            // the last partial stride: step back one stride, staying on
            // the same shard (valid whenever n_records >= shards)
            g = g.saturating_sub(shards);
        }
        *rid = RecordId(g.min(n_records.saturating_sub(1)));
    }
}

/// Schema tag for [`bench_net_json`] output.
pub const BENCH_NET_SCHEMA: &str = "mmdb-bench-net/v1";

/// Renders a load run as JSON with a fixed key set. `ckpts_completed`
/// comes from the server (background checkpoints during the run).
pub fn bench_net_json(
    cfg: &LoadConfig,
    report: &LoadReport,
    info: &ServerInfo,
    ckpts_completed: u64,
) -> String {
    let lat = &report.latency_us;
    let v = Value::Obj(vec![
        ("schema".into(), Value::s(BENCH_NET_SCHEMA)),
        (
            "config".into(),
            Value::Obj(vec![
                ("connections".into(), Value::u(report.connections as u64)),
                ("txns_per_conn".into(), Value::u(cfg.txns_per_conn)),
                (
                    "updates_per_txn".into(),
                    Value::u(u64::from(cfg.updates_per_txn)),
                ),
                ("workload".into(), Value::s(cfg.workload.label())),
                ("zipf_theta".into(), Value::f(cfg.workload.theta())),
                ("seed".into(), Value::u(cfg.seed)),
                ("algorithm".into(), Value::s(&info.algorithm)),
                ("n_records".into(), Value::u(info.n_records)),
                (
                    "target_rate_per_conn".into(),
                    Value::f(cfg.target_rate_per_conn),
                ),
            ]),
        ),
        (
            "results".into(),
            Value::Obj(vec![
                ("committed".into(), Value::u(report.committed)),
                ("errors".into(), Value::u(report.errors)),
                ("retries".into(), Value::u(report.retries)),
                ("elapsed_s".into(), Value::f(report.elapsed.as_secs_f64())),
                ("throughput_tps".into(), Value::f(report.throughput_tps)),
                (
                    "latency_us".into(),
                    Value::Obj(vec![
                        ("count".into(), Value::u(lat.count)),
                        ("mean".into(), Value::f(lat.mean)),
                        ("p50".into(), Value::u(lat.p50)),
                        ("p90".into(), Value::u(lat.p90)),
                        ("p99".into(), Value::u(lat.p99)),
                        ("p999".into(), Value::u(lat.p999)),
                        ("max".into(), Value::u(lat.max)),
                    ]),
                ),
                ("ckpts_completed".into(), Value::u(ckpts_completed)),
            ]),
        ),
    ]);
    let mut s = v.to_pretty();
    s.push('\n');
    s
}

/// Validates the fixed schema of [`bench_net_json`] output: the schema
/// tag, every required key, and basic type/sanity constraints. Values
/// are wall-clock so CI validates shape, not bytes.
pub fn validate_bench_net_json(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema tag")?;
    if schema != BENCH_NET_SCHEMA {
        return Err(format!("schema {schema:?}, expected {BENCH_NET_SCHEMA:?}"));
    }
    let config = v.get("config").ok_or("missing config")?;
    for key in [
        "connections",
        "txns_per_conn",
        "updates_per_txn",
        "seed",
        "n_records",
    ] {
        config
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("config.{key} missing or not an integer"))?;
    }
    config
        .get("zipf_theta")
        .and_then(Value::as_f64)
        .ok_or("config.zipf_theta missing or not a number")?;
    config
        .get("target_rate_per_conn")
        .and_then(Value::as_f64)
        .ok_or("config.target_rate_per_conn missing or not a number")?;
    for key in ["workload", "algorithm"] {
        config
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("config.{key} missing or not a string"))?;
    }
    let results = v.get("results").ok_or("missing results")?;
    for key in ["committed", "errors", "retries", "ckpts_completed"] {
        results
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("results.{key} missing or not an integer"))?;
    }
    for key in ["elapsed_s", "throughput_tps"] {
        let n = results
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("results.{key} missing or not a number"))?;
        if !n.is_finite() || n < 0.0 {
            return Err(format!("results.{key} = {n} is not a finite non-negative"));
        }
    }
    let lat = results
        .get("latency_us")
        .ok_or("missing results.latency_us")?;
    for key in ["count", "p50", "p90", "p99", "p999", "max"] {
        lat.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("latency_us.{key} missing or not an integer"))?;
    }
    lat.get("mean")
        .and_then(Value::as_f64)
        .ok_or("latency_us.mean missing or not a number")?;
    let committed = results
        .get("committed")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let count = lat.get("count").and_then(Value::as_u64).unwrap_or(0);
    if committed != count {
        return Err(format!(
            "latency_us.count {count} != results.committed {committed}"
        ));
    }
    Ok(())
}

/// Schema tag for [`bench_shard_json`] output.
pub const BENCH_SHARD_SCHEMA: &str = "mmdb-bench-shard/v1";

/// Shard counts every sweep must cover (the scaling curve's x-axis).
const SWEEP_SHARD_COUNTS: [u64; 4] = [1, 2, 4, 8];

/// One point on the shard-scaling curve: a full load run at a fixed
/// shard count and workload.
#[derive(Debug, Clone)]
pub struct ShardSweepEntry {
    /// Shard count the server ran with.
    pub shards: usize,
    /// Workload the driver replayed.
    pub workload: WorkloadKind,
    /// Fraction of deliberately cross-shard transactions.
    pub cross_fraction: f64,
    /// Connections the driver ran.
    pub connections: usize,
    /// Transactions committed across all connections.
    pub committed: u64,
    /// Non-transient failures (0 in a correct run).
    pub errors: u64,
    /// Transparent transient retries absorbed by the driver.
    pub retries: u64,
    /// Wall-clock seconds for the run.
    pub elapsed_s: f64,
    /// Committed transactions per wall-clock second.
    pub throughput_tps: f64,
    /// Median commit latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile commit latency in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile commit latency in microseconds.
    pub p999_us: u64,
    /// Maximum commit latency in microseconds.
    pub max_us: u64,
}

impl ShardSweepEntry {
    /// Builds a sweep point from a completed load run.
    pub fn from_report(cfg: &LoadConfig, report: &LoadReport) -> ShardSweepEntry {
        ShardSweepEntry {
            shards: cfg.shards,
            workload: cfg.workload,
            cross_fraction: cfg.cross_fraction,
            connections: report.connections,
            committed: report.committed,
            errors: report.errors,
            retries: report.retries,
            elapsed_s: report.elapsed.as_secs_f64(),
            throughput_tps: report.throughput_tps,
            p50_us: report.latency_us.p50,
            p99_us: report.latency_us.p99,
            p999_us: report.latency_us.p999,
            max_us: report.latency_us.max,
        }
    }
}

/// Renders a shard sweep as JSON with a fixed key set, mirroring
/// [`bench_net_json`]'s deterministic-schema discipline: keys and
/// shapes never vary run to run, only wall-clock values do.
pub fn bench_shard_json(
    cfg: &LoadConfig,
    log_force_latency_us: u32,
    entries: &[ShardSweepEntry],
) -> String {
    let sweep = entries
        .iter()
        .map(|e| {
            Value::Obj(vec![
                ("shards".into(), Value::u(e.shards as u64)),
                ("workload".into(), Value::s(e.workload.label())),
                ("zipf_theta".into(), Value::f(e.workload.theta())),
                ("cross_fraction".into(), Value::f(e.cross_fraction)),
                ("connections".into(), Value::u(e.connections as u64)),
                ("committed".into(), Value::u(e.committed)),
                ("errors".into(), Value::u(e.errors)),
                ("retries".into(), Value::u(e.retries)),
                ("elapsed_s".into(), Value::f(e.elapsed_s)),
                ("throughput_tps".into(), Value::f(e.throughput_tps)),
                ("p50_us".into(), Value::u(e.p50_us)),
                ("p99_us".into(), Value::u(e.p99_us)),
                ("p999_us".into(), Value::u(e.p999_us)),
                ("max_us".into(), Value::u(e.max_us)),
            ])
        })
        .collect();
    let v = Value::Obj(vec![
        ("schema".into(), Value::s(BENCH_SHARD_SCHEMA)),
        (
            "config".into(),
            Value::Obj(vec![
                ("txns_per_conn".into(), Value::u(cfg.txns_per_conn)),
                (
                    "updates_per_txn".into(),
                    Value::u(u64::from(cfg.updates_per_txn)),
                ),
                ("seed".into(), Value::u(cfg.seed)),
                (
                    "log_force_latency_us".into(),
                    Value::u(u64::from(log_force_latency_us)),
                ),
            ]),
        ),
        ("sweep".into(), Value::Arr(sweep)),
    ]);
    v.to_pretty()
}

/// Validates the fixed schema of [`bench_shard_json`] output: the
/// schema tag, every per-entry key, and that the sweep covers shard
/// counts 1, 2, 4 and 8 (the curve the scaling claim is made from).
pub fn validate_bench_shard_json(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema tag")?;
    if schema != BENCH_SHARD_SCHEMA {
        return Err(format!(
            "schema {schema:?}, expected {BENCH_SHARD_SCHEMA:?}"
        ));
    }
    let config = v.get("config").ok_or("missing config")?;
    for key in [
        "txns_per_conn",
        "updates_per_txn",
        "seed",
        "log_force_latency_us",
    ] {
        config
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("config.{key} missing or not an integer"))?;
    }
    let sweep = v
        .get("sweep")
        .and_then(Value::as_arr)
        .ok_or("missing sweep array")?;
    if sweep.is_empty() {
        return Err("sweep array is empty".into());
    }
    let mut seen_shards = Vec::new();
    for (i, entry) in sweep.iter().enumerate() {
        for key in [
            "shards",
            "connections",
            "committed",
            "errors",
            "retries",
            "p50_us",
            "p99_us",
            "p999_us",
            "max_us",
        ] {
            entry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("sweep[{i}].{key} missing or not an integer"))?;
        }
        for key in [
            "zipf_theta",
            "cross_fraction",
            "elapsed_s",
            "throughput_tps",
        ] {
            let n = entry
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("sweep[{i}].{key} missing or not a number"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("sweep[{i}].{key} = {n} is not finite non-negative"));
            }
        }
        entry
            .get("workload")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("sweep[{i}].workload missing or not a string"))?;
        if let Some(s) = entry.get("shards").and_then(Value::as_u64) {
            seen_shards.push(s);
        }
    }
    for required in SWEEP_SHARD_COUNTS {
        if !seen_shards.contains(&required) {
            return Err(format!("sweep has no entry at shards = {required}"));
        }
    }
    Ok(())
}

/// Schema tag for [`bench_group_json`] output.
pub const BENCH_GROUP_SCHEMA: &str = "mmdb-bench-group/v1";

/// One leg of the group-commit comparison: a full load run with a fixed
/// commit-durability discipline, plus the log-force counters that show
/// the amortization directly.
#[derive(Debug, Clone)]
pub struct GroupCompareEntry {
    /// Commit discipline the server ran with (`"force"` or `"group"`).
    pub mode: &'static str,
    /// Connections the driver ran.
    pub connections: usize,
    /// Transactions committed across all connections.
    pub committed: u64,
    /// Non-transient failures (0 in a correct run).
    pub errors: u64,
    /// Transparent transient retries absorbed by the driver.
    pub retries: u64,
    /// Wall-clock seconds for the run.
    pub elapsed_s: f64,
    /// Committed transactions per wall-clock second.
    pub throughput_tps: f64,
    /// Median commit latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile commit latency in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile commit latency in microseconds.
    pub p999_us: u64,
    /// Maximum commit latency in microseconds.
    pub max_us: u64,
    /// Log forces the engine issued during the run (`log.forces`).
    pub log_forces: u64,
    /// Commits acked through the batched group path
    /// (`log.group_commit.commits`; 0 for the force leg).
    pub group_commits: u64,
}

impl GroupCompareEntry {
    /// Builds a comparison leg from a completed load run and the
    /// server's post-run metrics counters.
    pub fn new(
        mode: &'static str,
        report: &LoadReport,
        log_forces: u64,
        group_commits: u64,
    ) -> GroupCompareEntry {
        GroupCompareEntry {
            mode,
            connections: report.connections,
            committed: report.committed,
            errors: report.errors,
            retries: report.retries,
            elapsed_s: report.elapsed.as_secs_f64(),
            throughput_tps: report.throughput_tps,
            p50_us: report.latency_us.p50,
            p99_us: report.latency_us.p99,
            p999_us: report.latency_us.p999,
            max_us: report.latency_us.max,
            log_forces,
            group_commits,
        }
    }

    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("mode".into(), Value::s(self.mode)),
            ("connections".into(), Value::u(self.connections as u64)),
            ("committed".into(), Value::u(self.committed)),
            ("errors".into(), Value::u(self.errors)),
            ("retries".into(), Value::u(self.retries)),
            ("elapsed_s".into(), Value::f(self.elapsed_s)),
            ("throughput_tps".into(), Value::f(self.throughput_tps)),
            ("p50_us".into(), Value::u(self.p50_us)),
            ("p99_us".into(), Value::u(self.p99_us)),
            ("p999_us".into(), Value::u(self.p999_us)),
            ("max_us".into(), Value::u(self.max_us)),
            ("log_forces".into(), Value::u(self.log_forces)),
            ("group_commits".into(), Value::u(self.group_commits)),
        ])
    }
}

/// Renders a group-vs-force comparison as JSON with a fixed key set.
/// Both legs run the same workload shape on a real (fsynced) log device
/// with no modeled latency; `speedup` is the group leg's throughput over
/// the force leg's.
pub fn bench_group_json(
    cfg: &LoadConfig,
    force: &GroupCompareEntry,
    group: &GroupCompareEntry,
) -> String {
    let speedup = if force.throughput_tps > 0.0 {
        group.throughput_tps / force.throughput_tps
    } else {
        0.0
    };
    let v = Value::Obj(vec![
        ("schema".into(), Value::s(BENCH_GROUP_SCHEMA)),
        (
            "config".into(),
            Value::Obj(vec![
                ("txns_per_conn".into(), Value::u(cfg.txns_per_conn)),
                (
                    "updates_per_txn".into(),
                    Value::u(u64::from(cfg.updates_per_txn)),
                ),
                ("workload".into(), Value::s(cfg.workload.label())),
                ("zipf_theta".into(), Value::f(cfg.workload.theta())),
                ("seed".into(), Value::u(cfg.seed)),
            ]),
        ),
        ("force".into(), force.to_value()),
        ("group".into(), group.to_value()),
        ("speedup".into(), Value::f(speedup)),
    ]);
    let mut s = v.to_pretty();
    s.push('\n');
    s
}

/// Validates the fixed schema of [`bench_group_json`] output: the
/// schema tag, both legs with every required key, mode tags in the
/// right slots, and a finite non-negative speedup.
pub fn validate_bench_group_json(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema tag")?;
    if schema != BENCH_GROUP_SCHEMA {
        return Err(format!(
            "schema {schema:?}, expected {BENCH_GROUP_SCHEMA:?}"
        ));
    }
    let config = v.get("config").ok_or("missing config")?;
    for key in ["txns_per_conn", "updates_per_txn", "seed"] {
        config
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("config.{key} missing or not an integer"))?;
    }
    config
        .get("workload")
        .and_then(Value::as_str)
        .ok_or("config.workload missing or not a string")?;
    for leg in ["force", "group"] {
        let entry = v.get(leg).ok_or_else(|| format!("missing {leg} leg"))?;
        let mode = entry
            .get("mode")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{leg}.mode missing or not a string"))?;
        if mode != leg {
            return Err(format!("{leg}.mode is {mode:?}"));
        }
        for key in [
            "connections",
            "committed",
            "errors",
            "retries",
            "p50_us",
            "p99_us",
            "p999_us",
            "max_us",
            "log_forces",
            "group_commits",
        ] {
            entry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{leg}.{key} missing or not an integer"))?;
        }
        for key in ["elapsed_s", "throughput_tps"] {
            let n = entry
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{leg}.{key} missing or not a number"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("{leg}.{key} = {n} is not finite non-negative"));
            }
        }
    }
    let speedup = v
        .get("speedup")
        .and_then(Value::as_f64)
        .ok_or("missing speedup")?;
    if !speedup.is_finite() || speedup < 0.0 {
        return Err(format!("speedup = {speedup} is not finite non-negative"));
    }
    Ok(())
}

/// Schema tag for [`bench_intra_json`] output.
pub const BENCH_INTRA_SCHEMA: &str = "mmdb-bench-intra/v1";

/// Worker-thread counts every intra-shard sweep must cover (the
/// within-shard scaling curve's x-axis).
const INTRA_THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Parameters for [`run_intra_sweep`].
#[derive(Debug, Clone)]
pub struct IntraSweepConfig {
    /// Wall-clock budget per sweep point.
    pub duration: Duration,
    /// Base RNG seed; each worker derives an independent stream.
    pub seed: u64,
    /// Mixed leg: one single-shard commit per this many operations
    /// (the rest are point reads).
    pub write_every: u64,
}

impl Default for IntraSweepConfig {
    fn default() -> IntraSweepConfig {
        IntraSweepConfig {
            duration: Duration::from_millis(200),
            seed: 42,
            write_every: 8,
        }
    }
}

/// One point on the within-shard scaling curve: `threads` workers
/// hammering a single shard in-process, with the point-read path either
/// lock-free (seqlock mirror) or forced through the shard gate.
#[derive(Debug, Clone)]
pub struct IntraPoint {
    /// Operation mix: `"read"` (point reads only) or `"mixed"` (reads
    /// plus periodic single-shard commits).
    pub leg: &'static str,
    /// Read path: `"lockfree"` (seqlock mirror) or `"locked"` (every
    /// read takes the shard gate — the single-mutex baseline).
    pub mode: &'static str,
    /// Concurrent worker threads.
    pub threads: usize,
    /// Point reads completed across all workers.
    pub reads: u64,
    /// Single-shard transactions committed across all workers.
    pub commits: u64,
    /// Operations that failed (0 in a correct run).
    pub errors: u64,
    /// Wall-clock seconds for the point.
    pub elapsed_s: f64,
    /// Total operations (reads + commits) per wall-clock second.
    pub ops_per_s: f64,
}

/// Runs the full within-shard sweep in-process: one single-shard
/// database, `{read, mixed} × {lockfree, locked} × {1, 2, 4, 8}`
/// worker threads, each point running for the configured duration.
/// In-process because the thing under test is the engine's internal
/// concurrency (seqlock reads, per-segment write latches), not the
/// network stack.
pub fn run_intra_sweep(cfg: &IntraSweepConfig) -> Result<Vec<IntraPoint>, String> {
    let db = mmdb_shard::ShardedMmdb::open_in_memory(
        mmdb_core::MmdbConfig::small(mmdb_types::Algorithm::FuzzyCopy),
        1,
    )
    .map_err(|e| format!("open: {e}"))?;
    let db = std::sync::Arc::new(db);
    let mut points = Vec::new();
    for leg in ["read", "mixed"] {
        for mode in ["lockfree", "locked"] {
            db.set_lockfree_reads(mode == "lockfree");
            for &threads in &INTRA_THREAD_COUNTS {
                points.push(run_intra_point(&db, cfg, leg, mode, threads)?);
            }
        }
    }
    db.set_lockfree_reads(true);
    Ok(points)
}

fn run_intra_point(
    db: &std::sync::Arc<mmdb_shard::ShardedMmdb>,
    cfg: &IntraSweepConfig,
    leg: &'static str,
    mode: &'static str,
    threads: usize,
) -> Result<IntraPoint, String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let start = std::sync::Arc::new(AtomicBool::new(false));
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let n_records = db.n_records();
    let words = db.record_words();
    let writes = leg == "mixed";
    let write_every = cfg.write_every.max(1);
    let mut joins = Vec::with_capacity(threads);
    for t in 0..threads {
        let db = std::sync::Arc::clone(db);
        let start = std::sync::Arc::clone(&start);
        let stop = std::sync::Arc::clone(&stop);
        let mut rng = cfg
            .seed
            .wrapping_add((t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        joins.push(std::thread::spawn(move || {
            while !start.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            let (mut reads, mut commits, mut errors) = (0u64, 0u64, 0u64);
            let mut op = 0u64;
            while !stop.load(Ordering::Relaxed) {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let rid = RecordId(rng % n_records);
                if writes && op % write_every == write_every - 1 {
                    let value = vec![(rng >> 32) as Word, op as Word]
                        .into_iter()
                        .cycle()
                        .take(words)
                        .collect::<Vec<_>>();
                    match db.run_txn(&[(rid, value)]) {
                        Ok(_) => commits += 1,
                        Err(_) => errors += 1,
                    }
                } else {
                    match db.read_committed(rid) {
                        Ok(_) => reads += 1,
                        Err(_) => errors += 1,
                    }
                }
                op += 1;
            }
            (reads, commits, errors)
        }));
    }
    let t0 = Instant::now();
    start.store(true, Ordering::Release);
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let (mut reads, mut commits, mut errors) = (0u64, 0u64, 0u64);
    for j in joins {
        let (r, c, e) = j.join().map_err(|_| "intra worker panicked".to_string())?;
        reads += r;
        commits += c;
        errors += e;
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let ops = reads + commits;
    Ok(IntraPoint {
        leg,
        mode,
        threads,
        reads,
        commits,
        errors,
        elapsed_s,
        ops_per_s: if elapsed_s > 0.0 {
            ops as f64 / elapsed_s
        } else {
            0.0
        },
    })
}

/// The sweep point at `(leg, mode, threads)`, if present.
fn intra_point<'a>(
    points: &'a [IntraPoint],
    leg: &str,
    mode: &str,
    threads: usize,
) -> Option<&'a IntraPoint> {
    points
        .iter()
        .find(|p| p.leg == leg && p.mode == mode && p.threads == threads)
}

/// Renders an intra-shard sweep as JSON with a fixed key set, mirroring
/// the other bench emitters' deterministic-schema discipline. The
/// headline `read_speedup_4t` (and `mixed_speedup_4t`) is the lock-free
/// leg's throughput over the forced-locked baseline at 4 threads — the
/// number the within-shard scaling claim is made from.
pub fn bench_intra_json(cfg: &IntraSweepConfig, points: &[IntraPoint]) -> String {
    let speedup = |leg: &str| -> f64 {
        match (
            intra_point(points, leg, "lockfree", 4),
            intra_point(points, leg, "locked", 4),
        ) {
            (Some(free), Some(locked)) if locked.ops_per_s > 0.0 => {
                free.ops_per_s / locked.ops_per_s
            }
            _ => 0.0,
        }
    };
    let sweep = points
        .iter()
        .map(|p| {
            Value::Obj(vec![
                ("leg".into(), Value::s(p.leg)),
                ("mode".into(), Value::s(p.mode)),
                ("threads".into(), Value::u(p.threads as u64)),
                ("reads".into(), Value::u(p.reads)),
                ("commits".into(), Value::u(p.commits)),
                ("errors".into(), Value::u(p.errors)),
                ("elapsed_s".into(), Value::f(p.elapsed_s)),
                ("ops_per_s".into(), Value::f(p.ops_per_s)),
            ])
        })
        .collect();
    let v = Value::Obj(vec![
        ("schema".into(), Value::s(BENCH_INTRA_SCHEMA)),
        (
            "config".into(),
            Value::Obj(vec![
                (
                    "duration_ms".into(),
                    Value::u(cfg.duration.as_millis().min(u64::MAX as u128) as u64),
                ),
                ("seed".into(), Value::u(cfg.seed)),
                ("write_every".into(), Value::u(cfg.write_every)),
            ]),
        ),
        ("sweep".into(), Value::Arr(sweep)),
        ("read_speedup_4t".into(), Value::f(speedup("read"))),
        ("mixed_speedup_4t".into(), Value::f(speedup("mixed"))),
    ]);
    let mut s = v.to_pretty();
    s.push('\n');
    s
}

/// Validates the fixed schema of [`bench_intra_json`] output: the
/// schema tag, every `{leg} × {mode} × {1, 2, 4, 8}` point with every
/// required key, and finite non-negative speedup headlines. Values are
/// wall-clock so CI validates shape, not bytes.
pub fn validate_bench_intra_json(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema tag")?;
    if schema != BENCH_INTRA_SCHEMA {
        return Err(format!(
            "schema {schema:?}, expected {BENCH_INTRA_SCHEMA:?}"
        ));
    }
    let config = v.get("config").ok_or("missing config")?;
    for key in ["duration_ms", "seed", "write_every"] {
        config
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("config.{key} missing or not an integer"))?;
    }
    let sweep = v
        .get("sweep")
        .and_then(Value::as_arr)
        .ok_or("missing sweep array")?;
    let mut seen = Vec::new();
    for (i, entry) in sweep.iter().enumerate() {
        let leg = entry
            .get("leg")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("sweep[{i}].leg missing or not a string"))?;
        let mode = entry
            .get("mode")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("sweep[{i}].mode missing or not a string"))?;
        if !["read", "mixed"].contains(&leg) {
            return Err(format!("sweep[{i}].leg = {leg:?} is not a known leg"));
        }
        if !["lockfree", "locked"].contains(&mode) {
            return Err(format!("sweep[{i}].mode = {mode:?} is not a known mode"));
        }
        for key in ["threads", "reads", "commits", "errors"] {
            entry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("sweep[{i}].{key} missing or not an integer"))?;
        }
        for key in ["elapsed_s", "ops_per_s"] {
            let n = entry
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("sweep[{i}].{key} missing or not a number"))?;
            if !n.is_finite() || n < 0.0 {
                return Err(format!("sweep[{i}].{key} = {n} is not finite non-negative"));
            }
        }
        let threads = entry.get("threads").and_then(Value::as_u64).unwrap_or(0);
        seen.push((leg.to_string(), mode.to_string(), threads));
    }
    for leg in ["read", "mixed"] {
        for mode in ["lockfree", "locked"] {
            for threads in INTRA_THREAD_COUNTS {
                let want = (leg.to_string(), mode.to_string(), threads as u64);
                if !seen.contains(&want) {
                    return Err(format!(
                        "sweep has no {leg}/{mode} point at {threads} threads"
                    ));
                }
            }
        }
    }
    for key in ["read_speedup_4t", "mixed_speedup_4t"] {
        let n = v
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing {key}"))?;
        if !n.is_finite() || n < 0.0 {
            return Err(format!("{key} = {n} is not finite non-negative"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> String {
        let cfg = LoadConfig {
            addr: "127.0.0.1:0".into(),
            workload: WorkloadKind::Zipf(0.8),
            ..LoadConfig::default()
        };
        let mut hist = Histogram::new();
        for us in [120, 340, 95, 410, 230] {
            hist.record(us);
        }
        let report = LoadReport {
            connections: 8,
            committed: 5,
            errors: 0,
            retries: 3,
            elapsed: Duration::from_millis(250),
            throughput_tps: 20.0,
            latency_us: hist.summary(),
        };
        let info = ServerInfo {
            n_records: 2048,
            record_words: 8,
            n_segments: 32,
            algorithm: "FUZZYCOPY".into(),
        };
        bench_net_json(&cfg, &report, &info, 4)
    }

    #[test]
    fn bench_json_round_trips_through_its_own_validator() {
        let json = sample_json();
        validate_bench_net_json(&json).expect("fresh output validates");
    }

    #[test]
    fn validator_rejects_wrong_schema_and_missing_keys() {
        let json = sample_json();
        let wrong = json.replace(BENCH_NET_SCHEMA, "mmdb-bench-net/v0");
        assert!(validate_bench_net_json(&wrong).is_err());
        let broken = json.replace("\"throughput_tps\"", "\"throughput\"");
        assert!(validate_bench_net_json(&broken).is_err());
        assert!(validate_bench_net_json("{}").is_err());
        assert!(validate_bench_net_json("not json").is_err());
    }

    #[test]
    fn validator_cross_checks_committed_against_latency_count() {
        let json = sample_json();
        let tampered = json.replace("\"committed\": 5", "\"committed\": 6");
        assert!(validate_bench_net_json(&tampered).is_err());
    }

    fn sample_sweep_json() -> String {
        let cfg = LoadConfig::default();
        let entries: Vec<ShardSweepEntry> = [1usize, 2, 4, 8]
            .iter()
            .map(|&s| ShardSweepEntry {
                shards: s,
                workload: WorkloadKind::Uniform,
                cross_fraction: 0.05,
                connections: 2 * s,
                committed: 400,
                errors: 0,
                retries: 7,
                elapsed_s: 0.5,
                throughput_tps: 800.0 * s as f64,
                p50_us: 900 / s as u64,
                p99_us: 4000 / s as u64,
                p999_us: 9000 / s as u64,
                max_us: 12000 / s as u64,
            })
            .collect();
        bench_shard_json(&cfg, 1000, &entries)
    }

    #[test]
    fn shard_sweep_json_round_trips_through_its_own_validator() {
        let json = sample_sweep_json();
        validate_bench_shard_json(&json).expect("fresh sweep output validates");
    }

    #[test]
    fn shard_sweep_validator_rejects_missing_points_and_keys() {
        let json = sample_sweep_json();
        let wrong = json.replace(BENCH_SHARD_SCHEMA, "mmdb-bench-shard/v0");
        assert!(validate_bench_shard_json(&wrong).is_err());
        let broken = json.replace("\"p99_us\"", "\"p99\"");
        assert!(validate_bench_shard_json(&broken).is_err());
        // drop the 8-shard point: the curve is incomplete
        let missing = json.replace("\"shards\": 8", "\"shards\": 16");
        assert!(validate_bench_shard_json(&missing).is_err());
        assert!(validate_bench_shard_json("{}").is_err());
    }

    fn sample_group_json() -> String {
        let cfg = LoadConfig::default();
        let mut hist = Histogram::new();
        for us in [900, 1100, 950] {
            hist.record(us);
        }
        let force_report = LoadReport {
            connections: 8,
            committed: 800,
            errors: 0,
            retries: 2,
            elapsed: Duration::from_millis(1600),
            throughput_tps: 500.0,
            latency_us: hist.summary(),
        };
        let mut group_report = force_report.clone();
        group_report.throughput_tps = 1400.0;
        group_report.elapsed = Duration::from_millis(570);
        let force = GroupCompareEntry::new("force", &force_report, 805, 0);
        let group = GroupCompareEntry::new("group", &group_report, 122, 800);
        bench_group_json(&cfg, &force, &group)
    }

    #[test]
    fn group_compare_json_round_trips_through_its_own_validator() {
        let json = sample_group_json();
        validate_bench_group_json(&json).expect("fresh group output validates");
    }

    #[test]
    fn group_compare_validator_rejects_wrong_schema_and_swapped_legs() {
        let json = sample_group_json();
        let wrong = json.replace(BENCH_GROUP_SCHEMA, "mmdb-bench-group/v0");
        assert!(validate_bench_group_json(&wrong).is_err());
        let broken = json.replace("\"log_forces\"", "\"forces\"");
        assert!(validate_bench_group_json(&broken).is_err());
        // the legs carry their mode tags; a swap is caught
        let swapped = json
            .replace("\"mode\": \"group\"", "\"mode\": \"TMP\"")
            .replace("\"mode\": \"force\"", "\"mode\": \"group\"")
            .replace("\"mode\": \"TMP\"", "\"mode\": \"force\"");
        assert!(validate_bench_group_json(&swapped).is_err());
        assert!(validate_bench_group_json("{}").is_err());
    }

    fn sample_intra_json() -> String {
        let cfg = IntraSweepConfig::default();
        let mut points = Vec::new();
        for leg in ["read", "mixed"] {
            for mode in ["lockfree", "locked"] {
                for threads in [1usize, 2, 4, 8] {
                    let base = if mode == "lockfree" {
                        800_000.0
                    } else {
                        200_000.0
                    };
                    points.push(IntraPoint {
                        leg,
                        mode,
                        threads,
                        reads: 100_000,
                        commits: if leg == "mixed" { 12_000 } else { 0 },
                        errors: 0,
                        elapsed_s: 0.2,
                        ops_per_s: base * threads as f64,
                    });
                }
            }
        }
        bench_intra_json(&cfg, &points)
    }

    #[test]
    fn intra_json_round_trips_through_its_own_validator() {
        let json = sample_intra_json();
        validate_bench_intra_json(&json).expect("fresh intra output validates");
    }

    #[test]
    fn intra_validator_rejects_missing_points_and_keys() {
        let json = sample_intra_json();
        let wrong = json.replace(BENCH_INTRA_SCHEMA, "mmdb-bench-intra/v0");
        assert!(validate_bench_intra_json(&wrong).is_err());
        let broken = json.replace("\"ops_per_s\"", "\"ops\"");
        assert!(validate_bench_intra_json(&broken).is_err());
        // drop the lockfree/read 8-thread point: the curve is incomplete
        let missing = json.replacen("\"threads\": 8", "\"threads\": 16", 1);
        assert!(validate_bench_intra_json(&missing).is_err());
        assert!(validate_bench_intra_json("{}").is_err());
        assert!(validate_bench_intra_json("not json").is_err());
    }

    #[test]
    fn intra_json_headline_is_the_4_thread_ratio() {
        let json = sample_intra_json();
        let v = parse(&json).expect("valid JSON");
        let speedup = v
            .get("read_speedup_4t")
            .and_then(Value::as_f64)
            .expect("headline present");
        assert!(
            (speedup - 4.0).abs() < 1e-9,
            "800k/200k = 4.0, got {speedup}"
        );
    }

    #[test]
    fn intra_sweep_smoke_runs_and_validates() {
        // tiny budget: this is a correctness smoke, not a measurement
        let cfg = IntraSweepConfig {
            duration: Duration::from_millis(10),
            ..IntraSweepConfig::default()
        };
        let points = run_intra_sweep(&cfg).expect("sweep runs");
        assert_eq!(points.len(), 16);
        assert!(points.iter().all(|p| p.errors == 0), "no errors expected");
        validate_bench_intra_json(&bench_intra_json(&cfg, &points)).expect("validates");
    }

    #[test]
    fn shard_remap_preserves_residue_and_range() {
        let words = vec![0u32; 4];
        for n_records in [16u64, 17, 19, 2048] {
            for shards in [2usize, 4, 8] {
                for conn in 0..shards {
                    let mut updates: Vec<(RecordId, Vec<Word>)> = (0..n_records)
                        .map(|r| (RecordId(r), words.clone()))
                        .collect();
                    remap_to_shards(&mut updates, conn, shards, n_records, false);
                    let home = (conn % shards) as u64;
                    for (rid, _) in &updates {
                        assert!(rid.raw() < n_records);
                        assert_eq!(rid.raw() % shards as u64, home);
                    }
                }
            }
        }
    }

    #[test]
    fn shard_remap_cross_txn_spans_multiple_shards() {
        let words = vec![0u32; 4];
        let mut updates: Vec<(RecordId, Vec<Word>)> =
            (100..104).map(|r| (RecordId(r), words.clone())).collect();
        remap_to_shards(&mut updates, 0, 4, 2048, true);
        let mut shards_hit: Vec<u64> = updates.iter().map(|(r, _)| r.raw() % 4).collect();
        shards_hit.sort_unstable();
        shards_hit.dedup();
        assert_eq!(shards_hit, vec![0, 1, 2, 3]);
    }

    #[test]
    fn workload_kind_labels_are_stable() {
        assert_eq!(WorkloadKind::Uniform.label(), "uniform");
        assert_eq!(WorkloadKind::Zipf(0.5).label(), "zipf");
        assert_eq!(WorkloadKind::Uniform.theta(), 0.0);
        assert_eq!(WorkloadKind::Zipf(0.5).theta(), 0.5);
    }
}
