//! `BENCH_repl.json`: the replication benchmark's fixed-schema report.
//!
//! The report answers the two questions the paper's cost model asks of
//! any backup strategy, transposed to a hot standby: how *fresh* is the
//! backup (the steady-state lag distribution, in primary-clock
//! microseconds), and how long is *recovery* (the measured
//! promotion-to-serving time after the primary is lost). Like the other
//! `BENCH_*.json` artifacts, values are wall-clock — CI validates
//! shape, not bytes.

use mmdb_obs::json::{parse, Value};
use mmdb_obs::HistSummary;

/// Schema tag for [`bench_repl_json`] output.
pub const BENCH_REPL_SCHEMA: &str = "mmdb-bench-repl/v1";

/// Everything one replication benchmark run measures.
#[derive(Debug, Clone, Default)]
pub struct ReplBenchReport {
    /// Shards on the primary (and therefore pull streams).
    pub shards: u64,
    /// Concurrent writer connections driving the primary.
    pub writers: u64,
    /// Checkpoint algorithm under the load.
    pub algorithm: String,
    /// Records in the database.
    pub n_records: u64,
    /// Steady-state measurement window, seconds.
    pub duration_s: f64,
    /// Transactions committed (and acknowledged) during the window.
    pub committed: u64,
    /// Committed transactions per second over the window.
    pub throughput_tps: f64,
    /// Replication lag per ack, microseconds on the primary's clock
    /// (force instant → covering ack).
    pub lag_us: HistSummary,
    /// Kill-to-serving time for the promoted standby, milliseconds.
    pub failover_ms: f64,
    /// Writes acknowledged to clients before the primary was lost.
    pub acked_at_kill: u64,
    /// How many of those the promoted standby actually serves — must
    /// equal [`acked_at_kill`](Self::acked_at_kill) for the no-lost-ack
    /// guarantee.
    pub present_after_promote: u64,
}

/// Renders a [`ReplBenchReport`] as pretty-printed JSON with the fixed
/// key set [`validate_bench_repl_json`] checks.
pub fn bench_repl_json(report: &ReplBenchReport) -> String {
    let lag = &report.lag_us;
    let v = Value::Obj(vec![
        ("schema".into(), Value::s(BENCH_REPL_SCHEMA)),
        (
            "config".into(),
            Value::Obj(vec![
                ("shards".into(), Value::u(report.shards)),
                ("writers".into(), Value::u(report.writers)),
                ("algorithm".into(), Value::s(&report.algorithm)),
                ("n_records".into(), Value::u(report.n_records)),
                ("duration_s".into(), Value::f(report.duration_s)),
            ]),
        ),
        (
            "results".into(),
            Value::Obj(vec![
                ("committed".into(), Value::u(report.committed)),
                ("throughput_tps".into(), Value::f(report.throughput_tps)),
                (
                    "lag_us".into(),
                    Value::Obj(vec![
                        ("count".into(), Value::u(lag.count)),
                        ("mean".into(), Value::f(lag.mean)),
                        ("p50".into(), Value::u(lag.p50)),
                        ("p90".into(), Value::u(lag.p90)),
                        ("p99".into(), Value::u(lag.p99)),
                        ("p999".into(), Value::u(lag.p999)),
                        ("max".into(), Value::u(lag.max)),
                    ]),
                ),
                (
                    "failover".into(),
                    Value::Obj(vec![
                        ("failover_ms".into(), Value::f(report.failover_ms)),
                        ("acked_at_kill".into(), Value::u(report.acked_at_kill)),
                        (
                            "present_after_promote".into(),
                            Value::u(report.present_after_promote),
                        ),
                    ]),
                ),
            ]),
        ),
    ]);
    let mut s = v.to_pretty();
    s.push('\n');
    s
}

/// Validates the fixed schema of [`bench_repl_json`] output: the schema
/// tag, every required key, basic type/sanity constraints, and the
/// no-lost-ack invariant (`present_after_promote == acked_at_kill`).
pub fn validate_bench_repl_json(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema tag")?;
    if schema != BENCH_REPL_SCHEMA {
        return Err(format!("schema {schema:?}, expected {BENCH_REPL_SCHEMA:?}"));
    }
    let config = v.get("config").ok_or("missing config")?;
    for key in ["shards", "writers", "n_records"] {
        config
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("config.{key} missing or not an integer"))?;
    }
    config
        .get("algorithm")
        .and_then(Value::as_str)
        .ok_or("config.algorithm missing or not a string")?;
    config
        .get("duration_s")
        .and_then(Value::as_f64)
        .ok_or("config.duration_s missing or not a number")?;
    let results = v.get("results").ok_or("missing results")?;
    results
        .get("committed")
        .and_then(Value::as_u64)
        .ok_or("results.committed missing or not an integer")?;
    let tps = results
        .get("throughput_tps")
        .and_then(Value::as_f64)
        .ok_or("results.throughput_tps missing or not a number")?;
    if !tps.is_finite() || tps < 0.0 {
        return Err(format!(
            "throughput_tps = {tps} is not a finite non-negative"
        ));
    }
    let lag = results.get("lag_us").ok_or("missing results.lag_us")?;
    for key in ["count", "p50", "p90", "p99", "p999", "max"] {
        lag.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("lag_us.{key} missing or not an integer"))?;
    }
    lag.get("mean")
        .and_then(Value::as_f64)
        .ok_or("lag_us.mean missing or not a number")?;
    let fo = results.get("failover").ok_or("missing results.failover")?;
    let ms = fo
        .get("failover_ms")
        .and_then(Value::as_f64)
        .ok_or("failover.failover_ms missing or not a number")?;
    if !ms.is_finite() || ms < 0.0 {
        return Err(format!("failover_ms = {ms} is not a finite non-negative"));
    }
    let acked = fo
        .get("acked_at_kill")
        .and_then(Value::as_u64)
        .ok_or("failover.acked_at_kill missing or not an integer")?;
    let present = fo
        .get("present_after_promote")
        .and_then(Value::as_u64)
        .ok_or("failover.present_after_promote missing or not an integer")?;
    if present != acked {
        return Err(format!(
            "lost acknowledged writes: acked_at_kill {acked} but only {present} present \
             after promotion"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ReplBenchReport {
        ReplBenchReport {
            shards: 2,
            writers: 4,
            algorithm: "fuzzy-copy".into(),
            n_records: 4096,
            duration_s: 3.0,
            committed: 12_000,
            throughput_tps: 4_000.0,
            lag_us: HistSummary {
                count: 900,
                sum: 2_700_000,
                min: 400,
                max: 9_000,
                mean: 3_000.0,
                p50: 2_500,
                p90: 4_000,
                p99: 7_000,
                p999: 8_500,
            },
            failover_ms: 312.5,
            acked_at_kill: 11_998,
            present_after_promote: 11_998,
        }
    }

    #[test]
    fn report_round_trips_through_validator() {
        let text = bench_repl_json(&report());
        validate_bench_repl_json(&text).expect("valid");
    }

    #[test]
    fn validator_rejects_wrong_schema_and_missing_keys() {
        assert!(validate_bench_repl_json("{}").is_err());
        let text = bench_repl_json(&report()).replace(BENCH_REPL_SCHEMA, "mmdb-bench-net/v1");
        assert!(validate_bench_repl_json(&text).is_err());
        let text = bench_repl_json(&report()).replace("\"p999\"", "\"p998\"");
        assert!(validate_bench_repl_json(&text).is_err());
    }

    #[test]
    fn validator_rejects_lost_acked_writes() {
        let mut r = report();
        r.present_after_promote = r.acked_at_kill - 1;
        let text = bench_repl_json(&r);
        let err = validate_bench_repl_json(&text).expect_err("must fail");
        assert!(err.contains("lost acknowledged writes"), "{err}");
    }
}
