//! **mmdb-repl** — log-shipping replication with hot-standby failover.
//!
//! The paper treats the *backup database* as the recovery-time lever:
//! the fresher the backup, the less log must be replayed after a crash
//! (§2.2's `C_recovery` is dominated by the log-read term). Replication
//! extends that idea across machines: a standby that continuously
//! replays the primary's REDO stream *is* a backup whose staleness is
//! measured in milliseconds, so "recovery" after losing the primary is
//! a promotion, not a log scan.
//!
//! ## Shipping (primary side, [`primary`])
//!
//! Only **durable** bytes ever ship. The force path feeds each shard's
//! [`ShipTap`](mmdb_core::ShipTap) as the tail moves to the device, so
//! the shipper serves standbys from memory without a second device
//! read; a standby that has fallen behind the tap window falls back to
//! a ranged, frame-aligned device read. Standbys *pull*: each
//! `ReplAck{shard, applied, …}` both acknowledges everything below
//! `applied` (releasing semi-sync committers parked on the
//! [`ReplGate`](mmdb_shard::ReplGate)) and long-polls for the next
//! batch — one request/response round per batch, over the ordinary
//! server port.
//!
//! ## Replay (standby side, [`replica`])
//!
//! One pull connection per shard drains that shard's log stream into a
//! shared [`replica::Replica`]: updates buffer per transaction and
//! install at `Commit` (engine-level re-execution of the after-images —
//! idempotent, so restart-and-replay-from-anywhere is safe), prepared
//! branches park until some shard's stream carries the `Decide`, and
//! checkpoint markers are ignored (the standby checkpoints its own
//! engines on its own schedule). The standby serves read-only gets at
//! its tracked applied watermark and rejects writes until
//! [`replica::promote`] stops the pull loops, drains them, presumes
//! abort for undecided branches, and flips it writable — sub-second,
//! because a continuously replaying standby has no log backlog.
//!
//! ## Lag accounting
//!
//! The primary stamps every force instant in its tap and measures
//! `repl.lag_us` when an ack covers it — replication lag attributed
//! entirely with the primary's clock, no cross-machine clock needed.
//! `repl.lag_lsn` is the instantaneous byte gap. [`bench`] packages the
//! lag distribution and a measured failover time as
//! `BENCH_repl.json` (schema [`BENCH_REPL_SCHEMA`]).

#![warn(missing_docs)]

pub mod bench;
pub mod primary;
pub mod replica;

pub use bench::{bench_repl_json, validate_bench_repl_json, ReplBenchReport, BENCH_REPL_SCHEMA};
pub use primary::{
    serve_hello, serve_pull, serve_scan, MAX_REPL_BATCH_BYTES, MAX_REPL_SCAN_RECORDS,
    MAX_REPL_WAIT_MS,
};
pub use replica::{promote, pull_shard_loop, Replica};
