//! The standby's half of replication: continuous replay of the
//! primary's per-shard log streams, and promotion to primary.
//!
//! One pull thread per shard ([`pull_shard_loop`]) drains that shard's
//! stream through the shared [`Replica`] state. Replay is *logical*:
//! each committed transaction's after-images re-execute as a fresh
//! engine transaction on the standby, which writes its own log and
//! takes its own checkpoints — so the standby is at every instant a
//! fully recoverable database in its own right, and its storage
//! fingerprint converges to the primary's. Re-applying an after-image
//! is idempotent, so under-reporting progress is always safe.
//!
//! The applied positions live in the *primary's* LSN space and are
//! persisted (with the decided-outcome map) to `<dir>/repl.state`
//! after every batch, because the standby's own log drifts ahead of
//! the primary's the moment its local checkpointer writes a marker —
//! local durable LSN only equals the primary position at first attach
//! (identical init or a directory copy seeds that alignment). A
//! shard's persisted watermark is held back to the oldest `TxnBegin`
//! whose after-images exist only in this process: an open transaction
//! a batch boundary split before its `Commit`, or a parked undecided
//! `Prepare`d branch. Only the frames from that `TxnBegin` on can
//! rebuild the images, so a restart re-pulls them and re-buffers (or
//! re-parks) the transaction; the decision, which the primary forces
//! on a *different* shard's log, is replayed from the persisted map
//! instead.
//!
//! Cross-shard transactions replay exactly like sharded crash
//! recovery: `Prepare`d branches park in the resolver until any
//! shard's stream carries the `Decide`, then install (or drop) — and
//! [`promote`] presumes abort for branches still undecided when the
//! primary is lost, matching what the primary's own recovery would
//! conclude.

use mmdb_shard::ShardedMmdb;
use mmdb_sync::{LockRank, RankedMutex};
use mmdb_types::{Lsn, MmdbError, RecordId, Result, Word};
use mmdb_wire::Client;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much a standby asks for per pull. This is the *initial* ask:
/// a non-empty batch that decodes to zero whole frames means a single
/// record is larger than it, and the pull loop escalates toward the
/// primary's [`MAX_REPL_BATCH_BYTES`] cap rather than spinning on a
/// mid-frame cut forever.
///
/// [`MAX_REPL_BATCH_BYTES`]: crate::primary::MAX_REPL_BATCH_BYTES
const PULL_BATCH_BYTES: u32 = 1 << 20;

/// The standby's long-poll budget per pull: long enough to batch, short
/// enough that stop/promote requests are honored promptly.
const PULL_WAIT_MS: u32 = 100;

/// Read timeout on the pull connection — must exceed the long-poll
/// budget, and bounds how stale a dead-but-unclosed primary connection
/// can make the stop check.
const PULL_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Backoff between reconnect attempts when the primary is unreachable.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(200);

/// How long [`promote`] waits for the pull threads to drain and exit.
const PROMOTE_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Replay state shared by every shard's pull thread.
///
/// Uncommitted transactions buffer here (`open`), prepared cross-shard
/// branches park until their decision arrives (`pending`), and
/// decisions are remembered for branches whose `Prepare` trails the
/// `Decide` on another shard's stream (`decisions` — unbounded over a
/// standby's lifetime, bounded in practice by the primary's gid space
/// actually exercised while attached).
/// One transaction's (or branch's) after-images.
type AfterImages = Vec<(RecordId, Vec<Word>)>;

/// An uncommitted transaction buffering on the standby: the primary-log
/// LSN of its `TxnBegin` frame and the after-images seen so far. The
/// begin LSN is the shard's persist holdback while the transaction is
/// open — only the frames from there on can rebuild the images, which
/// exist nowhere else until the `Commit` installs them.
struct OpenTxn {
    begin_lsn: u64,
    writes: AfterImages,
}

/// A parked prepared branch: its shard, the primary-log LSN of its
/// `TxnBegin` frame (the shard's persist holdback: a restart re-pulls
/// from there so the branch re-buffers its after-images and re-parks —
/// the `Prepare` frame alone carries none of them), and its
/// after-images.
type ParkedBranch = (usize, u64, AfterImages);

struct Resolver {
    /// `(shard, primary txn id)` → buffering transaction.
    open: HashMap<(usize, u64), OpenTxn>,
    /// `gid` → prepared branches awaiting a decision.
    pending: HashMap<u64, Vec<ParkedBranch>>,
    /// `gid` → decided outcome (true = commit).
    decisions: HashMap<u64, bool>,
}

/// A standby's replication state: per-shard applied positions (in the
/// *primary's* LSN space), the shared cross-shard resolver, and the
/// stop/writable switches promotion flips.
pub struct Replica {
    peer: String,
    stop: AtomicBool,
    writable: AtomicBool,
    /// Pull threads currently running their loop body.
    active_pulls: AtomicUsize,
    /// Per-shard primary-log LSN applied so far (monotone).
    applied: Vec<AtomicU64>,
    /// Directory holding `repl.state` (none for in-memory standbys:
    /// progress then lives only in this process).
    state_dir: Option<PathBuf>,
    /// Distinguishes concurrent [`Replica::save_state`] tmp files so
    /// racing savers never interleave writes on one path.
    save_seq: AtomicU64,
    resolver: RankedMutex<Resolver>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("peer", &self.peer)
            .field("writable", &self.writable.load(Ordering::SeqCst))
            .finish()
    }
}

impl Replica {
    /// Replication state for a standby of `peer` over `db`.
    ///
    /// Applied positions resume from `<state_dir>/repl.state` when it
    /// exists. A first attach (no state file) seeds each shard from its
    /// *local durable LSN*: at that moment — before the standby's own
    /// checkpointer has appended a marker — the local log is LSN-aligned
    /// with the primary's, whether the directory was seeded by an
    /// identical `init` or by copying the primary's directory.
    pub fn new(peer: String, db: &ShardedMmdb, state_dir: Option<PathBuf>) -> Arc<Replica> {
        let shards = db.shards();
        let (applied, decisions) = match state_dir.as_ref().and_then(|d| load_state(d, shards)) {
            Some(state) => state,
            None => (
                (0..shards)
                    .map(|i| db.with_shard(i, |e| e.log_durable_lsn().raw()))
                    .collect(),
                HashMap::new(),
            ),
        };
        Arc::new(Replica {
            peer,
            stop: AtomicBool::new(false),
            writable: AtomicBool::new(false),
            active_pulls: AtomicUsize::new(0),
            applied: applied.into_iter().map(AtomicU64::new).collect(),
            state_dir,
            save_seq: AtomicU64::new(0),
            resolver: RankedMutex::new(
                "repl.resolver",
                LockRank::REPL_RESOLVER,
                Resolver {
                    open: HashMap::new(),
                    pending: HashMap::new(),
                    decisions,
                },
            ),
        })
    }

    /// The primary this standby pulls from.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// True once promoted: the server accepts writes.
    pub fn is_writable(&self) -> bool {
        self.writable.load(Ordering::SeqCst)
    }

    /// Asks the pull threads to exit after their current round.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The primary-log LSN applied so far on `shard` — the standby's
    /// durable read watermark for that shard's records.
    pub fn applied_lsn(&self, shard: usize) -> Lsn {
        Lsn(self.applied[shard].load(Ordering::SeqCst))
    }

    /// Persists the replication state to `<state_dir>/repl.state`
    /// (atomic tmp + rename; no-op for in-memory standbys). Each
    /// shard's persisted watermark is held back to the oldest
    /// `TxnBegin` whose after-images live only in this process — an
    /// open transaction a batch boundary split before its `Commit`, or
    /// a parked undecided `Prepare`d branch — so a restart re-pulls
    /// the frames that rebuild them; under-reporting is safe because
    /// replay is idempotent.
    fn save_state(&self) {
        let Some(dir) = &self.state_dir else {
            return;
        };
        let mut out = String::from("# mmdb replication state (primary-LSN applied watermarks)\n");
        {
            let r = self.resolver.lock();
            for (shard, a) in self.applied.iter().enumerate() {
                let mut v = a.load(Ordering::SeqCst);
                for (&(open_shard, _), txn) in &r.open {
                    if open_shard == shard {
                        v = v.min(txn.begin_lsn);
                    }
                }
                for branches in r.pending.values() {
                    for &(branch_shard, begin_lsn, _) in branches {
                        if branch_shard == shard {
                            v = v.min(begin_lsn);
                        }
                    }
                }
                out.push_str(&format!("applied.{shard}={v}\n"));
            }
            for (gid, commit) in &r.decisions {
                out.push_str(&format!("decision.{gid}={}\n", u8::from(*commit)));
            }
        }
        // every saver renames its own tmp file: the shard pull threads
        // call this concurrently, and racing `fs::write`s on a shared
        // tmp path can tear the file around another thread's rename.
        // Distinct names keep each rename atomic and whole; whichever
        // snapshot lands last is consistent (built under the resolver
        // lock), and a stale winner only under-reports — safe.
        let seq = self.save_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!("repl.state.tmp.{seq}"));
        if std::fs::write(&tmp, &out).is_ok() {
            let _ = std::fs::rename(&tmp, dir.join("repl.state"));
        }
    }

    /// Applies one shard's batch of whole log-record frames starting at
    /// primary LSN `base`, returning how many bytes were consumed (a
    /// trailing partial frame — the batch size cap can cut one — is
    /// left for the next pull).
    fn apply_batch(
        &self,
        db: &ShardedMmdb,
        shard: usize,
        base: u64,
        bytes: &[u8],
    ) -> Result<usize> {
        use mmdb_core::LogRecord;
        let obs = db.obs();
        let t = obs.timer();
        let mut off = 0usize;
        let mut txns = 0u64;
        let mut r = self.resolver.lock();
        while off < bytes.len() {
            let (rec, used) = match LogRecord::decode(&bytes[off..]) {
                Ok(ok) => ok,
                // a torn tail frame: stop here, re-request from `off`
                Err(_) => break,
            };
            match rec {
                LogRecord::TxnBegin { txn, .. } => {
                    r.open.insert(
                        (shard, txn.raw()),
                        OpenTxn {
                            begin_lsn: base + off as u64,
                            writes: Vec::new(),
                        },
                    );
                }
                LogRecord::Update { txn, record, value } => {
                    // An Update without a TxnBegin means the attach
                    // point fell between a transaction's begin and its
                    // installs. The engine appends a transaction's
                    // Update run and Commit contiguously per shard
                    // stream (only the begin frame is written earlier),
                    // and every attach point is a run boundary — so the
                    // full after-image set still follows from here.
                    // Buffer it under the frame's own LSN; only the
                    // data-free begin frame is lost.
                    r.open
                        .entry((shard, txn.raw()))
                        .or_insert_with(|| OpenTxn {
                            begin_lsn: base + off as u64,
                            writes: Vec::new(),
                        })
                        .writes
                        .push((record, value));
                }
                LogRecord::Commit { txn } => {
                    // absent entry: the phase-two commit of a prepared
                    // branch already installed at Decide time — ignore
                    if let Some(open) = r.open.remove(&(shard, txn.raw())) {
                        apply_writes(db, shard, &open.writes)?;
                        txns += 1;
                    }
                }
                LogRecord::Abort { txn } => {
                    r.open.remove(&(shard, txn.raw()));
                }
                LogRecord::Prepare { txn, gid } => {
                    // a parked branch's holdback must be its TxnBegin,
                    // not this Prepare frame: the Prepare carries only
                    // {txn, gid}, so a restart re-pulling from here
                    // would re-park the branch with empty writes and a
                    // later commit decision would install nothing
                    let (begin_lsn, writes) = match r.open.remove(&(shard, txn.raw())) {
                        Some(open) => (open.begin_lsn, open.writes),
                        // attached mid-transaction: nothing buffered,
                        // and nothing a re-pull could rebuild either
                        None => (base + off as u64, Vec::new()),
                    };
                    match r.decisions.get(&gid) {
                        Some(true) => {
                            apply_writes(db, shard, &writes)?;
                            txns += 1;
                        }
                        Some(false) => {}
                        None => {
                            r.pending
                                .entry(gid)
                                .or_default()
                                .push((shard, begin_lsn, writes));
                        }
                    }
                }
                LogRecord::Decide { gid, commit } => {
                    r.decisions.insert(gid, commit);
                    if let Some(branches) = r.pending.remove(&gid) {
                        let mut installed: Vec<usize> = Vec::new();
                        for (branch_shard, _, writes) in branches {
                            if commit {
                                apply_writes(db, branch_shard, &writes)?;
                                txns += 1;
                                if !writes.is_empty() && !installed.contains(&branch_shard) {
                                    installed.push(branch_shard);
                                }
                            }
                        }
                        // force every branch shard that received
                        // installs while the resolver is still locked:
                        // the moment it unlocks, a concurrent
                        // save_state can persist this decision with
                        // the branch shard's watermark already past
                        // its Prepare, and a crash before that shard's
                        // own force would lose the install with no
                        // replay path (the decided map makes the
                        // re-pull a no-op). The pulled shard's batch
                        // force below comes too late for that window.
                        for branch_shard in installed {
                            db.with_shard(branch_shard, |e| e.force_log())?;
                        }
                    }
                }
                // the standby checkpoints its own engines on its own
                // schedule; the primary's markers carry no replay work.
                // Compaction fillers are length-preserving by design, so
                // shipping one costs bytes but never desynchronizes LSNs.
                LogRecord::BeginCheckpoint { .. }
                | LogRecord::EndCheckpoint { .. }
                | LogRecord::Compacted { .. } => {}
            }
            off += used;
        }
        drop(r);
        if off > 0 {
            // the standby's own durability for what it just applied:
            // force this shard's local log before acknowledging
            db.with_shard(shard, |e| e.force_log())?;
        }
        obs.counter("repl.applied_txns", txns);
        obs.counter("repl.applied_bytes", off as u64);
        obs.phase_detail("repl.replay", t, shard as u64);
        Ok(off)
    }
}

/// Re-executes one transaction's after-images on the standby's shard
/// engine, retrying the transient outcomes its own checkpointers can
/// inject (quiesce refusals; the engine reruns two-color aborts
/// itself).
fn apply_writes(db: &ShardedMmdb, shard: usize, writes: &[(RecordId, Vec<Word>)]) -> Result<()> {
    if writes.is_empty() {
        return Ok(());
    }
    let mut tries = 0u32;
    loop {
        match db.with_shard(shard, |e| e.run_txn(writes).map(|_| ())) {
            Err(MmdbError::Quiesced | MmdbError::CheckpointInProgress) if tries < 5000 => {
                tries += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            other => return other,
        }
    }
}

/// Records per re-executed transaction while re-seeding a shard: big
/// enough to amortize commit costs, small enough that each transaction
/// stays within a couple of segments (fewer two-color restarts while
/// the standby's own checkpointer runs).
const BOOTSTRAP_TXN_RECORDS: usize = 64;

/// Records asked for per `ReplScan` page while re-seeding a shard: one
/// round trip covers this many nonzero records, so a bootstrap costs
/// `touched / 1024` round trips instead of one per record.
const BOOTSTRAP_SCAN_RECORDS: u32 = 1024;

/// Re-seeds one shard from the primary's *database* when its *log* no
/// longer reaches back to our applied position: pages the shard's
/// nonzero committed records over the pull connection and re-executes
/// every record that differs locally — including zeroing records the
/// primary holds as zero but the standby does not — then fast-forwards
/// the shard's applied watermark to `durable` (the primary's durable
/// LSN captured at hello, before any read). Returns the number of
/// records rewritten, or `None` on any transport/engine failure — the
/// caller backs off and retries the attach from scratch
/// (under-reporting progress is safe; `applied` only moves after the
/// full copy lands and is locally durable).
fn bootstrap_shard(
    replica: &Arc<Replica>,
    db: &ShardedMmdb,
    client: &mut Client,
    shard: usize,
    durable: u64,
) -> Option<u64> {
    let zero = vec![0; db.record_words()];
    let mut rewritten = 0u64;
    let mut batch: AfterImages = Vec::new();
    let mut from = 0u64;
    while from < db.n_records() {
        if replica.stopping() {
            return None;
        }
        let (next, page) = client
            .repl_scan(shard as u32, from, BOOTSTRAP_SCAN_RECORDS)
            .ok()?;
        if next <= from {
            return None; // a stalled cursor must not spin forever
        }
        let page: HashMap<u64, Vec<Word>> = page.into_iter().collect();
        // The page covers every id in [from, next): an id missing from
        // it is zero on the primary, so diffing against `zero` both
        // skips untouched records and repairs stale local ones.
        for raw in from..next {
            let rid = RecordId(raw);
            if db.shard_of(rid).ok()? != shard {
                continue;
            }
            let want = page.get(&raw).unwrap_or(&zero);
            if db.read_committed(rid).ok()?.as_slice() != want.as_slice() {
                // the shard engine speaks shard-local record ids (the
                // same id space its replayed log frames carry)
                batch.push((db.local_rid(rid), want.clone()));
                rewritten += 1;
                if batch.len() >= BOOTSTRAP_TXN_RECORDS {
                    apply_writes(db, shard, &batch).ok()?;
                    batch.clear();
                }
            }
        }
        from = next;
    }
    if !batch.is_empty() {
        apply_writes(db, shard, &batch).ok()?;
    }
    // Same durability rule as batch replay: force the local log before
    // the watermark moves, so a crash cannot strand the copy.
    db.with_shard(shard, |e| e.force_log()).ok()?;
    replica.applied[shard].fetch_max(durable, Ordering::SeqCst);
    replica.save_state();
    Some(rewritten)
}

/// Loads `<dir>/repl.state`. Returns `None` (first attach) when the
/// file is absent, unreadable, or does not cover all `shards` — a
/// partial file from a different topology must not seed anything.
fn load_state(dir: &std::path::Path, shards: usize) -> Option<(Vec<u64>, HashMap<u64, bool>)> {
    let text = std::fs::read_to_string(dir.join("repl.state")).ok()?;
    let mut applied = vec![None; shards];
    let mut decisions = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once('=')?;
        if let Some(shard) = key.strip_prefix("applied.") {
            let shard: usize = shard.parse().ok()?;
            if shard < shards {
                applied[shard] = Some(value.parse::<u64>().ok()?);
            }
        } else if let Some(gid) = key.strip_prefix("decision.") {
            decisions.insert(gid.parse::<u64>().ok()?, value != "0");
        }
    }
    let applied: Option<Vec<u64>> = applied.into_iter().collect();
    Some((applied?, decisions))
}

/// The next batch size to ask for after a non-empty pull decoded zero
/// whole frames (a single record bigger than the ask, cut mid-frame):
/// double toward the primary's per-batch cap, `None` once already
/// there — a record that cannot ship inside one maximal batch is a
/// hard pull error.
fn escalate_batch_size(current: u32) -> Option<u32> {
    let max = crate::primary::MAX_REPL_BATCH_BYTES as u32;
    if current >= max {
        None
    } else {
        Some(current.saturating_mul(2).min(max))
    }
}

/// Sleeps `total` in small slices, returning early once the replica is
/// stopping.
fn stoppable_sleep(replica: &Replica, total: Duration) {
    let deadline = Instant::now() + total;
    while !replica.stopping() {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

/// The body of one shard's pull thread: connect to the primary,
/// negotiate, then ack-and-pull until stopped, reconnecting with
/// backoff on any transport error. Returns when
/// [`Replica::request_stop`] is observed.
pub fn pull_shard_loop(replica: &Arc<Replica>, db: &ShardedMmdb, shard: usize) {
    let obs = db.obs().clone();
    replica.active_pulls.fetch_add(1, Ordering::SeqCst);
    while !replica.stopping() {
        let mut client = match Client::connect(replica.peer()) {
            Ok(c) => c,
            Err(_) => {
                obs.counter("repl.connect_errors", 1);
                stoppable_sleep(replica, RECONNECT_BACKOFF);
                continue;
            }
        };
        let _ = client.set_timeout(Some(PULL_READ_TIMEOUT));
        let welcome = match client.repl_hello() {
            Ok(w) => w,
            Err(_) => {
                obs.counter("repl.hello_errors", 1);
                stoppable_sleep(replica, RECONNECT_BACKOFF);
                continue;
            }
        };
        if welcome.shards != db.shards() as u32
            || welcome.n_records != db.n_records()
            || welcome.record_words != db.record_words() as u32
        {
            obs.counter("repl.topology_mismatches", 1);
            stoppable_sleep(replica, RECONNECT_BACKOFF);
            continue;
        }
        // The primary's log must reach back to our applied position.
        // When it does not — the primary truncated the prefix before we
        // ever pinned it (a standby attaching to a long-running
        // primary), or truncated past a position we persisted — the
        // missing transactions are gone from its *log* but not from its
        // *database*: re-seed by copying the shard's current committed
        // records over this connection, then stream from the durable
        // LSN the welcome reported. Every commit at or below that LSN
        // is already reflected in the copied values, every later one
        // replays from the log, and re-applying a full-record
        // after-image is idempotent — so the copy needs no freeze on
        // the primary. The hello pinned truncation before reporting
        // LSNs, so the resume point cannot be cut while we copy.
        let (attach_start, attach_durable) =
            welcome.shard_lsns.get(shard).copied().unwrap_or((0, 0));
        if attach_start > replica.applied[shard].load(Ordering::SeqCst) {
            match bootstrap_shard(replica, db, &mut client, shard, attach_durable) {
                Some(records) => {
                    obs.counter("repl.bootstrap_copies", 1);
                    obs.counter("repl.bootstrap_records", records);
                }
                None => {
                    obs.counter("repl.bootstrap_gaps", 1);
                    stoppable_sleep(replica, RECONNECT_BACKOFF);
                    continue;
                }
            }
        }

        let mut batch_bytes = PULL_BATCH_BYTES;
        loop {
            if replica.stopping() {
                break;
            }
            let applied = replica.applied[shard].load(Ordering::SeqCst);
            match client.repl_pull(shard as u32, applied, batch_bytes, PULL_WAIT_MS) {
                Ok((start, durable, bytes)) => {
                    if bytes.is_empty() {
                        obs.gauge("repl.lag_lsn", durable.saturating_sub(applied));
                        continue;
                    }
                    if start != applied {
                        // the primary answered for a different position
                        // than asked (should not happen): resync
                        obs.counter("repl.pull_errors", 1);
                        break;
                    }
                    match replica.apply_batch(db, shard, applied, &bytes) {
                        Ok(consumed) if consumed > 0 => {
                            batch_bytes = PULL_BATCH_BYTES;
                            replica.applied[shard]
                                .fetch_max(applied + consumed as u64, Ordering::SeqCst);
                            replica.save_state();
                            db.with_shard(shard, |e| {
                                e.obs().gauge("repl.applied_lsn", applied + consumed as u64);
                            });
                            obs.gauge(
                                "repl.lag_lsn",
                                durable.saturating_sub(applied + consumed as u64),
                            );
                        }
                        Ok(_) => {
                            // a non-empty batch that decoded to zero
                            // whole frames: one record is larger than
                            // the ask and came back as a mid-frame
                            // cut. Ask bigger (up to the primary's
                            // cap) instead of spinning forever on a
                            // batch that can never contain it.
                            if let Some(larger) = escalate_batch_size(batch_bytes) {
                                obs.counter("repl.batch_escalations", 1);
                                batch_bytes = larger;
                                continue;
                            }
                            obs.counter("repl.pull_errors", 1);
                            break;
                        }
                        Err(_) => {
                            obs.counter("repl.apply_errors", 1);
                            break;
                        }
                    }
                }
                Err(_) => {
                    obs.counter("repl.pull_errors", 1);
                    break;
                }
            }
        }
        if !replica.stopping() {
            stoppable_sleep(replica, RECONNECT_BACKOFF);
        }
    }
    replica.active_pulls.fetch_sub(1, Ordering::SeqCst);
}

/// Promotes the standby: stop the pull loops, wait for them to drain
/// and exit, presume abort for cross-shard branches still undecided
/// (exactly what the lost primary's own recovery would conclude), and
/// flip the server writable. Sub-second in the failover case: the pull
/// loops exit within one long-poll round, and a continuously replaying
/// standby has no log backlog to scan.
pub fn promote(db: &ShardedMmdb, replica: &Replica) -> Result<()> {
    let obs = db.obs();
    let t = obs.timer();
    replica.request_stop();
    let deadline = Instant::now() + PROMOTE_DRAIN_TIMEOUT;
    while replica.active_pulls.load(Ordering::SeqCst) > 0 {
        if Instant::now() >= deadline {
            return Err(MmdbError::Invalid(format!(
                "promotion timed out after {PROMOTE_DRAIN_TIMEOUT:?} waiting for \
                 {} pull thread(s) to drain",
                replica.active_pulls.load(Ordering::SeqCst)
            )));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    {
        let mut r = replica.resolver.lock();
        let aborted = r.pending.len() as u64 + r.open.len() as u64;
        r.pending.clear();
        r.open.clear();
        obs.counter("repl.promote_aborted_branches", aborted);
    }
    // make everything applied locally durable before accepting writes
    for i in 0..db.shards() {
        db.with_shard(i, |e| e.force_log())?;
    }
    // the promoted server is a primary: its replication state is stale
    // the moment it takes its first write
    if let Some(dir) = &replica.state_dir {
        let _ = std::fs::remove_file(dir.join("repl.state"));
    }
    replica.writable.store(true, Ordering::SeqCst);
    obs.counter("repl.promotions", 1);
    obs.phase_detail("repl.promote", t, 0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary::{serve_hello, serve_pull};
    use mmdb_core::MmdbConfig;
    use mmdb_types::Algorithm;

    fn pair(shards: usize) -> (ShardedMmdb, ShardedMmdb) {
        let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
        let primary = ShardedMmdb::open_in_memory(cfg, shards).expect("primary");
        let standby = ShardedMmdb::open_in_memory(cfg, shards).expect("standby");
        serve_hello(&primary, 1, 1).expect("hello");
        (primary, standby)
    }

    /// Replays everything currently shippable from `primary` into
    /// `standby` without a network, mimicking the pull loop.
    fn drain(primary: &ShardedMmdb, standby: &ShardedMmdb, replica: &Replica) {
        for shard in 0..primary.shards() {
            loop {
                let applied = replica.applied[shard].load(Ordering::SeqCst);
                let (start, _durable, bytes) =
                    serve_pull(primary, shard as u32, Lsn(applied), 1 << 20, 0).expect("pull");
                if bytes.is_empty() {
                    break;
                }
                assert_eq!(start, Lsn(applied));
                let consumed = replica
                    .apply_batch(standby, shard, applied, &bytes)
                    .expect("apply");
                assert!(consumed > 0);
                replica.applied[shard].fetch_max(applied + consumed as u64, Ordering::SeqCst);
            }
        }
    }

    #[test]
    fn repl_state_round_trips_and_holds_back_parked_prepares() {
        let (_primary, standby) = pair(2);
        let dir = std::env::temp_dir().join(format!("mmdb-repl-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        let replica = Replica::new("unused".into(), &standby, Some(dir.clone()));
        replica.applied[0].store(777, Ordering::SeqCst);
        replica.applied[1].store(888, Ordering::SeqCst);
        {
            let mut r = replica.resolver.lock();
            // an undecided branch parked on shard 1, its TxnBegin at LSN 555
            r.pending
                .insert(9, vec![(1, 555, vec![(RecordId(1), vec![2; 4])])]);
            r.decisions.insert(4, true);
            r.decisions.insert(5, false);
        }
        replica.save_state();

        // a restarted standby resumes from the file: shard 0 exactly,
        // shard 1 held back to the parked Prepare so it re-pulls and
        // re-parks the branch, and the decisions map intact
        let resumed = Replica::new("unused".into(), &standby, Some(dir.clone()));
        assert_eq!(resumed.applied[0].load(Ordering::SeqCst), 777);
        assert_eq!(resumed.applied[1].load(Ordering::SeqCst), 555);
        assert_eq!(resumed.resolver.lock().decisions.get(&4), Some(&true));
        assert_eq!(resumed.resolver.lock().decisions.get(&5), Some(&false));

        // promotion invalidates the state: the file must be gone
        promote(&standby, &resumed).expect("promote");
        assert!(!dir.join("repl.state").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replayed_standby_matches_primary_fingerprint() {
        let (primary, standby) = pair(2);
        let replica = Replica::new("unused".into(), &standby, None);
        let words = primary.record_words();
        for i in 0..40u64 {
            primary
                .run_txn(&[(RecordId(i % primary.n_records()), vec![i as u32; words])])
                .expect("txn");
        }
        // a cross-shard transaction exercises Prepare/Decide replay
        primary
            .run_txn(&[
                (RecordId(0), vec![0xAAAA; words]),
                (RecordId(1), vec![0xBBBB; words]),
            ])
            .expect("cross");
        drain(&primary, &standby, &replica);
        assert_eq!(primary.fingerprint(), standby.fingerprint());
    }

    #[test]
    fn replay_is_idempotent_from_scratch() {
        let (primary, standby) = pair(2);
        let words = primary.record_words();
        for i in 0..10u64 {
            primary
                .run_txn(&[(RecordId(i), vec![7 + i as u32; words])])
                .expect("txn");
        }
        let replica = Replica::new("unused".into(), &standby, None);
        drain(&primary, &standby, &replica);
        let fp = standby.fingerprint();
        // a standby that lost its applied positions entirely replays
        // from the log start again — after-images make this a no-op
        let fresh = Replica::new("unused".into(), &standby, None);
        for a in &fresh.applied {
            a.store(0, Ordering::SeqCst);
        }
        drain(&primary, &standby, &fresh);
        assert_eq!(standby.fingerprint(), fp);
        assert_eq!(standby.fingerprint(), primary.fingerprint());
    }

    /// Encodes `recs` the way the primary's log lays them out.
    fn frames(recs: &[mmdb_core::LogRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for rec in recs {
            rec.encode_into(&mut buf);
        }
        buf
    }

    fn state_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn save_state_holds_back_open_transactions_split_across_batches() {
        use mmdb_core::LogRecord;
        use mmdb_types::{Timestamp, TxnId};
        let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
        let standby = ShardedMmdb::open_in_memory(cfg, 1).expect("standby");
        let words = standby.record_words();
        let dir = state_dir("split-open");
        let replica = Replica::new("unused".into(), &standby, Some(dir.clone()));

        let head = frames(&[
            LogRecord::TxnBegin {
                txn: TxnId(1),
                tau: Timestamp(1),
            },
            LogRecord::Update {
                txn: TxnId(1),
                record: RecordId(0),
                value: vec![9; words],
            },
        ]);
        let mut full = head.clone();
        LogRecord::Commit { txn: TxnId(1) }.encode_into(&mut full);

        // a batch boundary cut the transaction before its Commit: the
        // after-images buffer in memory only
        let consumed = replica.apply_batch(&standby, 0, 0, &head).expect("head");
        assert_eq!(consumed, head.len());
        replica.applied[0].store(head.len() as u64, Ordering::SeqCst);
        replica.save_state();

        // the persisted watermark must sit at the TxnBegin, not the
        // cut — a restart past the Update frames would ignore the
        // Commit ("attached mid-transaction") and silently drop the
        // committed transaction
        let resumed = Replica::new("unused".into(), &standby, Some(dir.clone()));
        assert_eq!(resumed.applied[0].load(Ordering::SeqCst), 0);

        // replay from the persisted position sees the whole
        // transaction and installs it
        let consumed = resumed.apply_batch(&standby, 0, 0, &full).expect("full");
        assert_eq!(consumed, full.len());
        assert_eq!(
            standby.read_committed(RecordId(0)).expect("read"),
            vec![9; words]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_reparks_prepared_branches_with_their_after_images() {
        use mmdb_core::LogRecord;
        use mmdb_types::{Timestamp, TxnId};
        let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
        let standby = ShardedMmdb::open_in_memory(cfg, 1).expect("standby");
        let words = standby.record_words();
        let dir = state_dir("repark");
        let replica = Replica::new("unused".into(), &standby, Some(dir.clone()));

        let buf = frames(&[
            LogRecord::TxnBegin {
                txn: TxnId(3),
                tau: Timestamp(1),
            },
            LogRecord::Update {
                txn: TxnId(3),
                record: RecordId(1),
                value: vec![5; words],
            },
            LogRecord::Prepare {
                txn: TxnId(3),
                gid: 7,
            },
        ]);
        let consumed = replica.apply_batch(&standby, 0, 0, &buf).expect("apply");
        assert_eq!(consumed, buf.len());
        replica.applied[0].store(buf.len() as u64, Ordering::SeqCst);
        replica.save_state();

        // the persisted holdback is the branch's TxnBegin: re-pulling
        // from the Prepare frame alone could never rebuild the
        // after-images, and the branch would re-park empty
        let resumed = Replica::new("unused".into(), &standby, Some(dir.clone()));
        assert_eq!(resumed.applied[0].load(Ordering::SeqCst), 0);
        let consumed = resumed.apply_batch(&standby, 0, 0, &buf).expect("replay");
        assert_eq!(consumed, buf.len());
        {
            let r = resumed.resolver.lock();
            let parked = &r.pending[&7];
            assert_eq!(parked.len(), 1);
            assert_eq!(parked[0].1, 0, "holdback at the TxnBegin frame");
            assert_eq!(parked[0].2, vec![(RecordId(1), vec![5; words])]);
        }
        // the decision arrives on some stream: the branch's writes
        // must install, not an empty re-park
        let decide = frames(&[LogRecord::Decide {
            gid: 7,
            commit: true,
        }]);
        resumed
            .apply_batch(&standby, 0, buf.len() as u64, &decide)
            .expect("decide");
        assert_eq!(
            standby.read_committed(RecordId(1)).expect("read"),
            vec![5; words]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_save_state_keeps_the_file_parseable() {
        let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
        let standby = ShardedMmdb::open_in_memory(cfg, 2).expect("standby");
        let dir = state_dir("save-race");
        let replica = Replica::new("unused".into(), &standby, Some(dir.clone()));
        replica.save_state();
        // every shard's pull thread saves after every batch; a torn
        // file would silently reseed a restarted standby from its
        // drifted local LSNs
        std::thread::scope(|s| {
            for _ in 0..4 {
                let replica = &replica;
                s.spawn(move || {
                    for _ in 0..100 {
                        replica.save_state();
                    }
                });
            }
            for _ in 0..100 {
                assert!(load_state(&dir, 2).is_some(), "torn repl.state");
            }
        });
        assert!(load_state(&dir, 2).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_size_escalates_to_the_cap_then_fails() {
        let mut size = PULL_BATCH_BYTES;
        let mut steps = 0;
        while let Some(larger) = escalate_batch_size(size) {
            assert!(larger > size);
            size = larger;
            steps += 1;
            assert!(steps < 16, "escalation must terminate");
        }
        assert_eq!(size as usize, crate::primary::MAX_REPL_BATCH_BYTES);
    }

    #[test]
    fn oversized_record_frames_ship_after_batch_escalation() {
        use mmdb_types::DbParams;
        // one record's Update frame (~1.2MB) exceeds the standby's
        // default 1MB ask
        let mut cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
        cfg.params.db = DbParams {
            s_db: 600_000,
            s_rec: 300_000,
            s_seg: 300_000,
        };
        cfg.params.txn.n_ru = 1;
        let primary = ShardedMmdb::open_in_memory(cfg, 1).expect("primary");
        serve_hello(&primary, 1, 1).expect("hello");
        let standby = ShardedMmdb::open_in_memory(cfg, 1).expect("standby");
        let replica = Replica::new("unused".into(), &standby, None);
        let words = primary.record_words();
        primary
            .run_txn(&[(RecordId(0), vec![3; words])])
            .expect("txn");

        // mimic the pull loop: apply whole frames, escalate whenever a
        // non-empty batch decodes to none
        let mut ask = PULL_BATCH_BYTES;
        loop {
            let applied = replica.applied[0].load(Ordering::SeqCst);
            let (_, durable, bytes) = serve_pull(&primary, 0, Lsn(applied), ask, 0).expect("pull");
            if bytes.is_empty() {
                assert_eq!(applied, durable.raw(), "caught up");
                break;
            }
            let consumed = replica
                .apply_batch(&standby, 0, applied, &bytes)
                .expect("apply");
            if consumed == 0 {
                ask = escalate_batch_size(ask).expect("a maximal batch must fit the frame");
                continue;
            }
            ask = PULL_BATCH_BYTES;
            replica.applied[0].fetch_max(applied + consumed as u64, Ordering::SeqCst);
        }
        assert_eq!(
            standby.read_committed(RecordId(0)).expect("read"),
            vec![3; words]
        );
        assert_eq!(primary.fingerprint(), standby.fingerprint());
    }

    #[test]
    fn promote_flips_writable_and_aborts_undecided() {
        let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
        let standby = ShardedMmdb::open_in_memory(cfg, 2).expect("standby");
        let replica = Replica::new("unused".into(), &standby, None);
        // a branch parked without a decision
        replica
            .resolver
            .lock()
            .pending
            .insert(42, vec![(0, 0, vec![(RecordId(0), vec![1; 4])])]);
        assert!(!replica.is_writable());
        promote(&standby, &replica).expect("promote");
        assert!(replica.is_writable());
        assert!(replica.resolver.lock().pending.is_empty());
        // the undecided branch must NOT have been installed
        assert_ne!(
            standby.read_committed(RecordId(0)).expect("read"),
            vec![1; standby.record_words()]
        );
    }
}
