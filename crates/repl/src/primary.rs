//! The primary's half of replication: answering `ReplHello`,
//! `ReplAck`, and `ReplScan` requests against the per-shard ship taps
//! and the committed store.
//!
//! These functions are called from the server's dispatch path on an
//! ordinary worker thread. `serve_pull` may park in the tap's long poll
//! for up to [`MAX_REPL_WAIT_MS`]; it holds no shard lock while parked,
//! but it does occupy a worker — size the worker pool at or above
//! `client connections + shards` when standbys are attached.

use mmdb_shard::ShardedMmdb;
use mmdb_types::{Lsn, MmdbError, RecordId, Result};
use mmdb_wire::{ReplWelcome, ScanRecords, REPL_VERSION};
use std::time::Duration;

/// Cap on one `ReplBatch`'s payload, regardless of what the standby
/// asks for. Comfortably under the wire frame cap, and 4× the
/// standby's default ask so a single oversized record frame (huge
/// `record_words`) can still ship whole once the standby escalates its
/// batch size.
pub const MAX_REPL_BATCH_BYTES: usize = 4 << 20;

/// Cap on how long one pull may park in the tap's long poll. Bounds
/// worker occupancy; an empty batch tells the standby to ask again.
pub const MAX_REPL_WAIT_MS: u32 = 250;

/// Cap on the records one `ReplScan` page returns, regardless of what
/// the standby asks for. Keeps a page under the wire frame cap even at
/// large `record_words`.
pub const MAX_REPL_SCAN_RECORDS: u32 = 4096;

/// Cap on the record ids one `ReplScan` walks, so a page over a sparse
/// range still returns promptly instead of scanning the whole shard in
/// one request.
const MAX_REPL_SCAN_IDS: u64 = 64 * 1024;

/// Serves `ReplHello`: negotiates the replication version, attaches
/// ship taps to every shard (idempotent), engages the semi-sync gate,
/// and reports the topology the standby must match plus each shard's
/// `(start, durable)` log LSNs.
pub fn serve_hello(db: &ShardedMmdb, ver_min: u8, ver_max: u8) -> Result<ReplWelcome> {
    if ver_min > ver_max || ver_min > REPL_VERSION {
        return Err(MmdbError::Invalid(format!(
            "no common replication version: standby speaks {ver_min}..={ver_max}, \
             this primary speaks 1..={REPL_VERSION}"
        )));
    }
    db.enable_ship_taps();
    db.repl_gate().engage();
    db.obs().counter("repl.hello", 1);
    let shard_lsns = (0..db.shards())
        .map(|i| db.with_shard(i, |e| (e.log_start_lsn().raw(), e.log_durable_lsn().raw())))
        .collect();
    Ok(ReplWelcome {
        ver: REPL_VERSION.min(ver_max),
        shards: db.shards() as u32,
        n_records: db.n_records(),
        record_words: db.record_words() as u32,
        shard_lsns,
    })
}

/// Serves one `ReplAck`: publishes the standby's applied LSN to the
/// semi-sync gate, records lag, then reads the next batch — from the
/// tap window when it covers `applied`, long-polling up to `wait_ms`
/// when the standby is caught up, or from the device when the standby
/// has fallen behind the window. Returns `(start, durable, bytes)`;
/// `bytes` may end mid-frame when the size cap cuts a record — the
/// standby applies the whole frames and re-requests the rest.
pub fn serve_pull(
    db: &ShardedMmdb,
    shard: u32,
    applied: Lsn,
    max_bytes: u32,
    wait_ms: u32,
) -> Result<(Lsn, Lsn, Vec<u8>)> {
    let i = shard as usize;
    if i >= db.shards() {
        return Err(MmdbError::Invalid(format!(
            "no shard {shard} (topology has {})",
            db.shards()
        )));
    }
    let Some(tap) = db.ship_tap(i) else {
        return Err(MmdbError::Invalid(
            "replication not initialized on this server (send ReplHello first)".into(),
        ));
    };
    let obs = db.obs();
    db.repl_gate().advance(i, applied);
    if let Some(lag) = tap.ack_lag(applied) {
        obs.observe_duration_us("repl.lag_us", lag);
    }
    let t = obs.timer();
    let max = (max_bytes as usize).clamp(1, MAX_REPL_BATCH_BYTES);
    let wait = Duration::from_millis(u64::from(wait_ms.min(MAX_REPL_WAIT_MS)));
    let (start, durable, bytes) = match tap.read_from(applied, max, wait) {
        mmdb_core::TapRead::Bytes {
            start,
            durable,
            bytes,
        } => (start, durable, bytes),
        mmdb_core::TapRead::Timeout => (applied, tap.durable(), Vec::new()),
        mmdb_core::TapRead::Gap { .. } => {
            // The standby predates the window: one ranged device read,
            // frame-aligned by the log manager.
            obs.counter("repl.window_misses", 1);
            db.with_shard(i, |e| {
                let bytes = e.read_log_range(applied, max)?;
                Ok::<_, MmdbError>((applied, e.log_durable_lsn(), bytes))
            })?
        }
    };
    obs.counter("repl.batches", 1);
    obs.counter("repl.batch_bytes", bytes.len() as u64);
    obs.observe("repl.batch_size", bytes.len() as u64);
    obs.gauge("repl.lag_lsn", durable.raw().saturating_sub(applied.raw()));
    obs.phase_detail("repl.ship", t, i as u64);
    Ok((start, durable, bytes))
}

/// Serves one `ReplScan`: walks record ids from `from`, collecting the
/// shard's nonzero committed values until the record or id cap is hit.
/// Reads go through the lock-free mirror path, so a scan never blocks
/// writers or the checkpointer. Returns `(next, records)`: every id in
/// `[from, next)` was covered, and ids absent from `records` are zero.
pub fn serve_scan(
    db: &ShardedMmdb,
    shard: u32,
    from: u64,
    max_records: u32,
) -> Result<(u64, ScanRecords)> {
    let i = shard as usize;
    if i >= db.shards() {
        return Err(MmdbError::Invalid(format!(
            "no shard {shard} (topology has {})",
            db.shards()
        )));
    }
    let obs = db.obs();
    let t = obs.timer();
    let cap = max_records.clamp(1, MAX_REPL_SCAN_RECORDS) as usize;
    let end = db.n_records().min(from.saturating_add(MAX_REPL_SCAN_IDS));
    let mut records = Vec::new();
    let mut next = from;
    while next < end {
        let rid = RecordId(next);
        if db.shard_of(rid)? == i {
            let value = db.read_committed(rid)?;
            if value.iter().any(|&w| w != 0) {
                records.push((next, value));
            }
        }
        next += 1;
        if records.len() >= cap {
            break;
        }
    }
    obs.counter("repl.scan_pages", 1);
    obs.counter("repl.scan_records", records.len() as u64);
    obs.phase_detail("repl.scan", t, i as u64);
    Ok((next, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_core::MmdbConfig;
    use mmdb_types::{Algorithm, RecordId};

    fn db() -> ShardedMmdb {
        let cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
        ShardedMmdb::open_in_memory(cfg, 2).expect("open")
    }

    #[test]
    fn hello_reports_topology_and_version() {
        let db = db();
        let w = serve_hello(&db, 1, REPL_VERSION).expect("hello");
        assert_eq!(w.ver, REPL_VERSION);
        assert_eq!(w.shards, 2);
        assert_eq!(w.n_records, db.n_records());
        assert_eq!(w.shard_lsns.len(), 2);
        assert!(db.repl_gate().is_engaged());
    }

    #[test]
    fn hello_rejects_disjoint_version_ranges() {
        let db = db();
        assert!(serve_hello(&db, REPL_VERSION + 1, REPL_VERSION + 3).is_err());
        assert!(serve_hello(&db, 3, 1).is_err(), "inverted range");
    }

    #[test]
    fn pull_requires_hello_and_valid_shard() {
        let db = db();
        assert!(serve_pull(&db, 0, Lsn::ZERO, 1024, 0).is_err(), "no hello");
        serve_hello(&db, 1, 1).expect("hello");
        assert!(serve_pull(&db, 7, Lsn::ZERO, 1024, 0).is_err(), "bad shard");
    }

    #[test]
    fn pull_returns_forced_bytes_and_advances_the_gate() {
        let db = db();
        serve_hello(&db, 1, 1).expect("hello");
        db.run_txn(&[(RecordId(0), vec![7; db.record_words()])])
            .expect("txn");
        let (start, durable, bytes) = serve_pull(&db, 0, Lsn::ZERO, 1 << 16, 0).expect("pull");
        assert_eq!(start, Lsn::ZERO);
        assert!(!bytes.is_empty());
        assert!(durable.raw() >= bytes.len() as u64);
        // the ack side: a later pull at `durable` publishes it
        let _ = serve_pull(&db, 0, durable, 1 << 16, 0).expect("pull");
        assert_eq!(db.repl_gate().acked(0), durable);
    }
}
