//! `mmdb-lint` — run the workspace concurrency-discipline check.
//!
//! ```text
//! mmdb-lint check [--root PATH]
//! ```
//!
//! Scans every non-vendored `.rs` file under the root (default: the
//! current directory), applies `lint.baseline`, prints unbaselined
//! findings and stale baseline entries, and exits nonzero if any
//! finding is unbaselined. CI runs this as the `static-analysis` job.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut cmd = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" => cmd = Some("check"),
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: mmdb-lint check [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if cmd != Some("check") {
        eprintln!("usage: mmdb-lint check [--root PATH]");
        return ExitCode::from(2);
    }

    match mmdb_lint::check_workspace(&root) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            for s in &report.stale {
                eprintln!("warning: stale baseline entry `{s}` matched nothing — remove it");
            }
            eprintln!(
                "mmdb-lint: {} file(s), {} violation(s), {} baselined, {} stale entr(ies)",
                report.files,
                report.violations.len(),
                report.suppressed,
                report.stale.len()
            );
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mmdb-lint: {e}");
            ExitCode::from(2)
        }
    }
}
