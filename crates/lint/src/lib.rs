//! **mmdb-lint** — source-level concurrency-discipline analysis.
//!
//! A dependency-free static analyzer for this workspace's five lock
//! rules, built on a hand-rolled lexer ([`lexer`]) rather than a parser
//! crate (the workspace builds offline). The rules are token-level
//! heuristics tuned to this codebase's idioms; each one encodes an
//! invariant the runtime layer (`mmdb-sync`'s rank/deadlock detector)
//! or the paper's protocol audit can only check when the bad
//! interleaving actually happens. The lint catches them at rest:
//!
//! * **L1** — no lock guard held across a blocking operation (device
//!   write/fsync, modeled-latency sleep, socket/channel wait). The
//!   sanctioned shape is the log manager's `PendingForce` two-phase
//!   force: write under the lock, complete (sleep + watermark publish)
//!   outside it. Known hand-off designs are baselined.
//! * **L2** — no direct `.shards[i].lock()` outside the router's
//!   ascending-order acquisition helpers; one helper is the baselined
//!   choke point, so every engine acquisition inherits the 2PC order.
//! * **L3** — every condvar `wait`/`wait_timeout` sits in a predicate
//!   loop (spurious wakeups; the `mmdb-sync` wrappers are the baselined
//!   primitive, where the loop is the caller's contract).
//! * **L4** — no `Instant::now`/`SystemTime::now` inside sim-clocked
//!   code (`crates/sim`, `crates/model`): the simulator owns time
//!   there, and a wall-clock read silently decouples results from the
//!   modeled clock.
//! * **L5** — lock/wait acquisitions must be poison-tolerant:
//!   `.unwrap_or_else(PoisonError::into_inner)` (the workspace
//!   standard), never `.unwrap()`/`.expect(…)` — a panicking writer
//!   must not cascade into every later reader.
//!
//! Findings are suppressed by `lint.baseline` at the workspace root,
//! keyed `(rule, path, enclosing fn)` — line-number free so ordinary
//! edits don't churn it — and every entry must carry a reason. Stale
//! entries are reported so the baseline only ever shrinks.

pub mod lexer;

use lexer::{lex, Tok, TokKind};
use std::path::Path;

/// One rule finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id: `"L1"` … `"L5"`.
    pub rule: &'static str,
    /// Path as given to [`check_source`] (repo-relative in workspace runs).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Enclosing function name, or `"<top>"` outside any function.
    pub func: String,
    /// Human-readable description of the finding.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] in `{}`: {}",
            self.path, self.line, self.rule, self.func, self.message
        )
    }
}

/// A parsed `lint.baseline` file: allowlisted `(rule, path, fn)` keys,
/// each with a mandatory reason.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
}

#[derive(Debug)]
struct BaselineEntry {
    rule: String,
    path: String,
    func: String,
    /// Kept so `Debug` output is self-documenting; the check itself only
    /// needs the key.
    #[allow(dead_code)]
    reason: String,
}

impl Baseline {
    /// Parses baseline text: one `RULE path fn reason…` entry per line;
    /// `#` comments and blank lines are skipped. A missing reason is a
    /// hard error — unsuppressed suppressions are how baselines rot.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), Some(func)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `RULE path fn reason…`, got `{line}`",
                    n + 1
                ));
            };
            if !matches!(rule, "L1" | "L2" | "L3" | "L4" | "L5") {
                return Err(format!(
                    "baseline line {}: `{rule}` is not a lint rule (L1–L5)",
                    n + 1
                ));
            }
            let reason = parts.collect::<Vec<_>>().join(" ");
            if reason.is_empty() {
                return Err(format!(
                    "baseline line {}: entry `{rule} {path} {func}` has no reason \
                     — every suppression must say why",
                    n + 1
                ));
            }
            entries.push(BaselineEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                func: func.to_string(),
                reason,
            });
        }
        Ok(Baseline { entries })
    }

    /// Splits `violations` into (unbaselined, suppressed-count) and
    /// returns the entries that matched nothing (stale).
    pub fn apply(&self, violations: Vec<Violation>) -> (Vec<Violation>, usize, Vec<String>) {
        let mut used = vec![false; self.entries.len()];
        let mut open = Vec::new();
        let mut suppressed = 0usize;
        for v in violations {
            let hit = self
                .entries
                .iter()
                .position(|e| e.rule == v.rule && e.path == v.path && e.func == v.func);
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed += 1;
                }
                None => open.push(v),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| format!("{} {} {}", e.rule, e.path, e.func))
            .collect();
        (open, suppressed, stale)
    }
}

/// Identifiers that mark a blocking operation for L1: modeled-latency
/// sleeps, device flushes, socket writes, bounded channel polls.
const BLOCKING: &[&str] = &[
    "sleep",
    "sync_all",
    "sync_data",
    "write_all",
    "recv_timeout",
];

/// Runs every rule over one file's source. `path` is used for reporting
/// and for L4's path gate; it does not need to exist on disk.
pub fn check_source(path: &str, src: &str) -> Vec<Violation> {
    Scanner::new(path, lex(src)).run()
}

struct Guard {
    /// Binding name (`None` when the pattern yielded no single name).
    name: Option<String>,
    /// Brace depth of the declaring block: the guard dies when it closes.
    depth: i32,
}

struct Scanner {
    path: String,
    toks: Vec<Tok>,
    sim_clocked: bool,
    out: Vec<Violation>,
    depth: i32,
    fn_stack: Vec<(String, i32)>,
    pending_fn: Option<String>,
    loop_stack: Vec<i32>,
    pending_loop: bool,
    guards: Vec<Guard>,
    /// Token index until which a statement-temporary lock guard is live
    /// (e.g. `queue.lock().recv_timeout(…)` holds the guard to the `;`).
    temp_guard_until: usize,
}

impl Scanner {
    fn new(path: &str, toks: Vec<Tok>) -> Scanner {
        let normalized = path.replace('\\', "/");
        let sim_clocked =
            normalized.contains("crates/sim/") || normalized.contains("crates/model/");
        Scanner {
            path: path.to_string(),
            toks,
            sim_clocked,
            out: Vec::new(),
            depth: 0,
            fn_stack: Vec::new(),
            pending_fn: None,
            loop_stack: Vec::new(),
            pending_loop: false,
            guards: Vec::new(),
            temp_guard_until: 0,
        }
    }

    fn func(&self) -> String {
        self.fn_stack
            .last()
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| "<top>".to_string())
    }

    fn report(&mut self, rule: &'static str, line: u32, message: String) {
        let v = Violation {
            rule,
            path: self.path.clone(),
            line,
            func: self.func(),
            message,
        };
        self.out.push(v);
    }

    fn run(mut self) -> Vec<Violation> {
        let toks = std::mem::take(&mut self.toks);
        for i in 0..toks.len() {
            match &toks[i].kind {
                TokKind::Punct('{') => {
                    self.depth += 1;
                    if let Some(name) = self.pending_fn.take() {
                        self.fn_stack.push((name, self.depth));
                    }
                    if self.pending_loop {
                        self.pending_loop = false;
                        self.loop_stack.push(self.depth);
                    }
                }
                TokKind::Punct('}') => {
                    while self.fn_stack.last().is_some_and(|(_, d)| *d == self.depth) {
                        self.fn_stack.pop();
                    }
                    while self.loop_stack.last() == Some(&self.depth) {
                        self.loop_stack.pop();
                    }
                    self.guards.retain(|g| g.depth != self.depth);
                    self.depth -= 1;
                }
                TokKind::Punct(';') => {
                    // a bodyless `fn` signature or a `for` in a bound
                    // never opened a body
                    self.pending_fn = None;
                    self.pending_loop = false;
                }
                TokKind::Ident(id) => match id.as_str() {
                    "fn" => {
                        if let Some(name) = toks.get(i + 1).and_then(Tok::ident) {
                            self.pending_fn = Some(name.to_string());
                        }
                    }
                    "loop" | "while" | "for" => self.pending_loop = true,
                    "drop" => self.handle_drop(&toks, i),
                    "lock" => self.handle_lock(&toks, i),
                    "wait" | "wait_timeout" => self.handle_wait(&toks, i),
                    "Instant" | "SystemTime" => self.handle_clock(&toks, i),
                    m if BLOCKING.contains(&m) => self.handle_blocking(&toks, i),
                    _ => {}
                },
                _ => {}
            }
        }
        self.out
    }

    /// `drop(name)` releases a named guard early.
    fn handle_drop(&mut self, toks: &[Tok], i: usize) {
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            return;
        }
        let Some(name) = toks.get(i + 2).and_then(Tok::ident) else {
            return;
        };
        if toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
            self.guards.retain(|g| g.name.as_deref() != Some(name));
        }
    }

    /// `.lock(…)` — L2 (shard-engine access path), L5 (poison handling),
    /// and L1 guard-liveness bookkeeping.
    fn handle_lock(&mut self, toks: &[Tok], i: usize) {
        if i == 0 || !toks[i - 1].is_punct('.') {
            return;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            return;
        }
        let line = toks[i].line;

        // L2: `…shards[…].lock(…)` — a shard engine locked outside the
        // router's helpers.
        if i >= 2 && toks[i - 2].is_punct(']') {
            if let Some(subj) = index_subject(toks, i - 2) {
                if subj == "shards" {
                    self.report(
                        "L2",
                        line,
                        "shard engine locked directly via `.shards[…].lock()` — all \
                         engine acquisitions must go through the router's \
                         ascending-order helpers"
                            .to_string(),
                    );
                }
            }
        }

        let Some(close) = matching_close(toks, i + 1) else {
            return;
        };
        self.check_l5(toks, i, close);
        self.track_guard(toks, i, close);
    }

    /// L5: `.lock(…)/.wait(…)` chained straight into `.unwrap()` or
    /// `.expect(…)`.
    fn check_l5(&mut self, toks: &[Tok], call: usize, close: usize) {
        if !toks.get(close + 1).is_some_and(|t| t.is_punct('.')) {
            return;
        }
        let Some(m) = toks.get(close + 2).and_then(Tok::ident) else {
            return;
        };
        if m == "unwrap" || m == "expect" {
            let name = toks[call].ident().unwrap_or("lock").to_string();
            let m = m.to_string();
            self.report(
                "L5",
                toks[call].line,
                format!(
                    "`.{name}(…).{m}(…)` propagates lock poisoning — use \
                     `.unwrap_or_else(PoisonError::into_inner)` (workspace standard)"
                ),
            );
        }
    }

    /// L1 bookkeeping: classify this `.lock(…)` as a persistent guard
    /// binding (`let g = x.lock();` — live to end of block) or a
    /// statement temporary (live to the statement's `;`).
    fn track_guard(&mut self, toks: &[Tok], call: usize, close: usize) {
        // Where does this statement start?
        let mut start = call;
        while start > 0 {
            match &toks[start - 1].kind {
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
                _ => start -= 1,
            }
        }
        let is_let = toks.get(start).is_some_and(|t| t.is_ident("let"));

        // Scan the suffix after the lock call: poison-handling adapters
        // and `?` keep it a plain guard; anything else means work runs
        // on the temporary before it drops.
        let mut k = close + 1;
        let terminal = loop {
            match toks.get(k).map(|t| &t.kind) {
                Some(TokKind::Punct('?')) => k += 1,
                Some(TokKind::Punct('.')) => {
                    let m = toks.get(k + 1).and_then(Tok::ident);
                    if matches!(m, Some("unwrap_or_else" | "unwrap" | "expect")) {
                        match toks.get(k + 2) {
                            Some(t) if t.is_punct('(') => match matching_close(toks, k + 2) {
                                Some(c) => k = c + 1,
                                None => break false,
                            },
                            _ => break false,
                        }
                    } else {
                        break false;
                    }
                }
                // `;` ends the statement; `)` / `}` mean the guard is an
                // argument or a tail expression whose lifetime the caller
                // owns — treat as terminal rather than inventing a span.
                Some(TokKind::Punct(';'))
                | Some(TokKind::Punct(')'))
                | Some(TokKind::Punct('}'))
                | None => break true,
                _ => break false,
            }
        };

        if terminal && is_let {
            let name = binding_name(toks, start);
            self.guards.push(Guard {
                name,
                depth: self.depth,
            });
        } else if !terminal {
            // Temporary guard held while the rest of the statement runs.
            if let Some(end) = statement_end(toks, close) {
                self.temp_guard_until = self.temp_guard_until.max(end);
            }
        }
    }

    /// L3 (predicate loop) and L5 for condvar waits. Only calls with at
    /// least one argument count — `Child::wait()` takes none.
    fn handle_wait(&mut self, toks: &[Tok], i: usize) {
        if i == 0 || !toks[i - 1].is_punct('.') {
            return;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            return;
        }
        if toks.get(i + 2).is_some_and(|t| t.is_punct(')')) {
            return; // zero-arg wait: not a condvar
        }
        let Some(close) = matching_close(toks, i + 1) else {
            return;
        };
        self.check_l5(toks, i, close);
        if self.loop_stack.is_empty() {
            let name = toks[i].ident().unwrap_or("wait").to_string();
            self.report(
                "L3",
                toks[i].line,
                format!(
                    "condvar `.{name}(…)` outside a predicate loop — spurious wakeups \
                     make a bare wait a race; use `while !predicate {{ … }}`"
                ),
            );
        }
    }

    /// L4: wall-clock reads inside sim-clocked crates.
    fn handle_clock(&mut self, toks: &[Tok], i: usize) {
        if !self.sim_clocked {
            return;
        }
        let path_now = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
        if path_now {
            let which = toks[i].ident().unwrap_or("Instant").to_string();
            self.report(
                "L4",
                toks[i].line,
                format!(
                    "`{which}::now()` in sim-clocked code — the simulator owns time \
                     here; thread the sim clock through instead"
                ),
            );
        }
    }

    /// L1: a blocking call while any lock guard is live.
    fn handle_blocking(&mut self, toks: &[Tok], i: usize) {
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            return; // not a call
        }
        let held = !self.guards.is_empty() || i < self.temp_guard_until;
        if held {
            let name = toks[i].ident().unwrap_or("<blocking>").to_string();
            self.report(
                "L1",
                toks[i].line,
                format!(
                    "blocking call `{name}(…)` while a lock guard is held — complete \
                     the blocking work outside the critical section (see the log \
                     manager's `PendingForce` two-phase force)"
                ),
            );
        }
    }
}

/// For `x[…]` whose `]` is at `close_bracket`, the identifier right
/// before the matching `[`.
fn index_subject(toks: &[Tok], close_bracket: usize) -> Option<&str> {
    let mut depth = 0i32;
    let mut j = close_bracket;
    loop {
        match &toks[j].kind {
            TokKind::Punct(']') => depth += 1,
            TokKind::Punct('[') => {
                depth -= 1;
                if depth == 0 {
                    return if j == 0 { None } else { toks[j - 1].ident() };
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// First bound identifier of a `let` statement starting at `start`
/// (handles `let mut g`, `let (g, _)`).
fn binding_name(toks: &[Tok], start: usize) -> Option<String> {
    let mut j = start + 1;
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(TokKind::Ident(id)) if id == "mut" => j += 1,
            Some(TokKind::Punct('(')) => j += 1,
            Some(TokKind::Ident(id)) => return Some(id.clone()),
            _ => return None,
        }
    }
}

/// Index of the `;` ending the statement containing `from`, tracking
/// bracket balance so `;` inside nested closures/blocks is skipped.
fn statement_end(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match &t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Punct(';') if depth <= 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match &t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Result of a whole-workspace check.
#[derive(Debug)]
pub struct Report {
    /// Findings not covered by the baseline — these fail the check.
    pub violations: Vec<Violation>,
    /// Findings suppressed by baseline entries.
    pub suppressed: usize,
    /// Baseline entries that matched nothing (candidates for removal).
    pub stale: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

/// Scans every non-vendored `.rs` file under `root` and applies
/// `root/lint.baseline` (an empty baseline if the file is absent).
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let baseline = match std::fs::read_to_string(root.join("lint.baseline")) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("cannot read lint.baseline: {e}")),
    };

    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files).map_err(|e| format!("scan failed: {e}"))?;
    files.sort();

    let mut all = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(root.join(path))
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        all.extend(check_source(path, &src));
    }
    let n_files = files.len();
    let (violations, suppressed, stale) = baseline.apply(all);
    Ok(Report {
        violations,
        suppressed,
        stale,
        files: n_files,
    })
}

/// Directories never scanned: vendored shims, build output, VCS/CI.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        check_source("crates/x/src/lib.rs", src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn clean_code_is_clean() {
        let src = r#"
            fn good(&self) {
                let mut g = self.state.lock();
                *g += 1;
                drop(g);
                std::thread::sleep(D);
            }
            fn wait_ok(&self) {
                let mut s = self.lock();
                loop {
                    if *s { return; }
                    let (guard, _) = self.cv.wait_timeout(s, d);
                    s = guard;
                }
            }
        "#;
        assert!(rules_of(src).is_empty(), "got {:?}", rules_of(src));
    }

    #[test]
    fn l1_guard_held_across_sleep() {
        let src = "fn bad(&self) { let g = self.state.lock(); std::thread::sleep(D); }";
        assert_eq!(rules_of(src), vec!["L1"]);
        // dropping the guard first is fine
        let ok = "fn good(&self) { let g = self.state.lock(); drop(g); std::thread::sleep(D); }";
        assert!(rules_of(ok).is_empty());
        // block scoping releases too
        let scoped = "fn good(&self) { { let g = self.state.lock(); } std::thread::sleep(D); }";
        assert!(rules_of(scoped).is_empty());
    }

    #[test]
    fn l1_temporary_guard_in_chain() {
        let src = "fn bad(&self) { let next = { rx.lock().recv_timeout(d) }; }";
        assert_eq!(rules_of(src), vec!["L1"]);
    }

    #[test]
    fn l2_direct_shard_lock() {
        let src = "fn bad(&self, i: usize) { self.core.shards[i].lock().run(); }";
        assert_eq!(rules_of(src), vec!["L2"]);
        let ok = "fn good(&self, i: usize) { self.lock(i).run(); }";
        assert!(rules_of(ok).is_empty());
    }

    #[test]
    fn l3_wait_outside_loop() {
        let src = "fn bad(&self) { let g = self.cv.wait(guard); }";
        assert_eq!(rules_of(src), vec!["L3"]);
        // Child::wait() has no argument: not a condvar
        let child = "fn ok(&self) { child.wait().expect(\"exit\"); }";
        assert!(rules_of(child).is_empty());
    }

    #[test]
    fn l4_wall_clock_only_in_sim_paths() {
        let src = "fn t() { let t0 = Instant::now(); }";
        let hits = check_source("crates/sim/src/clock.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "L4");
        assert!(check_source("crates/log/src/manager.rs", src).is_empty());
    }

    #[test]
    fn l5_poison_unwrap() {
        let src = "fn bad(&self) { let g = self.state.lock().unwrap(); }";
        assert_eq!(rules_of(src), vec!["L5"]);
        let ok =
            "fn good(&self) { let g = self.state.lock().unwrap_or_else(PoisonError::into_inner); }";
        assert!(rules_of(ok).is_empty());
    }

    #[test]
    fn violations_carry_the_enclosing_fn() {
        let src = "impl X { fn outer(&self) { let g = self.m.lock().unwrap(); } }";
        let hits = check_source("x.rs", src);
        assert_eq!(hits[0].func, "outer");
    }

    #[test]
    fn baseline_suppresses_and_reports_stale() {
        let text = "L5 x.rs outer  known: fixed in the next refactor\n\
                    L1 gone.rs nobody  stale entry\n";
        let b = Baseline::parse(text).expect("parse");
        let v = check_source("x.rs", "fn outer() { let g = m.lock().unwrap(); }");
        let (open, suppressed, stale) = b.apply(v);
        assert!(open.is_empty());
        assert_eq!(suppressed, 1);
        assert_eq!(stale, vec!["L1 gone.rs nobody".to_string()]);
    }

    #[test]
    fn baseline_requires_a_reason() {
        assert!(Baseline::parse("L1 a.rs f\n").is_err());
        assert!(Baseline::parse("# comment\n\nL1 a.rs f because\n").is_ok());
    }
}
