//! A minimal hand-rolled Rust lexer — just enough to run token-level
//! lint rules without a parser dependency (the workspace builds
//! offline; `syn` is not available).
//!
//! The lexer's one real job is to make sure the rules never match
//! inside comments, string/char literals, or lifetimes. Everything else
//! — numbers, punctuation — is passed through as opaque tokens. It is
//! deliberately forgiving: unterminated constructs lex to end-of-file
//! rather than erroring, because a lint must never be the thing that
//! fails on code `rustc` accepts.

/// What a token is, stripped to what the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`.`, `(`, `{`, `?`, …).
    Punct(char),
    /// Any literal: number, string, char, byte string. Contents are
    /// irrelevant to every rule, so they are not retained.
    Lit,
    /// A lifetime (`'a`) or the loop-label form (`'outer:`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class and payload.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// Lexes `src` into a token stream (see module docs for guarantees).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        self.out.push(Tok { kind, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.skip_line_comment(),
                '/' if self.peek(1) == Some('*') => self.skip_block_comment(),
                '"' => {
                    self.bump();
                    self.skip_string();
                    self.push(TokKind::Lit, line);
                }
                'r' | 'b' if self.starts_raw_or_byte_literal() => {
                    self.skip_raw_or_byte_literal();
                    self.push(TokKind::Lit, line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => {
                    // Digits plus alphanumeric suffix chars; `.` is left
                    // as punctuation (good enough: `1.5` lexes as three
                    // tokens, and no rule cares).
                    while self
                        .peek(0)
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        self.bump();
                    }
                    self.push(TokKind::Lit, line);
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut ident = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            ident.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident(ident), line);
                }
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn skip_block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// A `"`-terminated string body with `\` escapes; the opening quote
    /// is already consumed.
    fn skip_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Is the cursor at `r"`, `r#"`, `b"`, `b'`, `br"`, or `br#"`?
    fn starts_raw_or_byte_literal(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        if self.peek(i) == Some('r') {
            i += 1;
            while self.peek(i) == Some('#') {
                i += 1;
            }
            return self.peek(i) == Some('"');
        }
        // b"..." or b'...' (without r, `i` is 1 only if we saw `b`)
        i == 1 && matches!(self.peek(i), Some('"') | Some('\''))
    }

    fn skip_raw_or_byte_literal(&mut self) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        if self.peek(0) == Some('r') {
            self.bump();
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening '"'
            loop {
                match self.bump() {
                    Some('"') => {
                        let mut seen = 0usize;
                        while seen < hashes && self.peek(0) == Some('#') {
                            seen += 1;
                            self.bump();
                        }
                        if seen == hashes {
                            return;
                        }
                    }
                    Some(_) => {}
                    None => return,
                }
            }
        }
        match self.bump() {
            // b"..."
            Some('"') => self.skip_string(),
            // b'x'
            Some('\'') => {
                if self.peek(0) == Some('\\') {
                    self.bump();
                    self.bump();
                } else {
                    self.bump();
                }
                self.bump(); // closing '\''
            }
            _ => {}
        }
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening '\''
        match self.peek(0) {
            Some('\\') => {
                // escaped char literal: consume the escape pair first so
                // `'\''` does not end at the escaped quote, then scan to
                // the real closing quote (handles `\u{…}` too).
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Lit, line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                // could be 'x' (char) or 'label (lifetime): a char
                // literal has exactly one char then a closing quote.
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Lit, line);
                } else {
                    while self
                        .peek(0)
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        self.bump();
                    }
                    self.push(TokKind::Lifetime, line);
                }
            }
            Some(_) => {
                // punctuation char literal like '(' or ' '
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Lit, line);
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // comment .lock() here
            /* block .lock() /* nested */ still */
            let s = "string .lock() body";
            let r = r#"raw "quoted" .lock()"#;
            let b = b"bytes .lock()";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"lock".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_line() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            3
        );
        assert!(toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn char_literals_including_escapes() {
        let toks = lex(r"let c = 'x'; let n = '\n'; let q = '\''; let p = '(';");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lit).count(), 4);
        // the trailing `;` after each literal still lexes
        assert_eq!(toks.iter().filter(|t| t.is_punct(';')).count(), 4);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
