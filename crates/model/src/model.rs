//! The analytic performance model (paper §4, re-derived; see DESIGN.md §5).
//!
//! The model computes, for one checkpoint algorithm at one parameter
//! setting, the paper's two metrics:
//!
//! * **processor overhead** in instructions per transaction — synchronous
//!   (work done on behalf of a transaction: LSN maintenance, COU segment
//!   copies, rerun transaction bodies) plus asynchronous (the
//!   checkpointer's work, amortized over the transactions that run during
//!   one checkpoint interval: §4 "the asynchronous cost is divided by the
//!   number of transactions that run during the duration of the
//!   checkpoint and then added to the synchronous cost");
//! * **recovery time** in seconds — reading the backup database plus the
//!   relevant portion of the log (§4).
//!
//! The cost terms deliberately mirror the executable engine
//! (`mmdb-checkpoint`) operation for operation, so the discrete-event
//! simulator can cross-validate the model: the same lock/alloc/IO/LSN/
//! move charges appear in both.

use mmdb_types::{Algorithm, CkptMode, Params};

/// Words assumed per backup header I/O (begin/complete markers). The
/// headers bound the minimum checkpoint duration at very low loads.
const HEADER_WORDS: u64 = 1024;

/// One evaluated operating point of the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPoint {
    /// The algorithm evaluated.
    pub algorithm: Algorithm,
    /// Checkpoint interval `D` (begin-to-begin), seconds.
    pub duration: f64,
    /// Active flush time `D_act ≤ D`, seconds.
    pub active_duration: f64,
    /// Expected segments flushed per checkpoint.
    pub segments_flushed: f64,
    /// Expected COU old-copy saves per checkpoint (0 for non-COU).
    pub cou_copies: f64,
    /// Probability an arriving transaction is aborted at least once by
    /// the two-color rule (0 for non-2C).
    pub p_restart: f64,
    /// Expected reruns per arriving transaction (one rerun per abort:
    /// the aborted transaction is resubmitted after the conflicting
    /// checkpoint completes, where it cannot conflict again).
    pub expected_reruns: f64,
    /// Synchronous checkpoint overhead, instructions/transaction.
    pub sync_per_txn: f64,
    /// Asynchronous checkpoint overhead, instructions/transaction.
    pub async_per_txn: f64,
    /// Log words that recovery must replay (1.5 intervals of production).
    pub log_replay_words: f64,
    /// Recovery time, seconds.
    pub recovery_seconds: f64,
}

impl ModelPoint {
    /// Total checkpoint overhead per transaction — the figures' y-axis.
    pub fn overhead_per_txn(&self) -> f64 {
        self.sync_per_txn + self.async_per_txn
    }
}

/// The analytic model for one algorithm at one parameter set.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticModel {
    /// Model parameters.
    pub params: Params,
    /// Algorithm under evaluation.
    pub algorithm: Algorithm,
}

impl AnalyticModel {
    /// A model instance. Panics if the algorithm is unsound under the
    /// parameterized log mode (FASTFUZZY needs a stable tail).
    pub fn new(params: Params, algorithm: Algorithm) -> AnalyticModel {
        assert!(
            algorithm.sound_under(params.log_mode),
            "{algorithm} requires a stable log tail"
        );
        AnalyticModel { params, algorithm }
    }

    fn n_seg(&self) -> f64 {
        self.params.db.n_segments() as f64
    }

    /// Per-segment I/O service time `T_seek + T_trans·S_seg`.
    fn t_io(&self) -> f64 {
        self.params.disk.service_time(self.params.db.s_seg)
    }

    fn t_header(&self) -> f64 {
        self.params.disk.service_time(HEADER_WORDS)
    }

    /// Segment update rate `μ = λ·N_ru/N_seg`.
    fn mu(&self) -> f64 {
        self.params.segment_update_rate()
    }

    /// Expected segments dirty w.r.t. the target ping-pong copy after an
    /// interval `d` of updates. With ping-pong alternation the target
    /// copy was last written **two** intervals ago, so the dirtying
    /// window is `2d`.
    pub fn expected_flushed(&self, d: f64) -> f64 {
        if self.params.ckpt_mode == CkptMode::Full {
            return self.n_seg();
        }
        let window = 2.0 * d;
        self.n_seg() * (1.0 - (-self.mu() * window).exp())
    }

    /// Active flush time for a checkpoint flushing `n_flush` segments:
    /// two header I/Os plus the segment flushes at array bandwidth.
    pub fn active_time(&self, n_flush: f64) -> f64 {
        2.0 * self.t_header() + n_flush * self.t_io() / self.params.disk.n_bdisks as f64
    }

    /// The minimum checkpoint duration: the fixed point of
    /// `D = active_time(expected_flushed(D))` (§4: "The minimum possible
    /// checkpoint duration is a function of the bandwidth to the backup
    /// disks and the rate at which transactions dirty database
    /// segments").
    pub fn min_duration(&self) -> f64 {
        let mut d = self.active_time(self.n_seg()); // start from the full-flush time
        for _ in 0..200 {
            let next = self.active_time(self.expected_flushed(d));
            if (next - d).abs() < 1e-9 {
                return next;
            }
            d = next;
        }
        d
    }

    /// Expected COU old-copy saves during one checkpoint: the sweep
    /// reaches segment `i` at `t_i ≈ (i/N_seg)·D_act`; the segment is
    /// copied iff updated before being swept, so
    /// `E[copies] = N_seg − (N_seg/(μ·D_act))·(1 − e^{−μ·D_act})`.
    pub fn expected_cou_copies(&self, d_act: f64) -> f64 {
        if !self.algorithm.is_cou() {
            return 0.0;
        }
        let x = self.mu() * d_act;
        if x < 1e-12 {
            return 0.0;
        }
        self.n_seg() * (1.0 - (1.0 - (-x).exp()) / x)
    }

    /// Average probability that an arriving transaction straddles colors
    /// at least once, given the white fraction at checkpoint begin `w0`
    /// and the active fraction `f = D_act/D`. White fraction decays
    /// linearly while the checkpointer is active:
    /// `p̄ = f · ∫₀¹ [1 − (1−w0·u)^N − (w0·u)^N] du`.
    pub fn p_restart(&self, w0: f64, active_fraction: f64) -> f64 {
        if !self.algorithm.is_two_color() || w0 <= 0.0 {
            return 0.0;
        }
        let n = self.params.txn.n_ru as f64;
        // ∫₀¹ (1−w0·u)^N du = (1 − (1−w0)^{N+1}) / (w0·(N+1))
        let int_black = (1.0 - (1.0 - w0).powf(n + 1.0)) / (w0 * (n + 1.0));
        // ∫₀¹ (w0·u)^N du = w0^N / (N+1)
        let int_white = w0.powf(n) / (n + 1.0);
        let p = 1.0 - int_black - int_white;
        (active_fraction * p).clamp(0.0, 1.0 - 1e-9)
    }

    /// Evaluates the model. `interval` requests a checkpoint duration;
    /// values below the minimum are clamped up to it (`None` = minimum,
    /// the paper's "as quickly as possible").
    pub fn evaluate(&self, interval: Option<f64>) -> ModelPoint {
        let p = &self.params;
        let c = &p.cost;
        let d_min = self.min_duration();
        let d = interval.map(|i| i.max(d_min)).unwrap_or(d_min);
        let n_flush = self.expected_flushed(d);
        let d_act = self.active_time(n_flush).min(d);
        let txns_per_interval = (p.txn.lambda * d).max(1e-9);
        let s_seg = p.db.s_seg as f64;
        let gating = self.algorithm.needs_lsn_gating(p.log_mode);

        // ----- asynchronous (checkpointer) cost per checkpoint -----------
        // Mirrors mmdb-checkpoint operation for operation. The sweep
        // examines one instruction per segment visited: the non-2C
        // algorithms scan the whole database for dirty bits; the
        // two-color algorithms pay one paint/dirty pass at begin and then
        // sweep only the frozen white list.
        let scan = if self.algorithm.is_two_color() {
            (self.n_seg() + n_flush) * c.c_move_per_word as f64
        } else {
            self.n_seg() * c.c_move_per_word as f64
        };
        let paint = 0.0;
        // begin header + complete header + end-marker log force
        // (+ begin log force for COU)
        let fixed_io = if self.algorithm.is_cou() { 4.0 } else { 3.0 };

        let cou_copies = self.expected_cou_copies(d_act);
        // Of the copied segments, the fraction that is dirty w.r.t. the
        // target copy gets flushed from the old copy; copies and dirtiness
        // are both ~uniform over segments, so scale by the flush fraction.
        let old_flushes = cou_copies * (n_flush / self.n_seg()).min(1.0);
        let live_flushes = (n_flush - old_flushes).max(0.0);

        let per_flush = |lock_ops: f64, allocs: f64, copy_words: f64, lsn_ops: f64| {
            lock_ops * c.c_lock as f64
                + allocs * c.c_alloc as f64
                + copy_words * c.c_move_per_word as f64
                + lsn_ops * c.c_lsn as f64
                + c.c_io as f64
        };
        let lsn = if gating { 1.0 } else { 0.0 };
        let async_flush_cost = match self.algorithm {
            Algorithm::FastFuzzy => n_flush * per_flush(0.0, 0.0, 0.0, 0.0),
            Algorithm::FuzzyCopy => n_flush * per_flush(0.0, 2.0, s_seg, lsn),
            Algorithm::TwoColorFlush => n_flush * per_flush(2.0, 0.0, 0.0, lsn),
            Algorithm::TwoColorCopy => n_flush * per_flush(2.0, 2.0, s_seg, lsn),
            Algorithm::CouFlush => {
                live_flushes * per_flush(2.0, 0.0, 0.0, 0.0)
                    + old_flushes * per_flush(2.0, 1.0, 0.0, 0.0)
            }
            Algorithm::CouCopy => {
                live_flushes * per_flush(2.0, 2.0, s_seg, 0.0)
                    + old_flushes * per_flush(2.0, 1.0, 0.0, 0.0)
            }
            // COUAC: COUCOPY's cost shape, plus the LSN check on live
            // flushes (its non-quiesced snapshot must respect the WAL).
            Algorithm::CouAc => {
                live_flushes * per_flush(2.0, 2.0, s_seg, lsn)
                    + old_flushes * per_flush(2.0, 1.0, 0.0, 0.0)
            }
        };
        let async_per_ckpt = scan + paint + fixed_io * c.c_io as f64 + async_flush_cost;
        let async_per_txn = async_per_ckpt / txns_per_interval;

        // ----- synchronous (transaction-side) cost per transaction -------
        // LSN maintenance on every update (gated algorithms only).
        let sync_lsn = if gating {
            p.txn.n_ru as f64 * c.c_lsn as f64
        } else {
            0.0
        };
        // COU old-copy saves: alloc + full-segment copy, amortized.
        let sync_cou =
            cou_copies * (c.c_alloc as f64 + s_seg * c.c_move_per_word as f64) / txns_per_interval;
        // Two-color reruns: each reruns the whole transaction (body + its
        // synchronous LSN work).
        let w0 = (n_flush / self.n_seg()).min(1.0);
        let p_restart = self.p_restart(w0, d_act / d);
        // One rerun per abort: the resubmission happens after the
        // conflicting checkpoint completes (the simulator implements
        // exactly this policy, which is what lets it validate the model).
        let expected_reruns = p_restart;
        let sync_rerun = expected_reruns * (p.txn.c_trans as f64 + sync_lsn);
        let sync_per_txn = sync_lsn + sync_cou + sync_rerun;

        // ----- recovery time ----------------------------------------------
        let log_replay_words = self.log_replay_words(d, expected_reruns);
        let recovery_seconds = self.recovery_seconds(log_replay_words);

        ModelPoint {
            algorithm: self.algorithm,
            duration: d,
            active_duration: d_act,
            segments_flushed: n_flush,
            cou_copies,
            p_restart,
            expected_reruns,
            sync_per_txn,
            async_per_txn,
            log_replay_words,
            recovery_seconds,
        }
    }

    /// Log words per committed transaction, computed from the engine's
    /// actual record encoding (begin + `N_ru` updates + commit).
    pub fn log_words_per_txn(&self) -> f64 {
        use mmdb_log::LogRecord;
        use mmdb_types::{RecordId, Timestamp, TxnId};
        let begin = LogRecord::TxnBegin {
            txn: TxnId(1),
            tau: Timestamp(1),
        }
        .encoded_words() as f64;
        let update = LogRecord::Update {
            txn: TxnId(1),
            record: RecordId(1),
            value: vec![0; self.params.db.s_rec as usize],
        }
        .encoded_words() as f64;
        let commit = LogRecord::Commit { txn: TxnId(1) }.encoded_words() as f64;
        begin + self.params.txn.n_ru as f64 * update + commit
    }

    /// Log words an aborted (rerun) transaction leaves behind: begin +
    /// abort records. (The engine logs updates at commit, so an aborted
    /// run's updates never reach the log — a smaller log-bulk penalty
    /// than the paper's update-time-logging design, noted in DESIGN.md.)
    pub fn log_words_per_abort(&self) -> f64 {
        use mmdb_log::LogRecord;
        use mmdb_types::{Timestamp, TxnId};
        let begin = LogRecord::TxnBegin {
            txn: TxnId(1),
            tau: Timestamp(1),
        }
        .encoded_words() as f64;
        let abort = LogRecord::Abort { txn: TxnId(1) }.encoded_words() as f64;
        begin + abort
    }

    /// Log words recovery must replay: the completed checkpoint's begin
    /// marker is on average 1.5 intervals old (ping-pong), and every
    /// transaction in that span contributed its bulk (reruns add theirs).
    pub fn log_replay_words(&self, d: f64, expected_reruns: f64) -> f64 {
        let per_txn = self.log_words_per_txn() + expected_reruns * self.log_words_per_abort();
        1.5 * d * self.params.txn.lambda * per_txn
    }

    /// Inverts the overhead/recovery trade-off (Figure 4b) as a pacing
    /// policy: the longest checkpoint interval whose predicted recovery
    /// time stays within `target_seconds`. Longer intervals mean lower
    /// per-transaction overhead, so the returned interval is the
    /// cheapest operating point that honors the recovery budget.
    ///
    /// Returns `None` when the budget is infeasible — recovery at even
    /// the minimum interval (dominated by the backup read) already
    /// exceeds it. The result is clamped to at most `2^40` seconds.
    pub fn interval_for_recovery(&self, target_seconds: f64) -> Option<f64> {
        let d_min = self.min_duration();
        if self.evaluate(Some(d_min)).recovery_seconds > target_seconds {
            return None;
        }
        // recovery time is monotone in the interval: bracket then bisect
        let mut lo = d_min;
        let mut hi = d_min.max(1.0);
        while self.evaluate(Some(hi)).recovery_seconds <= target_seconds {
            hi *= 2.0;
            if hi > (1u64 << 40) as f64 {
                return Some(hi);
            }
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.evaluate(Some(mid)).recovery_seconds <= target_seconds {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Recovery time for a given log replay volume: full backup read at
    /// array bandwidth plus a sequential striped log read (§4).
    pub fn recovery_seconds(&self, log_words: f64) -> f64 {
        let disk = &self.params.disk;
        let backup = disk.array_time(self.params.db.n_segments(), self.params.db.s_seg);
        let log = if log_words <= 0.0 {
            0.0
        } else {
            disk.t_seek + log_words * disk.t_trans / disk.n_bdisks as f64
        };
        backup + log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::{DiskParams, LogMode};

    fn model(algorithm: Algorithm) -> AnalyticModel {
        let mut p = Params::paper_defaults();
        if algorithm == Algorithm::FastFuzzy {
            p.log_mode = LogMode::StableTail;
        }
        AnalyticModel::new(p, algorithm)
    }

    #[test]
    fn min_duration_near_full_flush_time_at_default_load() {
        // At λ=1000 essentially every segment is dirty over 2·D, so the
        // minimum duration ≈ the full-database flush time ≈ 90 s.
        let m = model(Algorithm::FuzzyCopy);
        let d = m.min_duration();
        assert!((85.0..95.0).contains(&d), "got {d}");
        assert!(m.expected_flushed(d) > 0.99 * 32768.0);
    }

    #[test]
    fn min_duration_small_at_low_load() {
        let mut p = Params::paper_defaults();
        p.txn.lambda = 10.0;
        let m = AnalyticModel::new(p, Algorithm::FuzzyCopy);
        let d = m.min_duration();
        assert!(d < 1.0, "low-load checkpoints are quick, got {d}");
        assert!(d > 0.0);
    }

    #[test]
    fn fastfuzzy_calibration_anchor() {
        // Paper §4: with a stable log tail, FASTFUZZY costs "only a few
        // hundred instructions per transaction".
        let point = model(Algorithm::FastFuzzy).evaluate(None);
        let o = point.overhead_per_txn();
        assert!((100.0..900.0).contains(&o), "got {o}");
    }

    #[test]
    fn cou_is_no_more_costly_than_fuzzy() {
        // Paper §4 / Figure 4a: "generating a transaction consistent
        // backup with a COU algorithm is no more costly than generating a
        // fuzzy backup".
        let fuzzy = model(Algorithm::FuzzyCopy)
            .evaluate(None)
            .overhead_per_txn();
        for alg in [Algorithm::CouCopy, Algorithm::CouFlush] {
            let cou = model(alg).evaluate(None).overhead_per_txn();
            assert!(
                cou < fuzzy * 1.15,
                "{alg}: {cou} should be ≈≤ fuzzy {fuzzy}"
            );
        }
    }

    #[test]
    fn two_color_dominated_by_reruns() {
        // Paper §4: "Most obvious is the relatively high cost of the
        // two-color checkpoint algorithms. Most of the cost comes from
        // rerunning transactions."
        let fuzzy = model(Algorithm::FuzzyCopy)
            .evaluate(None)
            .overhead_per_txn();
        for alg in [Algorithm::TwoColorCopy, Algorithm::TwoColorFlush] {
            let point = model(alg).evaluate(None);
            assert!(
                point.overhead_per_txn() > 3.0 * fuzzy,
                "{alg} should dwarf fuzzy: {} vs {fuzzy}",
                point.overhead_per_txn()
            );
            let rerun_cost = point.expected_reruns * 25_000.0;
            assert!(
                rerun_cost > 0.5 * point.overhead_per_txn(),
                "{alg}: rerun cost should dominate"
            );
        }
    }

    #[test]
    fn recovery_times_cluster_but_two_color_slightly_higher() {
        // Paper §4: "Recovery times seem to vary little from among the
        // algorithms. The slightly longer times for the two-color
        // algorithms arises from the added log bulk."
        let base: Vec<f64> = [Algorithm::FuzzyCopy, Algorithm::CouCopy]
            .iter()
            .map(|a| model(*a).evaluate(None).recovery_seconds)
            .collect();
        let tc = model(Algorithm::TwoColorCopy)
            .evaluate(None)
            .recovery_seconds;
        for b in &base {
            assert!(tc >= *b, "2C recovery at least as long");
            assert!(tc < b * 1.25, "but within ~25%: {tc} vs {b}");
        }
    }

    #[test]
    fn longer_duration_trades_overhead_for_recovery() {
        // Figure 4b's trade-off.
        let m = model(Algorithm::CouCopy);
        let fast = m.evaluate(None);
        let slow = m.evaluate(Some(fast.duration * 4.0));
        assert!(slow.overhead_per_txn() < fast.overhead_per_txn());
        assert!(slow.recovery_seconds > fast.recovery_seconds);
    }

    #[test]
    fn more_disks_help_two_color_more() {
        // Figure 4b: "the increased bandwidth is much more beneficial to
        // 2CCOPY than to COUCOPY... an incoming transaction is less
        // likely to encounter an ongoing checkpoint". The comparison is
        // at equal checkpoint duration (equal recovery time): doubling
        // the disks shrinks the *active* portion of the interval.
        let d = model(Algorithm::TwoColorCopy).min_duration();
        let gain = |alg: Algorithm| {
            let slow = model(alg).evaluate(Some(d)).overhead_per_txn();
            let mut p = Params::paper_defaults();
            p.disk.n_bdisks = 40;
            let fast = AnalyticModel::new(p, alg)
                .evaluate(Some(d))
                .overhead_per_txn();
            slow - fast
        };
        assert!(gain(Algorithm::TwoColorCopy) > 3.0 * gain(Algorithm::CouCopy).abs());
    }

    #[test]
    fn overhead_decreases_with_load() {
        // Figure 4c's general trend.
        for alg in [
            Algorithm::FuzzyCopy,
            Algorithm::CouCopy,
            Algorithm::TwoColorCopy,
        ] {
            let at = |lambda: f64| {
                let mut p = Params::paper_defaults();
                p.txn.lambda = lambda;
                AnalyticModel::new(p, alg).evaluate(None).overhead_per_txn()
            };
            assert!(
                at(100.0) > at(1000.0),
                "{alg}: higher load should amortize better"
            );
        }
    }

    #[test]
    fn two_cflush_cheapest_at_low_load_costly_at_high() {
        // Figure 4c: "2CFLUSH is the least costly low-load alternative,
        // yet is one of the most costly at high loads."
        let at = |alg: Algorithm, lambda: f64| {
            let mut p = Params::paper_defaults();
            p.txn.lambda = lambda;
            AnalyticModel::new(p, alg).evaluate(None).overhead_per_txn()
        };
        let rivals = [
            Algorithm::FuzzyCopy,
            Algorithm::TwoColorCopy,
            Algorithm::CouCopy,
        ];
        for r in rivals {
            assert!(
                at(Algorithm::TwoColorFlush, 20.0) < at(r, 20.0),
                "at low load 2CFLUSH beats {r}"
            );
        }
        assert!(
            at(Algorithm::TwoColorFlush, 1000.0) > at(Algorithm::CouCopy, 1000.0),
            "at high load 2CFLUSH loses to COUCOPY"
        );
    }

    #[test]
    fn segment_size_effects_match_figure_4d() {
        let at = |alg: Algorithm, s_seg: u64, interval: Option<f64>| {
            let mut p = Params::paper_defaults();
            p.db.s_seg = s_seg;
            AnalyticModel::new(p, alg)
                .evaluate(interval)
                .overhead_per_txn()
        };
        // as fast as possible: copy algorithms get worse with big segments
        assert!(at(Algorithm::TwoColorCopy, 32768, None) > at(Algorithm::TwoColorCopy, 2048, None));
        assert!(at(Algorithm::CouCopy, 32768, None) > at(Algorithm::CouCopy, 2048, None));
        // ...while 2CFLUSH gets better
        assert!(
            at(Algorithm::TwoColorFlush, 32768, None) < at(Algorithm::TwoColorFlush, 2048, None)
        );
        // at a fixed 300 s interval, the 2C algorithms improve with
        // segment size (lower active fraction → fewer aborts)
        assert!(
            at(Algorithm::TwoColorCopy, 32768, Some(300.0))
                < at(Algorithm::TwoColorCopy, 2048, Some(300.0))
        );
    }

    #[test]
    fn stable_tail_leaves_non_fast_algorithms_nearly_unchanged() {
        // Figure 4e: "The costs of the other algorithms are nearly
        // identical to those from Figure 4a, since the savings in log
        // synchronization costs is not significant."
        for alg in [
            Algorithm::FuzzyCopy,
            Algorithm::TwoColorCopy,
            Algorithm::CouCopy,
        ] {
            let volatile = model(alg).evaluate(None).overhead_per_txn();
            let mut p = Params::paper_defaults();
            p.log_mode = LogMode::StableTail;
            let stable = AnalyticModel::new(p, alg).evaluate(None).overhead_per_txn();
            assert!(stable <= volatile, "{alg}");
            assert!(
                (volatile - stable) / volatile < 0.05,
                "{alg}: LSN savings should be small ({volatile} → {stable})"
            );
        }
    }

    #[test]
    fn interval_below_minimum_is_clamped() {
        let m = model(Algorithm::FuzzyCopy);
        let min = m.min_duration();
        let p = m.evaluate(Some(min / 10.0));
        assert!((p.duration - min).abs() < 1e-6);
    }

    #[test]
    fn p_restart_bounds_and_monotonicity() {
        let m = model(Algorithm::TwoColorCopy);
        assert_eq!(m.p_restart(0.0, 1.0), 0.0);
        let p_half = m.p_restart(0.5, 1.0);
        let p_full = m.p_restart(1.0, 1.0);
        assert!(p_half > 0.0 && p_half < p_full);
        assert!(p_full < 1.0);
        // N=5, w0=1, f=1 → p = 1 − 2/6 = 2/3
        assert!((p_full - 2.0 / 3.0).abs() < 1e-9);
        // idle fraction scales it down linearly
        assert!((m.p_restart(1.0, 0.5) - p_full / 2.0).abs() < 1e-9);
    }

    #[test]
    fn non_two_color_never_restarts() {
        for alg in [
            Algorithm::FuzzyCopy,
            Algorithm::CouCopy,
            Algorithm::CouFlush,
        ] {
            let p = model(alg).evaluate(None);
            assert_eq!(p.p_restart, 0.0, "{alg}");
            assert_eq!(p.expected_reruns, 0.0, "{alg}");
        }
    }

    #[test]
    fn full_mode_flushes_everything() {
        let mut p = Params::paper_defaults();
        p.ckpt_mode = CkptMode::Full;
        p.txn.lambda = 1.0; // even with almost no load
        let m = AnalyticModel::new(p, Algorithm::FuzzyCopy);
        assert_eq!(m.expected_flushed(10.0), 32768.0);
    }

    #[test]
    fn doubling_disks_halves_min_duration() {
        let m20 = model(Algorithm::FuzzyCopy);
        let mut p = Params::paper_defaults();
        p.disk = DiskParams {
            n_bdisks: 40,
            ..p.disk
        };
        let m40 = AnalyticModel::new(p, Algorithm::FuzzyCopy);
        let ratio = m20.min_duration() / m40.min_duration();
        assert!((ratio - 2.0).abs() < 0.05, "got {ratio}");
    }

    #[test]
    fn interval_for_recovery_honors_the_budget() {
        let m = model(Algorithm::CouCopy);
        let floor = m.evaluate(None).recovery_seconds;

        // infeasible budget: even the minimum interval recovers slower
        assert!(m.interval_for_recovery(floor * 0.5).is_none());

        // a feasible budget: the returned interval's recovery fits, and
        // a slightly longer interval would bust it (maximality)
        let target = floor * 1.5;
        let d = m.interval_for_recovery(target).unwrap();
        assert!(d >= m.min_duration());
        let at = m.evaluate(Some(d)).recovery_seconds;
        assert!(at <= target * 1.0001, "{at} vs {target}");
        let beyond = m.evaluate(Some(d * 1.05)).recovery_seconds;
        assert!(beyond > target, "returned interval should be near-maximal");

        // looser budgets yield longer (cheaper) intervals
        let d2 = m.interval_for_recovery(floor * 2.0).unwrap();
        assert!(d2 > d);
        assert!(m.evaluate(Some(d2)).overhead_per_txn() < m.evaluate(Some(d)).overhead_per_txn());
    }

    #[test]
    fn log_bulk_is_positive_and_scales_with_n_ru() {
        let m = model(Algorithm::FuzzyCopy);
        let base = m.log_words_per_txn();
        assert!(base > 5.0 * 32.0, "at least the update payloads");
        let mut p = Params::paper_defaults();
        p.txn.n_ru = 10;
        let m10 = AnalyticModel::new(p, Algorithm::FuzzyCopy);
        assert!(m10.log_words_per_txn() > 1.8 * base);
    }
}
