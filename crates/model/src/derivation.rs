//! The model's derivation, in full — documentation only.
//!
//! The technical report containing the original model's equations
//! (\[Sale87a\], cited by the paper for "details of the model") was never
//! widely circulated, so this reproduction re-derives the model from the
//! paper's prose and calibrates it against every quantitative statement
//! the paper makes. This module is the canonical write-up; the code in
//! [`crate::AnalyticModel`] implements it term for term.
//!
//! # Notation
//!
//! From Tables 2a–2d: unit costs `C_lock`, `C_alloc`, `C_io`, `C_lsn`
//! (instructions), data movement at 1 instruction/word; disks serving a
//! `d`-word I/O in `T_seek + T_trans·d` seconds, `N_bdisks` of them with
//! linearly scaling aggregate bandwidth; database of `S_db` words in
//! `N_seg = S_db/S_seg` segments of `S_seg` words (`S_rec`-word records);
//! load of `λ` identical transactions/second, each updating `N_ru`
//! distinct uniform records at a base cost of `C_trans`.
//!
//! Derived: per-segment I/O service time `t_io = T_seek + T_trans·S_seg`;
//! per-segment update rate `μ = λ·N_ru / N_seg`.
//!
//! # Checkpoint duration
//!
//! A checkpoint flushing `n` segments keeps the array busy for
//! `D_act(n) = 2·t_hdr + n·t_io / N_bdisks` seconds (the two `t_hdr`
//! terms are the ping-pong in-progress/complete header writes, which
//! bound the duration at very low loads — without them the fixed point
//! below collapses to zero).
//!
//! How many segments does a **partial** checkpoint flush? The target
//! ping-pong copy was last written two intervals ago (copies alternate),
//! so with uniform updates
//!
//! ```text
//! E[n_flush](D) = N_seg · (1 − e^(−μ·2D))
//! ```
//!
//! Run "as fast as possible" (the paper's minimum-duration setting), the
//! interval is the fixed point `D* = D_act(E[n_flush](D*))`, found by
//! iteration from the full-flush time. A configured interval larger than
//! `D*` leaves the checkpointer idle for the difference; the *active
//! fraction* `f = D_act/D` matters to the two-color abort rate below.
//!
//! At the paper's defaults, `D* ≈ 89.5 s` — matching §2.3's envelope
//! ("an entire 1 gigabyte database ... checkpointed every 100 seconds
//! (fast)").
//!
//! # Asynchronous (checkpointer) cost
//!
//! Per checkpoint, mirroring the engine operation for operation:
//!
//! * a dirty-bit scan of 1 instruction per segment examined — the non-2C
//!   algorithms examine all `N_seg`; the two-color pair pays one
//!   `N_seg` paint/dirty pass at begin and then sweeps only its frozen
//!   white list (`n_flush` entries);
//! * fixed I/O initiations: begin header + complete header + end-marker
//!   log force (plus the begin log force for COU) at `C_io` each;
//! * per flushed segment, by algorithm (`lsn` = `C_lsn` if the write-
//!   ahead gate applies — dropped entirely under a stable log tail):
//!
//! | algorithm   | per-flush instructions |
//! |-------------|------------------------|
//! | `FASTFUZZY` | `C_io` |
//! | `FUZZYCOPY` | `2·C_alloc + S_seg + lsn + C_io` |
//! | `2CFLUSH`   | `2·C_lock + lsn + C_io` |
//! | `2CCOPY`    | `2·C_lock + 2·C_alloc + S_seg + lsn + C_io` |
//! | `COUFLUSH`  | live: `2·C_lock + C_io`; old-copy: `2·C_lock + C_alloc + C_io` |
//! | `COUCOPY`   | live: `2·C_lock + 2·C_alloc + S_seg + C_io`; old-copy as COUFLUSH |
//! | `COUAC`     | COUCOPY's shape plus `lsn` on live flushes |
//!
//! The per-transaction figure divides the per-checkpoint total by
//! `λ·D` — the paper's amortization rule (§4: "the asynchronous cost is
//! divided by the number of transactions that run during the duration of
//! the checkpoint").
//!
//! # Synchronous (transaction-side) cost
//!
//! * **LSN maintenance**: `N_ru·C_lsn` per transaction for the gated
//!   algorithms (§2.1: `C_lsn` "is charged ... to update a LSN when a
//!   transaction makes an update").
//! * **COU old-copy saves**: the sweep reaches segment `i` at
//!   `t_i ≈ (i/N_seg)·D_act`; the segment is copied iff some transaction
//!   updates it first, so
//!
//!   ```text
//!   E[copies] = Σᵢ (1 − e^(−μ·tᵢ)) ≈ N_seg · (1 − (1 − e^(−μ·D_act))/(μ·D_act))
//!   ```
//!
//!   each at `C_alloc + S_seg` instructions, amortized over `λ·D`
//!   transactions. Of the copied segments, the flush fraction
//!   `n_flush/N_seg` is written from the old copy (the rest already
//!   match the target ping-pong copy and are skipped).
//! * **Two-color reruns**: at begin the white fraction is
//!   `w₀ = n_flush/N_seg` (clean segments are painted black instantly —
//!   their backup images already match) and decays linearly to zero over
//!   the active period. An arriving transaction with `N_ru` uniform
//!   accesses straddles colors with probability
//!   `p(w) = 1 − w^N − (1−w)^N`, so averaged over arrival times
//!
//!   ```text
//!   p̄ = f · [ 1 − (1 − (1−w₀)^{N+1})/(w₀(N+1)) − w₀^N/(N+1) ]
//!   ```
//!
//!   At the defaults (`w₀ ≈ 1`, `f = 1`, `N = 5`): `p̄ = 1 − 2/6 = 2/3`.
//!   An aborted transaction is resubmitted after the conflicting
//!   checkpoint completes — where it cannot conflict again — so the
//!   expected rerun count is `p̄` itself, each rerun re-charging
//!   `C_trans` plus the synchronous LSN work. (Blind immediate retry
//!   against the same frozen colors would rerun `O(w₀·N_seg)` times; the
//!   simulator demonstrated that pathology, and both sides of the
//!   cross-validation now implement resubmit-after-completion.)
//!
//! Note `p̄` is **not** monotone in `w₀`: an all-white begin lets early
//! arrivals run all-white and commit, so the abort peak sits below
//! `w₀ = 1` — and stretching the checkpoint interval (which grows `w₀`)
//! can *raise* two-color overhead at some operating points even as it
//! amortizes the flush work better.
//!
//! # Recovery time
//!
//! `T_rec = backup read + log read` (§4 models recovery as I/O-bound):
//!
//! ```text
//! backup read = N_seg · t_io / N_bdisks
//! log read    = T_seek + replay_words · T_trans / N_bdisks
//! ```
//!
//! The replay volume spans 1.5 checkpoint intervals on average (the
//! completed checkpoint's begin marker is uniformly 1–2 intervals old
//! under ping-pong alternation) at the per-transaction log bulk computed
//! from the engine's actual record encoding — begin + `N_ru` update
//! after-images + commit — plus begin/abort records for reruns. The
//! engine logs updates at commit, so an aborted run leaves only ~15
//! words; the paper's update-time logging would penalize the two-color
//! algorithms more (its stated *direction* — 2C recovers slightly
//! slower — is preserved).
//!
//! # Calibration anchors
//!
//! | paper statement | model |
//! |---|---|
//! | full flush ≈ 100 s at defaults (§2.3) | `D* = 89.5 s` |
//! | FASTFUZZY "a few hundred instructions per transaction" (§4) | 367 |
//! | COU "no more costly than ... a fuzzy backup" (§4) | 3 454 vs 3 547 |
//! | two-color "relatively high cost ... from rerunning" (§4) | 17–20 k, 16.7 k of it rerun |
//! | "recovery times ... vary little" (§4) | 94.0–94.2 s |
//! | ~15 MB/s total backup+log bandwidth (§2.3) | 15.4 MB/s |
//!
//! The decisive check is the discrete-event testbed (`mmdb-sim`), which
//! *executes* the algorithms and reproduces the model's overhead within
//! a few percent for all seven — see `EXPERIMENTS.md`.
