//! The analytic performance model of Salem & Garcia-Molina's
//! checkpointing study, and generators for every table and figure in the
//! paper's evaluation (§4).
//!
//! * [`AnalyticModel`] evaluates one algorithm at one parameter setting,
//!   producing the paper's two metrics (processor overhead per
//!   transaction and recovery time) plus the intermediate quantities
//!   (minimum checkpoint duration, restart probability, expected COU
//!   copies).
//! * [`figures`] sweeps the model to regenerate Figures 4a–4e and renders
//!   Tables 2a–2d.
//! * [`render`] holds the text table/plot machinery.
//!
//! The model's cost terms mirror the executable engine operation for
//! operation, which is what lets `mmdb-sim` cross-validate it: the same
//! charges accrue in both, one analytically and one by running the real
//! algorithms.

#![warn(missing_docs)]

pub mod derivation;
pub mod figures;
mod model;
pub mod render;

pub use model::{AnalyticModel, ModelPoint};
