//! Generators for the paper's tables and figures.
//!
//! Each function returns structured data (so benches and tests can assert
//! on shapes) plus a `render_*` companion producing the human-readable
//! text the `repro` binary prints. Parameter defaults are the paper's
//! (Tables 2a–2d); every generator takes a `Params` so sweeps and
//! what-ifs can reuse them.

use crate::model::{AnalyticModel, ModelPoint};
use crate::render::{ascii_plot, Series, Table};
use mmdb_types::{Algorithm, LogMode, Params};

/// One bar of Figure 4a / 4e: an algorithm's overhead and recovery time
/// at the minimum checkpoint duration.
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmPoint {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// The full evaluated model point.
    pub point: ModelPoint,
}

/// Figure 4a: processor overhead and recovery time for the five base
/// algorithms, checkpoints as fast as possible, paper defaults.
pub fn fig4a(params: Params) -> Vec<AlgorithmPoint> {
    Algorithm::BASE_FIVE
        .iter()
        .map(|&algorithm| AlgorithmPoint {
            algorithm,
            point: AnalyticModel::new(params, algorithm).evaluate(None),
        })
        .collect()
}

/// Renders Figure 4a (or 4e) as a table.
pub fn render_algorithm_points(title: &str, rows: &[AlgorithmPoint]) -> String {
    let mut t = Table::new(
        title,
        &[
            "algorithm",
            "overhead (instr/txn)",
            "sync",
            "async",
            "p_restart",
            "recovery (s)",
        ],
    );
    for r in rows {
        t.row(&[
            r.algorithm.name().to_string(),
            format!("{:.0}", r.point.overhead_per_txn()),
            format!("{:.0}", r.point.sync_per_txn),
            format!("{:.0}", r.point.async_per_txn),
            format!("{:.3}", r.point.p_restart),
            format!("{:.1}", r.point.recovery_seconds),
        ]);
    }
    t.render()
}

/// One curve of Figure 4b: an algorithm's trajectory through
/// (recovery time, overhead) space as the checkpoint duration varies.
#[derive(Debug, Clone)]
pub struct TradeoffSeries {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Number of backup disks for this curve (the paper doubles the
    /// bandwidth for the dotted curves).
    pub n_bdisks: u32,
    /// `(duration, recovery_seconds, overhead_per_txn)` along the sweep.
    pub points: Vec<(f64, f64, f64)>,
}

/// Figure 4b: the overhead/recovery-time trade-off for 2CCOPY and
/// COUCOPY at 1× and 2× disk bandwidth, sweeping the checkpoint duration
/// from the minimum up to `max_duration_factor` times it.
pub fn fig4b(params: Params, sweep_points: usize, max_duration_factor: f64) -> Vec<TradeoffSeries> {
    let mut out = Vec::new();
    for &algorithm in &[Algorithm::TwoColorCopy, Algorithm::CouCopy] {
        for &n_bdisks in &[params.disk.n_bdisks, params.disk.n_bdisks * 2] {
            let mut p = params;
            p.disk.n_bdisks = n_bdisks;
            let model = AnalyticModel::new(p, algorithm);
            let d_min = model.min_duration();
            let points = (0..sweep_points)
                .map(|i| {
                    let factor =
                        1.0 + (max_duration_factor - 1.0) * i as f64 / (sweep_points - 1) as f64;
                    let pt = model.evaluate(Some(d_min * factor));
                    (pt.duration, pt.recovery_seconds, pt.overhead_per_txn())
                })
                .collect();
            out.push(TradeoffSeries {
                algorithm,
                n_bdisks,
                points,
            });
        }
    }
    out
}

/// Renders Figure 4b as a table plus an ASCII plot.
pub fn render_fig4b(series: &[TradeoffSeries]) -> String {
    let mut s = String::new();
    let mut t = Table::new(
        "Figure 4b — overhead/recovery trade-off vs checkpoint duration",
        &[
            "algorithm",
            "disks",
            "duration (s)",
            "recovery (s)",
            "overhead (instr/txn)",
        ],
    );
    for ser in series {
        for (d, rec, o) in &ser.points {
            t.row(&[
                ser.algorithm.name().to_string(),
                ser.n_bdisks.to_string(),
                format!("{d:.0}"),
                format!("{rec:.0}"),
                format!("{o:.0}"),
            ]);
        }
    }
    s.push_str(&t.render());
    let glyphs = ['2', 'c', '2', 'c'];
    let plot_series: Vec<Series> = series
        .iter()
        .zip(glyphs)
        .map(|(ser, glyph)| Series {
            label: format!("{} ({} disks)", ser.algorithm.name(), ser.n_bdisks),
            glyph,
            points: ser.points.iter().map(|(_, rec, o)| (*rec, *o)).collect(),
        })
        .collect();
    s.push_str(&ascii_plot(
        "overhead (instr/txn) vs recovery time (s)",
        "recovery (s)",
        "instr/txn",
        &plot_series,
        true,
    ));
    s
}

/// One curve of Figure 4c/4d: overhead as a function of a swept
/// parameter.
#[derive(Debug, Clone)]
pub struct SweepSeries {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// A label qualifying the series (e.g. "fixed 300 s interval").
    pub label: String,
    /// `(x, overhead_per_txn)` pairs.
    pub points: Vec<(f64, f64)>,
}

/// Figure 4c: overhead vs transaction load for the five base algorithms,
/// checkpoints as fast as possible.
pub fn fig4c(params: Params, lambdas: &[f64]) -> Vec<SweepSeries> {
    Algorithm::BASE_FIVE
        .iter()
        .map(|&algorithm| SweepSeries {
            algorithm,
            label: String::new(),
            points: lambdas
                .iter()
                .map(|&lambda| {
                    let mut p = params;
                    p.txn.lambda = lambda;
                    let pt = AnalyticModel::new(p, algorithm).evaluate(None);
                    (lambda, pt.overhead_per_txn())
                })
                .collect(),
        })
        .collect()
}

/// Figure 4d: overhead vs segment size for 2CCOPY, 2CFLUSH and COUCOPY —
/// solid curves run checkpoints as fast as possible, dotted curves hold
/// the interval at 300 s (the paper's setting).
pub fn fig4d(params: Params, segment_sizes: &[u64]) -> Vec<SweepSeries> {
    let algos = [
        Algorithm::TwoColorCopy,
        Algorithm::TwoColorFlush,
        Algorithm::CouCopy,
    ];
    let mut out = Vec::new();
    for &algorithm in &algos {
        for (interval, label) in [(None, "min duration"), (Some(300.0), "300 s interval")] {
            out.push(SweepSeries {
                algorithm,
                label: label.to_string(),
                points: segment_sizes
                    .iter()
                    .map(|&s_seg| {
                        let mut p = params;
                        p.db.s_seg = s_seg;
                        let pt = AnalyticModel::new(p, algorithm).evaluate(interval);
                        (s_seg as f64, pt.overhead_per_txn())
                    })
                    .collect(),
            });
        }
    }
    out
}

/// Figure 4e: overhead with a stable log tail — the five base algorithms
/// plus FASTFUZZY, checkpoints as fast as possible.
pub fn fig4e(params: Params) -> Vec<AlgorithmPoint> {
    let mut p = params;
    p.log_mode = LogMode::StableTail;
    Algorithm::ALL
        .iter()
        .map(|&algorithm| AlgorithmPoint {
            algorithm,
            point: AnalyticModel::new(p, algorithm).evaluate(None),
        })
        .collect()
}

/// Renders a sweep figure as a table plus an ASCII plot with
/// log-x/log-y axes.
pub fn render_sweep(title: &str, x_label: &str, series: &[SweepSeries], log_axes: bool) -> String {
    let mut s = String::new();
    let mut header: Vec<String> = vec![x_label.to_string()];
    for ser in series {
        if ser.label.is_empty() {
            header.push(ser.algorithm.name().to_string());
        } else {
            header.push(format!("{} ({})", ser.algorithm.name(), ser.label));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = Table::new(title, &header_refs);
    let xs: Vec<f64> = series[0].points.iter().map(|(x, _)| *x).collect();
    for (i, x) in xs.iter().enumerate() {
        let mut row = vec![format!("{x:.0}")];
        for ser in series {
            row.push(format!("{:.0}", ser.points[i].1));
        }
        t.row(&row);
    }
    s.push_str(&t.render());

    let glyph_pool = ['*', '+', 'o', 'x', '#', '@', '%', '&'];
    let plot_series: Vec<Series> = series
        .iter()
        .enumerate()
        .map(|(i, ser)| Series {
            label: if ser.label.is_empty() {
                ser.algorithm.name().to_string()
            } else {
                format!("{} ({})", ser.algorithm.name(), ser.label)
            },
            glyph: glyph_pool[i % glyph_pool.len()],
            points: ser.points.clone(),
        })
        .collect();
    s.push_str(&ascii_plot(
        title,
        x_label,
        "instr/txn",
        &plot_series,
        log_axes,
    ));
    s
}

/// Renders Tables 2a–2d (the model parameters) as the paper lays them
/// out, substituting any overridden values.
pub fn render_tables2(params: &Params) -> String {
    let mut s = String::new();
    let mut t = Table::new(
        "Table 2a — basic operation costs",
        &["symbol", "parameter", "value", "units"],
    );
    t.row(&[
        "C_lock",
        "(un)locking overhead",
        &params.cost.c_lock.to_string(),
        "instructions",
    ]);
    t.row(&[
        "C_alloc",
        "buffer (de)allocation overhead",
        &params.cost.c_alloc.to_string(),
        "instructions",
    ]);
    t.row(&[
        "C_io",
        "I/O overhead",
        &params.cost.c_io.to_string(),
        "instructions",
    ]);
    t.row(&[
        "C_lsn",
        "maintain LSNs",
        &params.cost.c_lsn.to_string(),
        "instructions",
    ]);
    s.push_str(&t.render());

    let mut t = Table::new(
        "Table 2b — disk model parameters",
        &["symbol", "parameter", "value", "units"],
    );
    t.row(&[
        "T_seek",
        "I/O delay time",
        &format!("{}", params.disk.t_seek),
        "seconds",
    ]);
    t.row(&[
        "T_trans",
        "transfer time constant",
        &format!("{}", params.disk.t_trans * 1e6),
        "µseconds/word",
    ]);
    t.row(&[
        "N_bdisks",
        "number of disks",
        &params.disk.n_bdisks.to_string(),
        "disks",
    ]);
    s.push_str(&t.render());

    let mut t = Table::new(
        "Table 2c — database model parameters",
        &["symbol", "parameter", "value", "units"],
    );
    t.row(&[
        "S_db",
        "database size",
        &format!("{}", params.db.s_db >> 20),
        "Mwords",
    ]);
    t.row(&[
        "S_rec",
        "record size",
        &params.db.s_rec.to_string(),
        "words",
    ]);
    t.row(&[
        "S_seg",
        "segment size",
        &params.db.s_seg.to_string(),
        "words",
    ]);
    s.push_str(&t.render());

    let mut t = Table::new(
        "Table 2d — transaction model parameters",
        &["symbol", "parameter", "value", "units"],
    );
    t.row(&[
        "lambda",
        "arrival rate",
        &format!("{}", params.txn.lambda),
        "transactions/second",
    ]);
    t.row(&[
        "N_ru",
        "number of updates",
        &params.txn.n_ru.to_string(),
        "records/transaction",
    ]);
    t.row(&[
        "C_trans",
        "transaction processor cost",
        &params.txn.c_trans.to_string(),
        "instructions",
    ]);
    s.push_str(&t.render());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_has_five_bars_with_expected_ordering() {
        let rows = fig4a(Params::paper_defaults());
        assert_eq!(rows.len(), 5);
        let get = |a: Algorithm| {
            rows.iter()
                .find(|r| r.algorithm == a)
                .unwrap()
                .point
                .overhead_per_txn()
        };
        // two-color ≫ fuzzy ≈ COU
        assert!(get(Algorithm::TwoColorCopy) > 3.0 * get(Algorithm::FuzzyCopy));
        assert!(get(Algorithm::TwoColorFlush) > 3.0 * get(Algorithm::FuzzyCopy));
        assert!(get(Algorithm::CouCopy) <= get(Algorithm::FuzzyCopy) * 1.15);
    }

    #[test]
    fn fig4b_curves_slope_the_right_way() {
        let series = fig4b(Params::paper_defaults(), 8, 10.0);
        assert_eq!(series.len(), 4);
        for ser in &series {
            let first = ser.points.first().unwrap();
            let last = ser.points.last().unwrap();
            assert!(last.1 > first.1, "recovery grows with duration");
            assert!(last.2 < first.2, "overhead falls with duration");
        }
        // doubled bandwidth extends the curve left (lower min recovery)
        let rec_min = |alg: Algorithm, disks: u32| {
            series
                .iter()
                .find(|s| s.algorithm == alg && s.n_bdisks == disks)
                .unwrap()
                .points[0]
                .1
        };
        assert!(rec_min(Algorithm::TwoColorCopy, 40) < rec_min(Algorithm::TwoColorCopy, 20));
    }

    #[test]
    fn fig4c_series_decrease_with_load() {
        let lambdas = [10.0, 100.0, 1000.0, 4000.0];
        let series = fig4c(Params::paper_defaults(), &lambdas);
        assert_eq!(series.len(), 5);
        for ser in &series {
            // §4: "The general trend is for decreasing per-transaction
            // cost with increasing load... However, the effect is not
            // uniform": 2CFLUSH is the exception (cheap at low load,
            // rerun-bound at high load).
            if ser.algorithm == Algorithm::TwoColorFlush {
                continue;
            }
            assert!(
                ser.points[0].1 > ser.points[2].1,
                "{}: overhead should fall from λ=10 to λ=1000",
                ser.algorithm
            );
        }
    }

    #[test]
    fn fig4d_has_six_series() {
        let sizes = [2048, 8192, 32768];
        let series = fig4d(Params::paper_defaults(), &sizes);
        assert_eq!(series.len(), 6);
        for ser in &series {
            assert_eq!(ser.points.len(), 3);
        }
    }

    #[test]
    fn fig4e_fastfuzzy_wins() {
        let rows = fig4e(Params::paper_defaults());
        assert_eq!(rows.len(), 6);
        let fast = rows
            .iter()
            .find(|r| r.algorithm == Algorithm::FastFuzzy)
            .unwrap()
            .point
            .overhead_per_txn();
        for r in &rows {
            assert!(fast <= r.point.overhead_per_txn());
        }
        assert!(fast < 900.0, "a few hundred instructions per transaction");
    }

    #[test]
    fn renders_are_nonempty_and_contain_headers() {
        let p = Params::paper_defaults();
        let s = render_algorithm_points("Figure 4a", &fig4a(p));
        assert!(s.contains("FUZZYCOPY") && s.contains("recovery"));
        let s = render_fig4b(&fig4b(p, 5, 8.0));
        assert!(s.contains("2CCOPY") && s.contains("COUCOPY"));
        let s = render_sweep("Figure 4c", "lambda", &fig4c(p, &[10.0, 1000.0]), true);
        assert!(s.contains("2CFLUSH"));
        let s = render_tables2(&p);
        assert!(s.contains("C_lock") && s.contains("S_seg") && s.contains("25000"));
    }
}
