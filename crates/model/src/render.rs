//! Plain-text rendering: aligned tables and ASCII scatter plots for the
//! `repro` binary's figure output.

/// A simple aligned text table.
#[derive(Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push('\n');
        out.push_str(&self.title);
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        out.push_str(&sep);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            (0..ncols)
                .map(|i| format!(" {:w$} ", cells[i], w = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot glyph.
    pub glyph: char,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series on a character grid. With `log_axes`, both axes are
/// log₁₀-scaled (the paper's figures span orders of magnitude).
pub fn ascii_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    log_axes: bool,
) -> String {
    const W: usize = 68;
    const H: usize = 20;

    let tf = |v: f64| -> f64 {
        if log_axes {
            v.max(1e-12).log10()
        } else {
            v
        }
    };
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, y)| (tf(x), tf(y))))
        .collect();
    if all.is_empty() {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; W]; H];
    for s in series {
        for &(x, y) in &s.points {
            let gx = (((tf(x) - x0) / (x1 - x0)) * (W - 1) as f64).round() as usize;
            let gy = (((tf(y) - y0) / (y1 - y0)) * (H - 1) as f64).round() as usize;
            grid[H - 1 - gy.min(H - 1)][gx.min(W - 1)] = s.glyph;
        }
    }

    let mut out = String::new();
    out.push('\n');
    out.push_str(title);
    if log_axes {
        out.push_str("  [log-log]");
    }
    out.push('\n');
    let y_hi = if log_axes { 10f64.powf(y1) } else { y1 };
    let y_lo = if log_axes { 10f64.powf(y0) } else { y0 };
    out.push_str(&format!("{y_label}  (top={y_hi:.3e}, bottom={y_lo:.3e})\n"));
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(W));
    out.push('\n');
    let x_hi = if log_axes { 10f64.powf(x1) } else { x1 };
    let x_lo = if log_axes { 10f64.powf(x0) } else { x0 };
    out.push_str(&format!("{x_label}: left={x_lo:.3e}, right={x_hi:.3e}\n"));
    for s in series {
        out.push_str(&format!("  {} = {}\n", s.glyph, s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let s = t.render();
        assert!(s.contains("demo"));
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len(), "rows align");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn plot_contains_glyphs_and_legend() {
        let s = ascii_plot(
            "t",
            "x",
            "y",
            &[Series {
                label: "demo".into(),
                glyph: '*',
                points: vec![(1.0, 10.0), (100.0, 1000.0)],
            }],
            true,
        );
        assert!(s.contains('*'));
        assert!(s.contains("demo"));
        assert!(s.contains("[log-log]"));
    }

    #[test]
    fn plot_handles_degenerate_ranges() {
        let s = ascii_plot(
            "t",
            "x",
            "y",
            &[Series {
                label: "p".into(),
                glyph: 'o',
                points: vec![(5.0, 5.0)],
            }],
            false,
        );
        assert!(s.contains('o'));
    }

    #[test]
    fn plot_empty_series_is_empty() {
        assert!(ascii_plot("t", "x", "y", &[], false).is_empty());
    }
}
