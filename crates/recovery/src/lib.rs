//! System-failure recovery (paper §3.3).
//!
//! After a crash, the recovery manager rebuilds the *primary*
//! (memory-resident) database from the backup copy and the REDO log:
//!
//! 1. choose the most recently completed ping-pong backup copy (the
//!    in-progress copy of a torn checkpoint is ineligible by
//!    construction);
//! 2. read every segment of that copy into main memory;
//! 3. locate the checkpoint's begin marker in the log and compute the
//!    replay start — for checkpoints taken with transactions active
//!    (fuzzy and two-color), the scan extends back to the begin record of
//!    the oldest transaction in the marker's active list;
//! 4. replay the log forward, buffering each transaction's update records
//!    and installing them at its commit record (transactions without a
//!    durable commit are discarded — REDO-only logging means they never
//!    touched the database... on disk).
//!
//! The paper measures recovery time as pure I/O time: reading the backup
//! plus reading the relevant portion of the log (§4). [`RecoveryReport`]
//! carries both the byte counts and that modeled time.

#![warn(missing_docs)]

use mmdb_disk::BackupStore;
use mmdb_log::{LogDevice, LogRecord, LogScanner};
use mmdb_obs::Obs;
use mmdb_storage::Storage;
use mmdb_types::{
    CheckpointId, CostMeter, DiskParams, Lsn, MmdbError, RecordId, Result, Timestamp, TxnId, Word,
};
use std::collections::HashMap;

/// A transaction branch left *in doubt* by the crash: its updates and its
/// `Prepare` record are durable in the log, but neither a `Commit` nor an
/// `Abort` follows. Under the sharded engine's two-phase commit the
/// outcome belongs to the coordinator shard's log (`Decide` record);
/// recovery surfaces the branch so the coordinator can resolve it —
/// presumed abort when no commit decision exists anywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct InDoubtTxn {
    /// The global transaction id from the `Prepare` record.
    pub gid: u64,
    /// The local (per-shard) transaction id.
    pub txn: TxnId,
    /// The branch's staged after-images, in log order. Not installed by
    /// replay; installing them is the resolver's job iff a commit
    /// decision is found.
    pub writes: Vec<(RecordId, Vec<Word>)>,
}

/// What recovery did, and the modeled time it took.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The checkpoint restored from.
    pub ckpt: CheckpointId,
    /// The ping-pong copy it was read from.
    pub copy: usize,
    /// Segments loaded from the backup.
    pub segments_loaded: u64,
    /// Words read from the backup disks.
    pub backup_words: u64,
    /// LSN replay started from.
    pub replay_start: Lsn,
    /// Words of log read and replayed.
    pub log_words: u64,
    /// Update records applied (from committed transactions).
    pub updates_applied: u64,
    /// Committed transactions replayed.
    pub txns_replayed: u64,
    /// Transactions discarded for lack of a durable commit record.
    pub txns_discarded: u64,
    /// Modeled time to read the backup, seconds (paper §4: size of the
    /// database over the array bandwidth).
    pub backup_read_seconds: f64,
    /// Modeled time to read the replayed log, seconds (sequential read
    /// striped across the backup disks).
    pub log_read_seconds: f64,
    /// Prepared-but-undecided transaction branches (sharded two-phase
    /// commit); empty for unsharded databases.
    pub in_doubt: Vec<InDoubtTxn>,
    /// Durable coordinator decisions seen in the replayed window, as
    /// `(gid, commit)` pairs.
    pub decisions: Vec<(u64, bool)>,
    /// Highest global transaction id seen in the replayed window (from
    /// `Prepare` and `Decide` records); the sharded engine seeds its gid
    /// counter above this so resurrected gids can never collide.
    pub max_gid: u64,
}

impl RecoveryReport {
    /// Total modeled recovery time, seconds — the paper's recovery-time
    /// metric.
    pub fn total_seconds(&self) -> f64 {
        self.backup_read_seconds + self.log_read_seconds
    }
}

/// Restores `storage` from the backup and log. `disk` supplies the
/// service-time model for the report's recovery-time figures; `meter`
/// absorbs the (unmodeled, but still counted) CPU cost of the restore.
pub fn recover(
    storage: &mut Storage,
    backup: &mut dyn BackupStore,
    log_device: &mut dyn LogDevice,
    disk: &DiskParams,
    meter: &CostMeter,
) -> Result<RecoveryReport> {
    recover_observed(storage, backup, log_device, disk, meter, &Obs::disabled())
}

/// [`recover`] with telemetry: emits `recovery.backup_load` and
/// `recovery.redo_replay` spans and records the report's modeled total
/// into the `recovery.total_modeled_us` histogram.
pub fn recover_observed(
    storage: &mut Storage,
    backup: &mut dyn BackupStore,
    log_device: &mut dyn LogDevice,
    disk: &DiskParams,
    meter: &CostMeter,
    obs: &Obs,
) -> Result<RecoveryReport> {
    let (copy, ckpt) = backup.recovery_copy()?;
    let db = *storage.db_params();

    // 1–2: read the backup into main memory.
    let load_timer = obs.timer();
    let mut buf: Vec<Word> = vec![0; db.s_seg as usize];
    let mut segments_loaded = 0u64;
    for sid in storage.segment_ids().collect::<Vec<_>>() {
        meter.io_op();
        backup.read_segment(copy, sid, &mut buf)?;
        storage.load_segment(sid, &buf, Some(copy), meter)?;
        segments_loaded += 1;
    }
    let backup_words = segments_loaded * db.s_seg;
    obs.span_end(
        "recovery.backup_load",
        "recovery.backup_load_ns",
        load_timer,
        || format!("{ckpt} copy {copy}: {segments_loaded} segments, {backup_words} words"),
    );

    // 3: find the begin marker of the restored checkpoint and the replay
    // start.
    let replay_timer = obs.timer();
    let scanner = LogScanner::from_device(log_device)?;
    let mark = scanner
        .backward()
        .find_map(|(lsn, rec)| match rec {
            LogRecord::BeginCheckpoint {
                ckpt: c,
                tau,
                active,
            } if c == ckpt => Some(mmdb_log::CheckpointMark {
                ckpt: c,
                begin_lsn: lsn,
                tau,
                active,
            }),
            _ => None,
        })
        .ok_or_else(|| {
            MmdbError::Corrupt(format!(
                "backup copy {copy} is complete for {ckpt} but the log has no begin marker for it"
            ))
        })?;
    let replay_start = scanner.replay_start(&mark);

    // 4: forward replay, installing each transaction's updates at its
    // commit record (shadow-copy install order = commit order).
    let mut staged: HashMap<TxnId, Vec<(RecordId, Vec<Word>, Lsn)>> = HashMap::new();
    let mut prepared: HashMap<TxnId, u64> = HashMap::new();
    let mut decided: HashMap<u64, bool> = HashMap::new();
    let mut max_gid = 0u64;
    let mut updates_applied = 0u64;
    let mut txns_replayed = 0u64;
    for (lsn, rec) in scanner.forward_from(replay_start) {
        let end_lsn = rec.end_lsn(lsn);
        match rec {
            LogRecord::Update { txn, record, value } => {
                staged
                    .entry(txn)
                    .or_default()
                    .push((record, value, end_lsn));
            }
            LogRecord::Commit { txn } => {
                if let Some(writes) = staged.remove(&txn) {
                    for (record, value, end_lsn) in writes {
                        storage.install_record(record, &value, end_lsn, Timestamp::ZERO, meter)?;
                        updates_applied += 1;
                    }
                }
                prepared.remove(&txn);
                txns_replayed += 1;
            }
            LogRecord::Abort { txn } => {
                staged.remove(&txn);
                prepared.remove(&txn);
            }
            LogRecord::Prepare { txn, gid } => {
                prepared.insert(txn, gid);
                max_gid = max_gid.max(gid);
            }
            LogRecord::Decide { gid, commit } => {
                decided.insert(gid, commit);
                max_gid = max_gid.max(gid);
            }
            _ => {}
        }
    }
    // Prepared branches with no durable outcome are *in doubt*, not
    // discarded: they wait for the coordinator's decision.
    let mut in_doubt: Vec<InDoubtTxn> = prepared
        .iter()
        .map(|(&txn, &gid)| InDoubtTxn {
            gid,
            txn,
            writes: staged
                .remove(&txn)
                .unwrap_or_default()
                .into_iter()
                .map(|(record, value, _)| (record, value))
                .collect(),
        })
        .collect();
    in_doubt.sort_by_key(|t| (t.gid, t.txn));
    let mut decisions: Vec<(u64, bool)> = decided.into_iter().collect();
    decisions.sort_unstable();
    let txns_discarded = staged.len() as u64;
    obs.span_end(
        "recovery.redo_replay",
        "recovery.redo_replay_ns",
        replay_timer,
        || format!("from {replay_start}: {updates_applied} updates, {txns_replayed} txns"),
    );

    // Recovery-time model (paper §4): backup read at array bandwidth in
    // segment-sized I/Os, log read sequentially striped across the disks.
    let log_words = scanner.words_from(replay_start);
    let backup_read_seconds = disk.array_time(segments_loaded, db.s_seg);
    let log_read_seconds = log_read_time(disk, log_words);
    obs.observe(
        "recovery.total_modeled_us",
        ((backup_read_seconds + log_read_seconds) * 1e6) as u64,
    );
    obs.counter("recovery.runs", 1);

    Ok(RecoveryReport {
        ckpt,
        copy,
        segments_loaded,
        backup_words,
        replay_start,
        log_words,
        updates_applied,
        txns_replayed,
        txns_discarded,
        backup_read_seconds,
        log_read_seconds,
        in_doubt,
        decisions,
        max_gid,
    })
}

fn log_read_time(disk: &DiskParams, log_words: u64) -> f64 {
    if log_words == 0 {
        0.0
    } else {
        disk.t_seek + log_words as f64 * disk.t_trans / disk.n_bdisks as f64
    }
}

/// Dry-run recovery: rebuilds the database into scratch storage from the
/// backup and log, without touching the live engine state, and returns
/// the scratch fingerprint plus the report. This is the deep-verification
/// primitive: under synchronous commit durability, the fingerprint must
/// equal the live committed state's — any divergence means the backup or
/// log could not reproduce the database.
pub fn dry_run(
    shape: mmdb_types::DbParams,
    backup: &mut dyn BackupStore,
    log_device: &mut dyn LogDevice,
    disk: &DiskParams,
) -> Result<(u64, RecoveryReport)> {
    dry_run_observed(shape, backup, log_device, disk, &Obs::disabled())
}

/// [`dry_run`] with telemetry routed to `obs` (see [`recover_observed`]).
pub fn dry_run_observed(
    shape: mmdb_types::DbParams,
    backup: &mut dyn BackupStore,
    log_device: &mut dyn LogDevice,
    disk: &DiskParams,
    obs: &Obs,
) -> Result<(u64, RecoveryReport)> {
    let mut scratch = Storage::new(shape)?;
    let meter = CostMeter::new(mmdb_types::CostParams::default());
    let report = recover_observed(&mut scratch, backup, log_device, disk, &meter, obs)?;
    Ok((scratch.fingerprint(), report))
}

/// The recovery-time formula alone, for the analytic model: seconds to
/// read `n_segments` backup segments of `s_seg` words plus `log_words` of
/// log, with the paper's disk model.
pub fn recovery_time_model(disk: &DiskParams, n_segments: u64, s_seg: u64, log_words: u64) -> f64 {
    disk.array_time(n_segments, s_seg) + log_read_time(disk, log_words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_disk::MemBackup;
    use mmdb_log::{LogManager, MemLogDevice};
    use mmdb_types::{Algorithm, CkptMode, CostParams, LogMode, Params, SegmentId};

    /// A miniature engine: storage + log + backup + checkpointer, enough
    /// to produce real crash states for recovery to chew on.
    struct Mini {
        storage: Storage,
        log: LogManager,
        backup: MemBackup,
        ckpt: mmdb_checkpoint::Checkpointer,
        meter: CostMeter,
        next_tau: u64,
        next_txn: u64,
    }

    impl Mini {
        fn new(algorithm: Algorithm) -> Mini {
            let p = Params::small();
            Mini {
                storage: Storage::new(p.db).unwrap(),
                log: LogManager::new(
                    Box::new(MemLogDevice::new()),
                    LogMode::VolatileTail,
                    CostMeter::shared(CostParams::default()),
                ),
                backup: MemBackup::new(p.db),
                ckpt: mmdb_checkpoint::Checkpointer::new(
                    algorithm,
                    CkptMode::Partial,
                    mmdb_checkpoint::WalPolicy::Force,
                    CostMeter::shared(CostParams::default()),
                ),
                meter: CostMeter::new(CostParams::default()),
                next_tau: 0,
                next_txn: 1000,
            }
        }

        fn tau(&mut self) -> Timestamp {
            self.next_tau += 1;
            Timestamp(self.next_tau)
        }

        /// Runs a whole committed transaction updating `records` with
        /// `fill`, with commit-time log force.
        fn txn(&mut self, records: &[u64], fill: u32) {
            let tau = self.tau();
            self.next_txn += 1;
            let txn = TxnId(self.next_txn);
            self.log.append(&LogRecord::TxnBegin { txn, tau });
            let s_rec = self.storage.db_params().s_rec as usize;
            let mut installs = Vec::new();
            for &rid in records {
                let value = vec![fill; s_rec];
                let rec = LogRecord::Update {
                    txn,
                    record: RecordId(rid),
                    value: value.clone(),
                };
                let lsn = self.log.append(&rec);
                installs.push((RecordId(rid), value, rec.end_lsn(lsn)));
            }
            self.log.append_forced(&LogRecord::Commit { txn }).unwrap();
            for (rid, value, end_lsn) in installs {
                let sid = self.storage.segment_of(rid).unwrap();
                self.ckpt
                    .on_before_install(&mut self.storage, sid, &self.meter)
                    .unwrap();
                self.storage
                    .install_record(rid, &value, end_lsn, tau, &self.meter)
                    .unwrap();
            }
        }

        fn checkpoint(&mut self) {
            let tau = self.tau();
            self.ckpt
                .begin(&mut self.storage, &mut self.log, &mut self.backup, &[], tau)
                .unwrap();
            self.ckpt
                .run_to_completion(&mut self.storage, &mut self.log, &mut self.backup)
                .unwrap();
        }

        /// Simulates the crash and recovers into a fresh storage; returns
        /// the report and the recovered storage.
        fn crash_and_recover(mut self) -> (RecoveryReport, Storage) {
            self.log.crash().unwrap();
            self.ckpt.crash(&mut self.storage);
            let mut fresh = Storage::new(*self.storage.db_params()).unwrap();
            let disk = Params::small().disk;
            let report = recover(
                &mut fresh,
                &mut self.backup,
                self.log.device_mut(),
                &disk,
                &self.meter,
            )
            .unwrap();
            (report, fresh)
        }
    }

    #[test]
    fn recover_without_backup_fails() {
        let mut storage = Storage::new(Params::small().db).unwrap();
        let mut backup = MemBackup::new(Params::small().db);
        let mut dev = MemLogDevice::new();
        let meter = CostMeter::new(CostParams::default());
        let err = recover(
            &mut storage,
            &mut backup,
            &mut dev,
            &Params::small().disk,
            &meter,
        )
        .unwrap_err();
        assert!(matches!(err, MmdbError::NoCompleteBackup));
    }

    #[test]
    fn committed_after_checkpoint_survives() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0, 100], 1);
        m.checkpoint();
        m.txn(&[0, 200], 2); // after the checkpoint, commit forced
        let pre_crash = m.storage.fingerprint();
        let (report, recovered) = m.crash_and_recover();
        assert_eq!(recovered.fingerprint(), pre_crash);
        assert_eq!(report.ckpt, CheckpointId(1));
        assert!(report.updates_applied >= 2);
        assert_eq!(report.txns_discarded, 0);
    }

    #[test]
    fn unforced_tail_commit_is_lost_but_consistent() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0], 1);
        m.checkpoint();
        let consistent_state = m.storage.fingerprint();

        // A transaction whose commit record stays in the volatile tail:
        // append without forcing, install anyway (an engine running lazy
        // group commit would do exactly this).
        let tau = m.tau();
        let txn = TxnId(9999);
        m.log.append(&LogRecord::TxnBegin { txn, tau });
        let value = vec![77u32; 32];
        let rec = LogRecord::Update {
            txn,
            record: RecordId(500),
            value: value.clone(),
        };
        let lsn = m.log.append(&rec);
        m.log.append(&LogRecord::Commit { txn });
        m.storage
            .install_record(RecordId(500), &value, rec.end_lsn(lsn), tau, &m.meter)
            .unwrap();
        assert_ne!(m.storage.fingerprint(), consistent_state);

        let (_, recovered) = m.crash_and_recover();
        // The unforced transaction vanished; the state is the consistent
        // pre-transaction state, not a torn mixture.
        assert_eq!(recovered.fingerprint(), consistent_state);
    }

    #[test]
    fn uncommitted_transaction_is_discarded() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0], 1);
        m.checkpoint();
        // updates logged and forced, but no commit record
        let tau = m.tau();
        let txn = TxnId(5555);
        m.log.append(&LogRecord::TxnBegin { txn, tau });
        m.log.append(&LogRecord::Update {
            txn,
            record: RecordId(300),
            value: vec![9u32; 32],
        });
        m.log.force().unwrap();

        let pre_crash = m.storage.fingerprint();
        let (report, recovered) = m.crash_and_recover();
        assert_eq!(recovered.fingerprint(), pre_crash);
        assert_eq!(report.txns_discarded, 1);
    }

    #[test]
    fn aborted_transaction_is_not_replayed() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0], 1);
        m.checkpoint();
        let tau = m.tau();
        let txn = TxnId(4444);
        m.log.append(&LogRecord::TxnBegin { txn, tau });
        m.log.append(&LogRecord::Update {
            txn,
            record: RecordId(300),
            value: vec![9u32; 32],
        });
        m.log.append(&LogRecord::Abort { txn });
        m.log.force().unwrap();
        let pre_crash = m.storage.fingerprint();
        let (report, recovered) = m.crash_and_recover();
        assert_eq!(recovered.fingerprint(), pre_crash);
        assert_eq!(report.txns_discarded, 0);
        // only the pre-checkpoint transaction's update was applied (it is
        // also in the backup; replaying it is harmless idempotence)
        assert!(report.updates_applied <= 1);
    }

    #[test]
    fn crash_mid_checkpoint_recovers_from_previous() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0, 64, 128], 1);
        m.checkpoint(); // ckpt 1 complete on copy 1
        m.txn(&[0], 2);
        // begin ckpt 2 (copy 0) and crash after one step
        let tau = m.tau();
        m.ckpt
            .begin(&mut m.storage, &mut m.log, &mut m.backup, &[], tau)
            .unwrap();
        m.ckpt
            .step(&mut m.storage, &mut m.log, &mut m.backup)
            .unwrap();
        let pre_crash = m.storage.fingerprint();
        let (report, recovered) = m.crash_and_recover();
        assert_eq!(report.ckpt, CheckpointId(1), "torn ckpt 2 ineligible");
        assert_eq!(recovered.fingerprint(), pre_crash);
    }

    #[test]
    fn cou_checkpoint_recovery_from_marker_only() {
        let mut m = Mini::new(Algorithm::CouCopy);
        m.txn(&[0, 500], 3);
        m.checkpoint();
        m.txn(&[700], 4);
        let (report, _) = m.crash_and_recover();
        // COU marker has an empty active list → replay starts at the
        // marker and covers exactly the post-marker transaction.
        assert_eq!(report.updates_applied, 1);
        assert_eq!(report.txns_replayed, 1);
    }

    #[test]
    fn commit_order_beats_update_order() {
        // T1 logs its update first but commits last: the final state must
        // carry T1's value (commit order), not T2's (update-record order).
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0], 1);
        m.checkpoint();

        let s_rec = 32usize;
        let (t1, t2) = (TxnId(7001), TxnId(7002));
        let tau1 = m.tau();
        let tau2 = m.tau();
        m.log.append(&LogRecord::TxnBegin { txn: t1, tau: tau1 });
        let v1 = vec![111u32; s_rec];
        let r1 = LogRecord::Update {
            txn: t1,
            record: RecordId(50),
            value: v1.clone(),
        };
        let l1 = m.log.append(&r1);
        m.log.append(&LogRecord::TxnBegin { txn: t2, tau: tau2 });
        let v2 = vec![222u32; s_rec];
        let r2 = LogRecord::Update {
            txn: t2,
            record: RecordId(50),
            value: v2.clone(),
        };
        let l2 = m.log.append(&r2);
        // T2 commits first and installs
        m.log.append_forced(&LogRecord::Commit { txn: t2 }).unwrap();
        m.storage
            .install_record(RecordId(50), &v2, r2.end_lsn(l2), tau2, &m.meter)
            .unwrap();
        // then T1 commits and installs
        m.log.append_forced(&LogRecord::Commit { txn: t1 }).unwrap();
        m.storage
            .install_record(RecordId(50), &v1, r1.end_lsn(l1), tau1, &m.meter)
            .unwrap();

        let pre_crash = m.storage.fingerprint();
        let (_, recovered) = m.crash_and_recover();
        assert_eq!(recovered.fingerprint(), pre_crash);
        assert_eq!(recovered.read_record(RecordId(50)).unwrap()[0], 111);
    }

    #[test]
    fn recovered_segments_dirty_for_other_copy() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0], 1);
        m.checkpoint(); // copy 1 holds ckpt 1
        let (report, recovered) = m.crash_and_recover();
        assert_eq!(report.copy, 1);
        // every segment is clean w.r.t. copy 1 but dirty w.r.t. copy 0
        assert!(!recovered.is_dirty(SegmentId(0), 1).unwrap());
        assert!(recovered.is_dirty(SegmentId(0), 0).unwrap());
    }

    #[test]
    fn recovery_time_model_shapes() {
        let disk = Params::paper_defaults().disk;
        let t_full = recovery_time_model(&disk, 32_768, 8192, 0);
        assert!(
            (85.0..95.0).contains(&t_full),
            "backup read ≈ 90 s, got {t_full}"
        );
        let t_with_log = recovery_time_model(&disk, 32_768, 8192, 10_000_000);
        assert!(t_with_log > t_full);
        // doubling the disks roughly halves it
        let disk2 = DiskParams {
            n_bdisks: 40,
            ..disk
        };
        let t_fast = recovery_time_model(&disk2, 32_768, 8192, 0);
        assert!((t_full / t_fast - 2.0).abs() < 0.01);
    }

    #[test]
    fn prepared_branch_is_in_doubt_not_installed() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0], 1);
        m.checkpoint();
        let consistent = m.storage.fingerprint();

        // a prepared-but-undecided branch: updates + Prepare forced
        let tau = m.tau();
        let txn = TxnId(8888);
        m.log.append(&LogRecord::TxnBegin { txn, tau });
        m.log.append(&LogRecord::Update {
            txn,
            record: RecordId(300),
            value: vec![5u32; 32],
        });
        m.log
            .append_forced(&LogRecord::Prepare { txn, gid: 41 })
            .unwrap();

        let (report, recovered) = m.crash_and_recover();
        // replay must NOT install the branch...
        assert_eq!(recovered.fingerprint(), consistent);
        // ...but must surface it for the coordinator, not discard it
        assert_eq!(report.txns_discarded, 0);
        assert_eq!(report.in_doubt.len(), 1);
        assert_eq!(report.in_doubt[0].gid, 41);
        assert_eq!(report.in_doubt[0].txn, txn);
        assert_eq!(
            report.in_doubt[0].writes,
            vec![(RecordId(300), vec![5u32; 32])]
        );
        assert_eq!(report.max_gid, 41);
    }

    #[test]
    fn prepared_then_committed_replays_and_decisions_collected() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0], 1);
        m.checkpoint();

        let tau = m.tau();
        let txn = TxnId(8889);
        let value = vec![6u32; 32];
        m.log.append(&LogRecord::TxnBegin { txn, tau });
        let rec = LogRecord::Update {
            txn,
            record: RecordId(301),
            value: value.clone(),
        };
        let lsn = m.log.append(&rec);
        m.log
            .append_forced(&LogRecord::Prepare { txn, gid: 7 })
            .unwrap();
        m.log
            .append_forced(&LogRecord::Decide {
                gid: 7,
                commit: true,
            })
            .unwrap();
        m.log.append_forced(&LogRecord::Commit { txn }).unwrap();
        m.storage
            .install_record(RecordId(301), &value, rec.end_lsn(lsn), tau, &m.meter)
            .unwrap();

        let pre_crash = m.storage.fingerprint();
        let (report, recovered) = m.crash_and_recover();
        assert_eq!(recovered.fingerprint(), pre_crash);
        assert!(report.in_doubt.is_empty());
        assert_eq!(report.decisions, vec![(7, true)]);
        assert_eq!(report.max_gid, 7);
    }

    #[test]
    fn report_total_is_sum() {
        let mut m = Mini::new(Algorithm::FuzzyCopy);
        m.txn(&[0], 1);
        m.checkpoint();
        let (report, _) = m.crash_and_recover();
        assert!(report.total_seconds() > 0.0);
        assert!(
            (report.total_seconds() - (report.backup_read_seconds + report.log_read_seconds)).abs()
                < 1e-12
        );
        assert_eq!(report.segments_loaded, 32);
        assert_eq!(report.backup_words, 32 * 2048);
    }
}
