//! Debug/test-only lock discipline detector.
//!
//! Two checks run on every [`RankedMutex`](crate::RankedMutex)
//! acquisition:
//!
//! 1. **Rank inversion** — a thread-local held set: acquiring a ranked
//!    lock whose rank is not strictly below every held rank panics
//!    immediately, naming both acquisition sites. This is deterministic
//!    (no unlucky scheduling required) and catches the *potential*
//!    deadlock, not just the realized one.
//! 2. **Wait-for cycles** — a global `lock → holder` / `thread →
//!    waited-lock` graph, consulted when an acquisition is about to
//!    block: if following `holder → waiting → holder → …` leads back to
//!    the current thread, the realized deadlock panics in the thread
//!    that closed the cycle, printing every edge with its acquisition
//!    site. This is the safety net for [`UNRANKED`](crate::LockRank)
//!    locks and for rank bugs that slip past review in release-profile
//!    dependencies.
//!
//! The detector's own table lives behind a plain `std::sync::Mutex`: it
//! acquires no ranked lock while held, so it cannot participate in any
//! cycle it would have to detect. The whole module is compiled only
//! under `debug_assertions`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{LazyLock, Mutex, PoisonError};
use std::thread::ThreadId;

type Site = &'static Location<'static>;

#[derive(Clone, Copy)]
struct Held {
    lock: usize,
    name: &'static str,
    rank: Option<u32>,
    at: Site,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
struct Tables {
    /// lock id → (holding thread, lock name, acquisition site).
    holders: HashMap<usize, (ThreadId, &'static str, Site)>,
    /// thread → (lock id it is blocked on, lock name, wait site).
    waiting: HashMap<ThreadId, (usize, &'static str, Site)>,
}

static TABLES: LazyLock<Mutex<Tables>> = LazyLock::new(|| Mutex::new(Tables::default()));

fn tables() -> std::sync::MutexGuard<'static, Tables> {
    // A detector panic poisons this mutex by design; later threads must
    // still be able to clean up their bookkeeping.
    TABLES.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Rank-inversion check, run *before* attempting the acquisition.
pub(crate) fn check_acquire(lock: usize, name: &'static str, rank: Option<u32>, at: Site) {
    HELD.with(|held| {
        let held = held.borrow();
        for h in held.iter() {
            if h.lock == lock {
                panic!(
                    "relock of `{name}` at {at}: this thread already holds it \
                     (acquired at {prev})",
                    prev = h.at
                );
            }
        }
        let Some(rank) = rank else { return };
        for h in held.iter() {
            if let Some(held_rank) = h.rank {
                if rank >= held_rank {
                    panic!(
                        "lock-rank inversion: acquiring `{name}` (rank {rank}) at {at} \
                         while holding `{held_name}` (rank {held_rank}) acquired at \
                         {held_at} — the hierarchy (DESIGN.md §6.6) requires strictly \
                         descending acquisition",
                        held_name = h.name,
                        held_at = h.at,
                    );
                }
            }
        }
    });
}

/// Records a successful acquisition.
pub(crate) fn acquired(lock: usize, name: &'static str, rank: Option<u32>, at: Site) {
    HELD.with(|held| {
        held.borrow_mut().push(Held {
            lock,
            name,
            rank,
            at,
        })
    });
    tables()
        .holders
        .insert(lock, (std::thread::current().id(), name, at));
}

/// Records a release (guard drop or condvar-wait detach).
pub(crate) fn released(lock: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| h.lock == lock) {
            held.remove(pos);
        }
    });
    tables().holders.remove(&lock);
}

/// Registers this thread as blocked on `lock` and walks the wait-for
/// graph; panics if the walk returns to this thread (a realized
/// deadlock cycle), printing every edge.
pub(crate) fn wait_begin(lock: usize, name: &'static str, at: Site) {
    let me = std::thread::current().id();
    let t = tables();
    // Walk: the lock I want → its holder → the lock that thread wants → …
    let mut chain: Vec<String> = vec![format!("thread {me:?} waits for `{name}` at {at}")];
    let mut next_lock = lock;
    let mut hops = 0;
    while let Some(&(holder, held_name, held_at)) = t.holders.get(&next_lock) {
        chain.push(format!(
            "  `{held_name}` is held by thread {holder:?} (acquired at {held_at})"
        ));
        if holder == me {
            drop(t);
            panic!(
                "deadlock cycle detected:\n{}\n  — which is this thread: the wait-for \
                 graph is cyclic",
                chain.join("\n")
            );
        }
        match t.waiting.get(&holder) {
            Some(&(wanted, wanted_name, wanted_at)) => {
                chain.push(format!(
                    "  thread {holder:?} waits for `{wanted_name}` at {wanted_at}"
                ));
                next_lock = wanted;
            }
            None => break,
        }
        hops += 1;
        if hops > 1024 {
            break; // defensive bound; real chains are a handful of edges
        }
    }
    let mut t = t;
    t.waiting.insert(me, (lock, name, at));
}

/// Clears this thread's waiting edge after the blocked acquisition
/// completed.
pub(crate) fn wait_end() {
    tables().waiting.remove(&std::thread::current().id());
}
