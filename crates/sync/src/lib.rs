//! **mmdb-sync** — rank-checked synchronization primitives.
//!
//! The engine is deliberately single-threaded; every thread that exists
//! in this workspace exists to move work *around* it (shard routers,
//! group-commit flushers, server workers, checkpointers). Those threads
//! share a small set of locks whose nesting discipline is what keeps the
//! system deadlock-free — most critically the cross-shard two-phase
//! commit, which is only safe because shard locks are always acquired in
//! ascending index order, and the group-commit split, which is only fast
//! because the engine lock is never held across the modeled device
//! latency. Until now those rules lived in comments. This crate makes
//! them machine-checked:
//!
//! * [`RankedMutex`] / [`RankedCondvar`] wrap `std::sync` primitives
//!   with a declared [`LockRank`] from the checked-in hierarchy
//!   (`DESIGN.md` §6.6). Locks must be acquired in **strictly
//!   descending rank order**; per-shard engine locks encode the shard
//!   index so ascending-index 2PC acquisition is descending-rank by
//!   construction.
//! * In debug and test builds every acquisition is checked against the
//!   calling thread's held set (**rank inversion** panics naming both
//!   acquisition sites) and registered in a global wait-for graph
//!   (**deadlock cycles** panic with the full chain of holders). Release
//!   builds compile all of this out.
//! * With a [`ContentionSink`] attached (the obs registry implements
//!   one), each lock reports `sync.<name>.contended` (acquisitions that
//!   had to block) and `sync.<name>.held_us` (hold time, excluding
//!   condvar waits) — the contention map that will steer the per-segment
//!   latch refactor. Without a sink the wrappers are passthrough: one
//!   branch on the fast path, no clock reads.
//!
//! Poison tolerance is built in: `lock()` returns the guard directly,
//! recovering from poisoning the same way every hand-written
//! `unwrap_or_else(PoisonError::into_inner)` site in this workspace
//! already did (lint rule **L5** now enforces the standard; these
//! wrappers satisfy it by construction).

#[cfg(debug_assertions)]
use std::panic::Location;
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};
use std::time::{Duration, Instant};

#[cfg(debug_assertions)]
mod detect;

/// A position in the checked-in lock hierarchy. Locks must be acquired
/// in strictly **descending** rank order: while a thread holds a lock of
/// rank `r`, it may only acquire locks of rank `< r`. Equal ranks never
/// nest (two same-rank locks held together is an inversion).
///
/// The workspace hierarchy, outermost first (see `DESIGN.md` §6.6):
///
/// | rank | lock |
/// |---|---|
/// | 1 100 000 | [`LockRank::CONN_QUEUE`] — server connection queue |
/// | 1 000 000 | [`LockRank::ROUTER_TXNS`] — router interactive-txn map |
/// | 950 000 | [`LockRank::REPL_RESOLVER`] — replica replay resolver |
/// | 900 000 − *i* | [`LockRank::engine`] — shard *i*'s engine |
/// | 600 000 − *j* | [`LockRank::segment`] — segment *j*'s write latch |
/// | 130 000 | [`LockRank::ENGINE_TXNS`] — engine transaction table |
/// | 120 000 | [`LockRank::ENGINE_LOG`] — engine log manager |
/// | 100 000 − *i* | [`LockRank::flusher_signal`] — shard *i*'s doorbell |
/// | 10 000 | [`LockRank::WATERMARK`] — durable-LSN watermark |
/// | 9 500 | [`LockRank::REPL_STATE`] — replication bookkeeping |
/// | 9 000 | [`LockRank::SHIP_TAP`] — log-shipping tap window |
/// | 5 000 | [`LockRank::AUDIT`] — audit event recorder |
/// | 40 | [`LockRank::OBS_SLOW`] — slow-request log |
/// | 30 | [`LockRank::OBS_FLIGHT`] — flight-recorder thread ring |
/// | 20 | [`LockRank::OBS_TRACE`] — telemetry span ring |
/// | 15 | [`LockRank::OBS_ATTR`] — latency-attribution table |
/// | 10 | [`LockRank::OBS_METRICS`] — telemetry metrics registry |
///
/// [`LockRank::UNRANKED`] opts a lock out of rank checking (it still
/// participates in wait-for cycle detection) — for locks genuinely
/// outside the hierarchy, e.g. test scaffolding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockRank(Option<u32>);

impl LockRank {
    /// Server connection hand-off queue (workers hold it only to
    /// dequeue; it is the outermost lock a worker ever takes).
    pub const CONN_QUEUE: LockRank = LockRank(Some(1_100_000));
    /// The shard router's interactive-transaction binding map (always
    /// taken before any shard engine lock).
    pub const ROUTER_TXNS: LockRank = LockRank(Some(1_000_000));
    /// The replica replay resolver (cross-stream Prepare/Decide pooling):
    /// held while the replayer applies a committed transaction into a
    /// shard engine, so it sits *above* every engine lock.
    pub const REPL_RESOLVER: LockRank = LockRank(Some(950_000));
    /// The engine's active-transaction table, an interior lock taken
    /// only momentarily (begin / finish bookkeeping) by concurrent
    /// shared-mode committers — never across log I/O. Below every
    /// segment latch, above the log manager.
    pub const ENGINE_TXNS: LockRank = LockRank(Some(130_000));
    /// The engine's log manager — the commit pipeline's single
    /// serialization point: shared-mode committers append their whole
    /// REDO group under it. Below the segment latches and the
    /// transaction table, above the flusher doorbell.
    pub const ENGINE_LOG: LockRank = LockRank(Some(120_000));
    /// Per-shard durable-LSN watermark state (taken under the engine
    /// lock by the force path; alone by parked committers).
    pub const WATERMARK: LockRank = LockRank(Some(10_000));
    /// Primary-side replication bookkeeping (per-standby lag trackers);
    /// never held across an engine or tap acquisition.
    pub const REPL_STATE: LockRank = LockRank(Some(9_500));
    /// The log-shipping tap window: pushed to from the force path (under
    /// an engine lock), long-polled alone by replication servers.
    pub const SHIP_TAP: LockRank = LockRank(Some(9_000));
    /// The audit subsystem's shared event recorder (emitted to from
    /// under engine locks).
    pub const AUDIT: LockRank = LockRank(Some(5_000));
    /// The slow-request log (pushed to after a request's flight spans
    /// are collected; never held together with any other obs lock).
    pub const OBS_SLOW: LockRank = LockRank(Some(40));
    /// A flight-recorder per-thread ring — uncontended on the hot path
    /// (each thread owns its ring; the snapshotter is the only other
    /// taker).
    pub const OBS_FLIGHT: LockRank = LockRank(Some(30));
    /// The telemetry span ring (never nests with the metrics registry).
    pub const OBS_TRACE: LockRank = LockRank(Some(20));
    /// The latency-attribution table, keyed `(opcode, phase)`.
    pub const OBS_ATTR: LockRank = LockRank(Some(15));
    /// The telemetry metrics registry — the innermost lock in the
    /// system: safe to take while holding anything.
    pub const OBS_METRICS: LockRank = LockRank(Some(10));
    /// Outside the hierarchy: rank checks are skipped, wait-for cycle
    /// detection still applies.
    pub const UNRANKED: LockRank = LockRank(None);

    const ENGINE_BASE: u32 = 900_000;
    const SEGMENT_BASE: u32 = 600_000;
    const FLUSHER_BASE: u32 = 100_000;
    /// Widest supported shard topology (matches `mmdb_shard::MAX_SHARDS`).
    pub const MAX_SHARD_INDEX: usize = 100_000 - 10_001;
    /// Widest supported segment space for per-segment write latches:
    /// segment ranks must stay strictly above [`LockRank::ENGINE_TXNS`].
    pub const MAX_SEGMENT_INDEX: usize = (600_000 - 130_001) as usize;

    /// Shard `i`'s engine lock: rank `900_000 − i`, so acquiring engines
    /// in ascending shard-index order (the 2PC discipline) is strictly
    /// descending rank.
    pub fn engine(shard: usize) -> LockRank {
        assert!(
            shard <= Self::MAX_SHARD_INDEX,
            "shard index out of rank range"
        );
        LockRank(Some(Self::ENGINE_BASE - shard as u32))
    }

    /// Segment `j`'s write latch: rank `600_000 − j`, strictly below
    /// every engine lock and strictly above the engine-interior
    /// transaction-table and log locks. Acquiring latches in ascending
    /// segment order (the disjoint-write discipline of concurrent
    /// single-shard transactions) is strictly descending rank, exactly
    /// like the 2PC shard-order rule one level up.
    pub fn segment(segment: usize) -> LockRank {
        assert!(
            segment <= Self::MAX_SEGMENT_INDEX,
            "segment index out of rank range"
        );
        LockRank(Some(Self::SEGMENT_BASE - segment as u32))
    }

    /// Shard `i`'s group-commit flusher doorbell: below every engine
    /// lock, above the watermark.
    pub fn flusher_signal(shard: usize) -> LockRank {
        assert!(
            shard <= Self::MAX_SHARD_INDEX,
            "shard index out of rank range"
        );
        LockRank(Some(Self::FLUSHER_BASE - shard as u32))
    }

    /// The numeric rank, if ranked.
    pub fn value(self) -> Option<u32> {
        self.0
    }

    /// The named fixed ranks, outermost first — the machine-readable
    /// half of the `DESIGN.md` §6.6 catalog (per-shard ranks are the
    /// parameterized [`LockRank::engine`] / [`LockRank::flusher_signal`]
    /// families between `ROUTER_TXNS` and `WATERMARK`).
    pub fn catalog() -> &'static [(&'static str, u32)] {
        &[
            ("conn-queue", 1_100_000),
            ("router-txns", 1_000_000),
            ("repl-resolver", 950_000),
            ("engine[i] = 900_000 - i", 900_000),
            ("segment[j] = 600_000 - j", 600_000),
            ("engine-txns", 130_000),
            ("engine-log", 120_000),
            ("flusher-signal[i] = 100_000 - i", 100_000),
            ("watermark", 10_000),
            ("repl-state", 9_500),
            ("ship-tap", 9_000),
            ("audit", 5_000),
            ("obs-slow", 40),
            ("obs-flight", 30),
            ("obs-trace", 20),
            ("obs-attr", 15),
            ("obs-metrics", 10),
        ]
    }
}

/// Receiver for lock contention telemetry. `mmdb_obs::Obs` implements
/// this; attaching it routes `sync.<name>.contended` /
/// `sync.<name>.held_us` into the shared metrics registry.
pub trait ContentionSink: Send + Sync {
    /// An acquisition of the lock behind `metric` had to block.
    fn contended(&self, metric: &'static str);
    /// The lock behind `metric` was held for `us` microseconds.
    fn held_us(&self, metric: &'static str, us: u64);
}

/// Leaks `name` into a `&'static str` — for per-instance lock names
/// built at startup (e.g. `engine.3`). Bounded: call once per lock.
pub fn leak_name(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

struct SinkSlot {
    sink: Arc<dyn ContentionSink>,
    contended: &'static str,
    held_us: &'static str,
}

struct LockMeta {
    name: &'static str,
    rank: LockRank,
    sink: OnceLock<SinkSlot>,
}

impl LockMeta {
    fn new(name: &'static str, rank: LockRank) -> LockMeta {
        LockMeta {
            name,
            rank,
            sink: OnceLock::new(),
        }
    }

    fn attach(&self, sink: Arc<dyn ContentionSink>) {
        let _ = self.sink.set(SinkSlot {
            sink,
            contended: leak_name(format!("sync.{}.contended", self.name)),
            held_us: leak_name(format!("sync.{}.held_us", self.name)),
        });
    }
}

/// A [`Mutex`] carrying a declared [`LockRank`]. See the module docs
/// for the checking and telemetry semantics.
pub struct RankedMutex<T> {
    inner: Mutex<T>,
    meta: LockMeta,
}

impl<T: std::fmt::Debug> std::fmt::Debug for RankedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedMutex")
            .field("name", &self.meta.name)
            .field("rank", &self.meta.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T> RankedMutex<T> {
    /// A ranked mutex named `name` (the telemetry key) guarding `value`.
    pub fn new(name: &'static str, rank: LockRank, value: T) -> RankedMutex<T> {
        RankedMutex {
            inner: Mutex::new(value),
            meta: LockMeta::new(name, rank),
        }
    }

    /// Routes contention telemetry to `sink` (first call wins; later
    /// calls are ignored). Without a sink the lock never reads a clock.
    pub fn set_sink(&self, sink: Arc<dyn ContentionSink>) {
        self.meta.attach(sink);
    }

    /// The declared rank.
    pub fn rank(&self) -> LockRank {
        self.meta.rank
    }

    /// The declared name (also the `sync.<name>.*` telemetry key).
    pub fn name(&self) -> &'static str {
        self.meta.name
    }

    /// Acquires the lock, blocking if contended. Poison-tolerant: a
    /// panic in another holder does not cascade. In debug/test builds
    /// this panics on rank inversion or a wait-for deadlock cycle,
    /// naming every involved acquisition site.
    #[track_caller]
    pub fn lock(&self) -> RankedGuard<'_, T> {
        #[cfg(debug_assertions)]
        let at = Location::caller();
        #[cfg(debug_assertions)]
        detect::check_acquire(self.id(), self.meta.name, self.meta.rank.0, at);

        let sink = self.meta.sink.get();
        let guard = if sink.is_some() || cfg!(debug_assertions) {
            match self.inner.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    if let Some(slot) = sink {
                        slot.sink.contended(slot.contended);
                    }
                    #[cfg(debug_assertions)]
                    detect::wait_begin(self.id(), self.meta.name, at);
                    let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    #[cfg(debug_assertions)]
                    detect::wait_end();
                    g
                }
            }
        } else {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        };

        #[cfg(debug_assertions)]
        detect::acquired(self.id(), self.meta.name, self.meta.rank.0, at);
        RankedGuard {
            inner: Some(guard),
            lock: self,
            since: sink.map(|_| Instant::now()),
        }
    }

    /// Consumes the mutex, returning the value (poison-tolerant).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access without locking: `&mut self` proves no other
    /// thread can hold the mutex, so this is free — no atomics, no rank
    /// bookkeeping. The engine's `&mut self` paths use this so interior
    /// locks cost nothing when the caller already has the whole engine
    /// exclusively.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    #[cfg(debug_assertions)]
    fn id(&self) -> usize {
        std::ptr::from_ref(self) as *const () as usize
    }

    /// Bookkeeping shared by guard drop and condvar-wait release.
    fn on_release(&self, since: Option<Instant>) {
        #[cfg(debug_assertions)]
        detect::released(self.id());
        if let (Some(slot), Some(started)) = (self.meta.sink.get(), since) {
            let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            slot.sink.held_us(slot.held_us, us);
        }
    }
}

/// Guard returned by [`RankedMutex::lock`]. Dropping it releases the
/// lock, pops the rank bookkeeping, and reports hold time.
pub struct RankedGuard<'a, T> {
    /// `None` only transiently while detached for a condvar wait.
    inner: Option<MutexGuard<'a, T>>,
    lock: &'a RankedMutex<T>,
    since: Option<Instant>,
}

impl<T> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .unwrap_or_else(|| unreachable!("guard accessed while detached"))
    }
}

impl<T> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .unwrap_or_else(|| unreachable!("guard accessed while detached"))
    }
}

impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            // The std guard dropped on the line above: release the
            // mutex *before* the sink touches the (lower-ranked)
            // metrics registry.
            self.lock.on_release(self.since.take());
        }
    }
}

/// A reader/writer lock carrying a declared [`LockRank`] — the
/// shared/exclusive gate of the intra-shard concurrency design
/// (`DESIGN.md` §6.10).
///
/// [`RankedRwLock::lock`] is the **exclusive** acquisition, named
/// `lock` deliberately: it is the drop-in replacement for
/// [`RankedMutex::lock`] on the per-shard engine, keeps the router's
/// choke-point discipline textually identical (lint rule **L2**
/// pattern-matches `.lock()`), and means every pre-existing engine
/// path — checkpointer, recovery, 2PC, quiesce, maintenance — keeps
/// exactly the semantics it had under the mutex. [`RankedRwLock::read`]
/// is the **shared** acquisition used only by concurrent single-shard
/// committers and lock-free-read fallbacks; shared holders get `&T`
/// and therefore can only reach the engine's interior-locked or atomic
/// state.
///
/// Rank bookkeeping treats both modes identically (each acquisition
/// pushes the rank onto the thread's held set; inversions panic in
/// debug builds). The global wait-for table keeps one holder per lock,
/// so with multiple concurrent readers cycle detection is approximate —
/// the rank check, which is per-thread and exact, is the primary
/// discipline, exactly as for [`RankedMutex`].
pub struct RankedRwLock<T> {
    inner: RwLock<T>,
    meta: LockMeta,
}

impl<T: std::fmt::Debug> std::fmt::Debug for RankedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedRwLock")
            .field("name", &self.meta.name)
            .field("rank", &self.meta.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T> RankedRwLock<T> {
    /// A ranked rwlock named `name` (the telemetry key) guarding `value`.
    pub fn new(name: &'static str, rank: LockRank, value: T) -> RankedRwLock<T> {
        RankedRwLock {
            inner: RwLock::new(value),
            meta: LockMeta::new(name, rank),
        }
    }

    /// Routes contention telemetry to `sink` (first call wins).
    pub fn set_sink(&self, sink: Arc<dyn ContentionSink>) {
        self.meta.attach(sink);
    }

    /// The declared rank.
    pub fn rank(&self) -> LockRank {
        self.meta.rank
    }

    /// The declared name (also the `sync.<name>.*` telemetry key).
    pub fn name(&self) -> &'static str {
        self.meta.name
    }

    /// Acquires the lock **exclusively** (the write mode), blocking if
    /// contended. Poison-tolerant; rank-checked in debug builds. This is
    /// the engine-mutex-equivalent acquisition: every path that needs
    /// `&mut` to the guarded value goes through here.
    #[track_caller]
    pub fn lock(&self) -> RankedRwWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let at = Location::caller();
        #[cfg(debug_assertions)]
        detect::check_acquire(self.id(), self.meta.name, self.meta.rank.0, at);

        let sink = self.meta.sink.get();
        let guard = if sink.is_some() || cfg!(debug_assertions) {
            match self.inner.try_write() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    if let Some(slot) = sink {
                        slot.sink.contended(slot.contended);
                    }
                    #[cfg(debug_assertions)]
                    detect::wait_begin(self.id(), self.meta.name, at);
                    let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
                    #[cfg(debug_assertions)]
                    detect::wait_end();
                    g
                }
            }
        } else {
            self.inner.write().unwrap_or_else(PoisonError::into_inner)
        };

        #[cfg(debug_assertions)]
        detect::acquired(self.id(), self.meta.name, self.meta.rank.0, at);
        RankedRwWriteGuard {
            inner: Some(guard),
            lock: self,
            since: sink.map(|_| Instant::now()),
        }
    }

    /// Acquires the lock **shared** (the read mode), blocking if a
    /// writer holds or waits. Shared holders coexist; the guard derefs
    /// to `&T` only. Same poison tolerance and rank bookkeeping as
    /// [`RankedRwLock::lock`].
    #[track_caller]
    pub fn read(&self) -> RankedRwReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let at = Location::caller();
        #[cfg(debug_assertions)]
        detect::check_acquire(self.id(), self.meta.name, self.meta.rank.0, at);

        let sink = self.meta.sink.get();
        let guard = if sink.is_some() || cfg!(debug_assertions) {
            match self.inner.try_read() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    if let Some(slot) = sink {
                        slot.sink.contended(slot.contended);
                    }
                    #[cfg(debug_assertions)]
                    detect::wait_begin(self.id(), self.meta.name, at);
                    let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
                    #[cfg(debug_assertions)]
                    detect::wait_end();
                    g
                }
            }
        } else {
            self.inner.read().unwrap_or_else(PoisonError::into_inner)
        };

        #[cfg(debug_assertions)]
        detect::acquired(self.id(), self.meta.name, self.meta.rank.0, at);
        RankedRwReadGuard {
            inner: Some(guard),
            lock: self,
            since: sink.map(|_| Instant::now()),
        }
    }

    /// Consumes the lock, returning the value (poison-tolerant).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access without locking (see [`RankedMutex::get_mut`]).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    #[cfg(debug_assertions)]
    fn id(&self) -> usize {
        std::ptr::from_ref(self) as *const () as usize
    }

    fn on_release(&self, since: Option<Instant>) {
        #[cfg(debug_assertions)]
        detect::released(self.id());
        if let (Some(slot), Some(started)) = (self.meta.sink.get(), since) {
            let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            slot.sink.held_us(slot.held_us, us);
        }
    }
}

/// Exclusive guard returned by [`RankedRwLock::lock`].
pub struct RankedRwWriteGuard<'a, T> {
    inner: Option<RwLockWriteGuard<'a, T>>,
    lock: &'a RankedRwLock<T>,
    since: Option<Instant>,
}

impl<T> std::ops::Deref for RankedRwWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .unwrap_or_else(|| unreachable!("guard accessed after release"))
    }
}

impl<T> std::ops::DerefMut for RankedRwWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .unwrap_or_else(|| unreachable!("guard accessed after release"))
    }
}

impl<T> Drop for RankedRwWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.lock.on_release(self.since.take());
        }
    }
}

/// Shared guard returned by [`RankedRwLock::read`].
pub struct RankedRwReadGuard<'a, T> {
    inner: Option<RwLockReadGuard<'a, T>>,
    lock: &'a RankedRwLock<T>,
    since: Option<Instant>,
}

impl<T> std::ops::Deref for RankedRwReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .unwrap_or_else(|| unreachable!("guard accessed after release"))
    }
}

impl<T> Drop for RankedRwReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.lock.on_release(self.since.take());
        }
    }
}

/// A [`Condvar`] paired with [`RankedMutex`] guards. Waiting detaches
/// the guard's bookkeeping (the mutex is released while parked, so the
/// rank is not held) and re-registers it on wake.
#[derive(Default)]
pub struct RankedCondvar {
    inner: Condvar,
}

impl std::fmt::Debug for RankedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedCondvar").finish_non_exhaustive()
    }
}

impl RankedCondvar {
    /// A fresh condvar.
    pub fn new() -> RankedCondvar {
        RankedCondvar::default()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks on the condvar until notified, releasing `guard`'s mutex
    /// while parked. Callers must re-check their predicate in a loop
    /// (lint rule **L3**). Poison-tolerant, like every acquisition here.
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: RankedGuard<'a, T>) -> RankedGuard<'a, T> {
        let (lock, std_guard) = detach(guard);
        let g = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        reattach(lock, g)
    }

    /// Like [`RankedCondvar::wait`] with a timeout; the `bool` is true
    /// when the wait timed out.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: RankedGuard<'a, T>,
        timeout: Duration,
    ) -> (RankedGuard<'a, T>, bool) {
        let (lock, std_guard) = detach(guard);
        let (g, to) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (reattach(lock, g), to.timed_out())
    }
}

/// Strips a guard down to its std guard for a condvar wait, running the
/// release-side bookkeeping (the mutex is about to be released).
fn detach<'a, T>(mut guard: RankedGuard<'a, T>) -> (&'a RankedMutex<T>, MutexGuard<'a, T>) {
    let lock = guard.lock;
    let inner = guard
        .inner
        .take()
        .unwrap_or_else(|| unreachable!("double detach"));
    let since = guard.since.take();
    // `guard` drops here with `inner == None`: no double bookkeeping.
    #[cfg(debug_assertions)]
    detect::released(lock.id());
    if let (Some(slot), Some(started)) = (lock.meta.sink.get(), since) {
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        slot.sink.held_us(slot.held_us, us);
    }
    (lock, inner)
}

/// Re-wraps a std guard after a condvar wake: the mutex is held again,
/// so re-check the rank (against whatever the thread still holds) and
/// restart the hold timer.
#[track_caller]
fn reattach<'a, T>(lock: &'a RankedMutex<T>, inner: MutexGuard<'a, T>) -> RankedGuard<'a, T> {
    #[cfg(debug_assertions)]
    {
        let at = Location::caller();
        detect::check_acquire(lock.id(), lock.meta.name, lock.meta.rank.0, at);
        detect::acquired(lock.id(), lock.meta.name, lock.meta.rank.0, at);
    }
    RankedGuard {
        inner: Some(inner),
        lock,
        since: lock.meta.sink.get().map(|_| Instant::now()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn lock_round_trip_and_into_inner() {
        let m = RankedMutex::new("t", LockRank::WATERMARK, 41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.rank(), LockRank::WATERMARK);
        assert_eq!(m.name(), "t");
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn descending_rank_nesting_is_clean() {
        let outer = RankedMutex::new("outer", LockRank::engine(0), ());
        let inner = RankedMutex::new("inner", LockRank::WATERMARK, ());
        let a = outer.lock();
        let b = inner.lock();
        drop(b);
        drop(a);
    }

    #[test]
    fn ascending_shard_order_is_descending_rank() {
        let shards: Vec<RankedMutex<u32>> = (0..4)
            .map(|i| RankedMutex::new(leak_name(format!("e{i}")), LockRank::engine(i), i as u32))
            .collect();
        let guards: Vec<_> = shards.iter().map(RankedMutex::lock).collect();
        assert_eq!(guards.len(), 4);
        for g in guards.into_iter().rev() {
            drop(g);
        }
    }

    #[test]
    fn condvar_wait_timeout_releases_and_reacquires() {
        let m = RankedMutex::new("cvm", LockRank::WATERMARK, 0u32);
        let cv = RankedCondvar::new();
        let mut g = m.lock();
        let mut timed_out = false;
        while !timed_out {
            let (guard, t) = cv.wait_timeout(g, Duration::from_millis(5));
            g = guard;
            timed_out = t;
        }
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_notify_wakes_a_waiter() {
        let m = Arc::new(RankedMutex::new("nw", LockRank::WATERMARK, false));
        let cv = Arc::new(RankedCondvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let (guard, timed_out) = cv2.wait_timeout(g, Duration::from_secs(10));
                g = guard;
                if timed_out {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().expect("waiter"));
    }

    struct CountingSink {
        contended: AtomicU64,
        held: AtomicU64,
    }

    impl ContentionSink for CountingSink {
        fn contended(&self, _metric: &'static str) {
            self.contended.fetch_add(1, Ordering::SeqCst);
        }
        fn held_us(&self, _metric: &'static str, _us: u64) {
            self.held.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn sink_sees_contention_and_hold_times() {
        let sink = Arc::new(CountingSink {
            contended: AtomicU64::new(0),
            held: AtomicU64::new(0),
        });
        let m = Arc::new(RankedMutex::new("cs", LockRank::UNRANKED, ()));
        m.set_sink(Arc::clone(&sink) as Arc<dyn ContentionSink>);
        {
            let _g = m.lock();
        }
        assert_eq!(sink.held.load(Ordering::SeqCst), 1, "uncontended hold");
        // Force contention: hold the lock while another thread acquires.
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || {
            let _g = m2.lock();
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        t.join().expect("contender");
        assert!(
            sink.contended.load(Ordering::SeqCst) >= 1,
            "blocked acquire counted"
        );
        assert_eq!(sink.held.load(Ordering::SeqCst), 3, "every hold reported");
    }

    #[test]
    fn catalog_is_strictly_descending() {
        let ranks: Vec<u32> = LockRank::catalog().iter().map(|(_, r)| *r).collect();
        assert!(ranks.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = RankedMutex::new("gm", LockRank::WATERMARK, 1u32);
        *m.get_mut() += 1;
        assert_eq!(*m.lock(), 2);
        let mut rw = RankedRwLock::new("grw", LockRank::WATERMARK, 1u32);
        *rw.get_mut() += 1;
        assert_eq!(*rw.read(), 2);
    }

    #[test]
    fn segment_ranks_sit_between_engine_and_interior_locks() {
        let engine = LockRank::engine(1023).value().unwrap();
        let seg_first = LockRank::segment(0).value().unwrap();
        let seg_last = LockRank::segment(LockRank::MAX_SEGMENT_INDEX)
            .value()
            .unwrap();
        assert!(seg_first < engine);
        assert!(seg_last > LockRank::ENGINE_TXNS.value().unwrap());
        assert!(LockRank::ENGINE_TXNS.value().unwrap() > LockRank::ENGINE_LOG.value().unwrap());
        assert!(
            LockRank::ENGINE_LOG.value().unwrap() > LockRank::flusher_signal(0).value().unwrap()
        );
        // ascending segment order is strictly descending rank
        assert!(LockRank::segment(0).value() > LockRank::segment(1).value());
    }

    #[test]
    fn rwlock_write_round_trip_and_into_inner() {
        let rw = RankedRwLock::new("rw", LockRank::WATERMARK, 41);
        *rw.lock() += 1;
        assert_eq!(*rw.read(), 42);
        assert_eq!(rw.rank(), LockRank::WATERMARK);
        assert_eq!(rw.name(), "rw");
        assert_eq!(rw.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_share_while_writer_excludes() {
        let rw = Arc::new(RankedRwLock::new("share", LockRank::engine(0), 7u32));
        // two threads hold read guards simultaneously
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let rw = Arc::clone(&rw);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let g = rw.read();
                    barrier.wait(); // both inside at once: readers coexist
                    *g
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("reader"), 7);
        }
        // a writer sees the value exclusively afterwards
        *rw.lock() = 8;
        assert_eq!(*rw.read(), 8);
    }

    #[test]
    fn rwlock_engine_then_segment_then_log_nesting_is_clean() {
        // the intra-shard commit pipeline's exact shape: shared engine,
        // then ascending segment latches, then the interior log lock
        let engine = RankedRwLock::new("engine.0", LockRank::engine(0), ());
        let seg2 = RankedMutex::new("seg.2", LockRank::segment(2), ());
        let seg5 = RankedMutex::new("seg.5", LockRank::segment(5), ());
        let log = RankedMutex::new("log.0", LockRank::ENGINE_LOG, ());
        let e = engine.read();
        let a = seg2.lock();
        let b = seg5.lock();
        let l = log.lock();
        drop(l);
        drop(b);
        drop(a);
        drop(e);
    }

    #[test]
    fn rwlock_reports_contention_to_the_sink() {
        let sink = Arc::new(CountingSink {
            contended: AtomicU64::new(0),
            held: AtomicU64::new(0),
        });
        let rw = Arc::new(RankedRwLock::new("rwcs", LockRank::UNRANKED, ()));
        rw.set_sink(Arc::clone(&sink) as Arc<dyn ContentionSink>);
        {
            let _g = rw.read();
        }
        assert_eq!(sink.held.load(Ordering::SeqCst), 1);
        let g = rw.lock();
        let rw2 = Arc::clone(&rw);
        let t = std::thread::spawn(move || {
            let _g = rw2.read();
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        t.join().expect("reader");
        assert!(sink.contended.load(Ordering::SeqCst) >= 1);
        assert_eq!(sink.held.load(Ordering::SeqCst), 3);
    }
}
