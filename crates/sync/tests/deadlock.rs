//! Detector tests: the deliberate violations must panic with messages
//! naming every involved acquisition site, and the sanctioned
//! disciplines (ascending shard order, descending rank nesting) must
//! never trip. The detector only exists under `debug_assertions`, so
//! the violation tests are compiled out of release runs.

use mmdb_sync::{leak_name, LockRank, RankedMutex};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Runs `f` on a fresh thread and returns the panic message it died
/// with (panics itself if `f` completed cleanly).
#[cfg(debug_assertions)]
fn panic_message_of(f: impl FnOnce() + Send + 'static) -> String {
    let err = std::thread::Builder::new()
        .name("expect-panic".into())
        .spawn(f)
        .expect("spawn")
        .join()
        .expect_err("the violation must panic");
    match err.downcast::<String>() {
        Ok(s) => *s,
        Err(err) => (*err
            .downcast::<&'static str>()
            .expect("string panic payload"))
        .to_string(),
    }
}

#[test]
#[cfg(debug_assertions)]
fn rank_inversion_panics_naming_both_lock_sites() {
    let a = Arc::new(RankedMutex::new("engine.0", LockRank::engine(0), ()));
    let b = Arc::new(RankedMutex::new("engine.1", LockRank::engine(1), ()));

    // A well-behaved thread holds both in ascending shard order the
    // whole time, proving the panic below is about *order*, not mere
    // coexistence of the two locks.
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let hold = Barrier::new(2);
    let msg = std::thread::scope(|s| {
        let hold = &hold;
        s.spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
            hold.wait(); // both held, correct order: no panic
        });
        hold.wait();
        panic_message_of(move || {
            let _gb = b.lock();
            let _ga = a.lock(); // shard 0 after shard 1: rank inversion
        })
    });
    assert!(msg.contains("lock-rank inversion"), "got: {msg}");
    assert!(msg.contains("`engine.0`"), "names the acquired lock: {msg}");
    assert!(msg.contains("`engine.1`"), "names the held lock: {msg}");
    // Both acquisition sites are file:line:col in this file.
    assert_eq!(
        msg.matches("deadlock.rs").count(),
        2,
        "both lock sites cited: {msg}"
    );
}

#[test]
#[cfg(debug_assertions)]
fn relocking_a_held_lock_panics() {
    let m = Arc::new(RankedMutex::new("self", LockRank::UNRANKED, ()));
    let msg = panic_message_of(move || {
        let _g = m.lock();
        let _g2 = m.lock();
    });
    assert!(msg.contains("relock of `self`"), "got: {msg}");
}

#[test]
#[cfg(debug_assertions)]
fn wait_for_cycle_panics_with_the_full_chain() {
    // Unranked locks: rank checking is out of the way, so the realized
    // AB/BA deadlock is caught by the wait-for graph instead.
    let a = Arc::new(RankedMutex::new("cycle.a", LockRank::UNRANKED, ()));
    let b = Arc::new(RankedMutex::new("cycle.b", LockRank::UNRANKED, ()));
    let barrier = Arc::new(Barrier::new(2));

    let (a2, b2, barrier2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&barrier));
    let victim = std::thread::spawn(move || {
        let _gb = b2.lock();
        barrier2.wait();
        // Blocks on `a` (held by the detector thread). When that thread
        // panics and unwinds, `a` is released and this completes.
        let _ga = a2.lock();
    });

    let msg = panic_message_of(move || {
        let _ga = a.lock();
        barrier.wait();
        // Give the victim time to be *registered* as waiting on `a`.
        std::thread::sleep(Duration::from_millis(100));
        let _gb = b.lock(); // closes the cycle: a → b → a
    });
    victim
        .join()
        .expect("victim completes once the cycle breaks");
    assert!(msg.contains("deadlock cycle detected"), "got: {msg}");
    assert!(msg.contains("`cycle.a`"), "chain names lock a: {msg}");
    assert!(msg.contains("`cycle.b`"), "chain names lock b: {msg}");
    assert!(msg.contains("deadlock.rs"), "chain cites lock sites: {msg}");
}

#[test]
fn two_phase_commit_style_ascending_acquisition_never_trips() {
    // The cross-shard 2PC discipline in miniature: every thread locks an
    // arbitrary participant subset, always in ascending shard order,
    // with the watermark taken innermost — the detector must stay quiet
    // through heavy interleaving.
    let engines: Arc<Vec<RankedMutex<u64>>> = Arc::new(
        (0..8)
            .map(|i| RankedMutex::new(leak_name(format!("tpc.engine.{i}")), LockRank::engine(i), 0))
            .collect(),
    );
    let watermark = Arc::new(RankedMutex::new("tpc.watermark", LockRank::WATERMARK, 0u64));

    let threads: Vec<_> = (0..6u64)
        .map(|tid| {
            let engines = Arc::clone(&engines);
            let watermark = Arc::clone(&watermark);
            std::thread::spawn(move || {
                for round in 0..50u64 {
                    // Participant set varies per (thread, round); order is
                    // always ascending.
                    let stride = (tid + round) % 3 + 1;
                    let mut guards = Vec::new();
                    let mut i = (tid % 3) as usize;
                    while i < engines.len() {
                        guards.push(engines[i].lock());
                        i += stride as usize;
                    }
                    for g in guards.iter_mut() {
                        **g += 1;
                    }
                    *watermark.lock() += guards.len() as u64;
                    // LIFO release, as the router does.
                    while let Some(g) = guards.pop() {
                        drop(g);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no detector panic under ascending order");
    }
    let total: u64 = *watermark.lock();
    assert!(total > 0);
}
