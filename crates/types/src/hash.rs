//! Small, dependency-free checksums used by the log and backup formats.
//!
//! Crash recovery must detect torn writes: a segment image or log record
//! that was only partially written when the system failed. We use 64-bit
//! FNV-1a — not cryptographic, but ample for distinguishing a torn or
//! stale image from a complete one, and fast enough to checksum every
//! record the log writes.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Feed bytes.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
        self
    }

    /// Feed a little-endian u64.
    #[inline]
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Feed a slice of 32-bit words.
    #[inline]
    pub fn update_words(&mut self, words: &[u32]) -> &mut Self {
        for &w in words {
            self.update(&w.to_le_bytes());
        }
        self
    }

    /// The hash value so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// One-shot FNV-1a over a word slice.
pub fn fnv1a_words(words: &[u32]) -> u64 {
    let mut h = Fnv1a::new();
    h.update_words(words);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn words_equal_bytes() {
        let words = [0x0403_0201u32, 0x0807_0605];
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(fnv1a_words(&words), fnv1a(&bytes));
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = fnv1a(b"checkpoint");
        let b = fnv1a(b"checkpoinu");
        assert_ne!(a, b);
    }

    #[test]
    fn u64_update_is_le_bytes() {
        let mut h = Fnv1a::new();
        h.update_u64(0x0102_0304_0506_0708);
        assert_eq!(h.finish(), fnv1a(&[8, 7, 6, 5, 4, 3, 2, 1]));
    }
}
