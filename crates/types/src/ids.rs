//! Strongly-typed identifiers used across the workspace.
//!
//! All of these are thin newtypes over integers. They exist so that a
//! segment number can never be confused with a record number or a log
//! sequence number — the checkpointing algorithms juggle all three and the
//! bugs that result from mixing them up are exactly the kind that fuzzy
//! checkpoints make hard to observe.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Index of a record within the database (0-based, dense).
    ///
    /// The record is the granule of the transaction interface: primitive
    /// actions are record reads and writes (paper §2.4).
    RecordId,
    u64
);

id_type!(
    /// Index of a segment within the database (0-based, dense).
    ///
    /// Segments group records for efficient transfer to the backup disks
    /// (paper §2.4) and are the granule of checkpointer locking, painting
    /// and copy-on-update.
    SegmentId,
    u32
);

id_type!(
    /// A transaction identifier, unique for the lifetime of an engine.
    TxnId,
    u64
);

id_type!(
    /// A checkpoint identifier; monotonically increasing. Checkpoint `k`
    /// writes to ping-pong backup copy `k % 2`.
    CheckpointId,
    u64
);

id_type!(
    /// A logical timestamp, as used by the copy-on-update algorithms
    /// (`τ` in the paper). Assigned from a single monotonic counter shared
    /// by transactions and checkpoints.
    Timestamp,
    u64
);

/// A log sequence number: the byte offset of a log record within the
/// (conceptually infinite) log address space.
///
/// LSNs are totally ordered and dense enough to compare "has this update's
/// log record reached stable storage" (`C_lsn` synchronization, paper §2.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The zero LSN, ordered before every real log record.
    pub const ZERO: Lsn = Lsn(0);
    /// The maximum representable LSN.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// Returns the raw byte offset.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// LSN advanced by `bytes`.
    #[inline]
    pub const fn advance(self, bytes: u64) -> Lsn {
        Lsn(self.0 + bytes)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lsn({})", self.0)
    }
}

impl From<u64> for Lsn {
    fn from(v: u64) -> Self {
        Lsn(v)
    }
}

impl SegmentId {
    /// Next segment in sweep order.
    #[inline]
    pub const fn next(self) -> SegmentId {
        SegmentId(self.0 + 1)
    }

    /// Converts to a usable array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl RecordId {
    /// Converts to a usable array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl Timestamp {
    /// The zero timestamp, ordered before every assigned timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Successor timestamp.
    #[inline]
    pub const fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl CheckpointId {
    /// Which of the two ping-pong backup copies this checkpoint writes.
    #[inline]
    pub const fn pingpong_copy(self) -> usize {
        (self.0 % 2) as usize
    }

    /// Successor checkpoint id.
    #[inline]
    pub const fn next(self) -> CheckpointId {
        CheckpointId(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_advance() {
        let a = Lsn(10);
        let b = a.advance(5);
        assert!(a < b);
        assert_eq!(b.raw(), 15);
        assert!(Lsn::ZERO < a);
        assert!(b < Lsn::MAX);
    }

    #[test]
    fn segment_next_and_index() {
        let s = SegmentId(7);
        assert_eq!(s.next(), SegmentId(8));
        assert_eq!(s.index(), 7);
    }

    #[test]
    fn pingpong_alternates() {
        assert_eq!(CheckpointId(0).pingpong_copy(), 0);
        assert_eq!(CheckpointId(1).pingpong_copy(), 1);
        assert_eq!(CheckpointId(2).pingpong_copy(), 0);
        assert_eq!(CheckpointId(1).next(), CheckpointId(2));
    }

    #[test]
    fn timestamps_monotone() {
        let t = Timestamp::ZERO;
        assert!(t < t.next());
        assert_eq!(t.next().next(), Timestamp(2));
    }

    #[test]
    fn ids_display() {
        assert_eq!(SegmentId(3).to_string(), "SegmentId(3)");
        assert_eq!(Lsn(9).to_string(), "Lsn(9)");
        assert_eq!(TxnId(1).to_string(), "TxnId(1)");
    }

    #[test]
    fn ids_from_raw() {
        assert_eq!(RecordId::from(5u64).raw(), 5);
        assert_eq!(Lsn::from(5u64).raw(), 5);
        assert_eq!(TxnId::from(5u64).raw(), 5);
    }
}
