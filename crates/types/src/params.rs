//! Model parameters, with the paper's defaults (Tables 2a–2d).
//!
//! The paper expresses every cost in *instructions* and every size in
//! 32-bit *words*. We keep both conventions: [`Word`] is the storage unit
//! everywhere in the workspace, and all CPU costs are instruction counts.

use serde::{Deserialize, Serialize};

/// The unit of storage: the paper assumes 4-byte words (§2.3 computes
/// bandwidth at "four bytes per word").
pub type Word = u32;

/// Bytes per [`Word`].
pub const WORD_BYTES: usize = 4;

/// Basic operation costs — Table 2a, plus the data-movement rule
/// (1 instruction per word moved, §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// `C_lock`: cost of each lock *or* unlock operation, in instructions.
    pub c_lock: u64,
    /// `C_alloc`: cost of dynamically allocating *or* deallocating a block
    /// of memory, in instructions.
    pub c_alloc: u64,
    /// `C_io`: processor cost of initiating one disk I/O (DMA assumed, so
    /// independent of transfer size), in instructions.
    pub c_io: u64,
    /// `C_lsn`: cost of checking or maintaining a log sequence number, in
    /// instructions.
    pub c_lsn: u64,
    /// Instructions per word of data movement within primary memory.
    /// The paper fixes this at 1 (§2.1); kept as a parameter so ablation
    /// benches can vary it.
    pub c_move_per_word: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            c_lock: 20,
            c_alloc: 100,
            c_io: 1000,
            c_lsn: 20,
            c_move_per_word: 1,
        }
    }
}

/// Disk model parameters — Table 2b.
///
/// A disk transfers `d` words in `T_seek + T_trans · d` seconds, and total
/// transfer bandwidth scales linearly with the number of disks (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// `T_seek`: fixed per-I/O delay, in seconds.
    pub t_seek: f64,
    /// `T_trans`: transfer time, in seconds per word.
    pub t_trans: f64,
    /// `N_bdisks`: number of backup disks.
    pub n_bdisks: u32,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            t_seek: 0.03,
            t_trans: 3e-6,
            n_bdisks: 20,
        }
    }
}

impl DiskParams {
    /// Service time for a single I/O of `words` words on one disk.
    #[inline]
    pub fn service_time(&self, words: u64) -> f64 {
        self.t_seek + self.t_trans * words as f64
    }

    /// Time to perform `n` I/Os of `words` words each, spread across the
    /// whole array (the paper's linear-scaling assumption, §2.3).
    #[inline]
    pub fn array_time(&self, n: u64, words: u64) -> f64 {
        n as f64 * self.service_time(words) / self.n_bdisks as f64
    }

    /// Effective array bandwidth in words/second when transferring in
    /// units of `words`-word I/Os.
    #[inline]
    pub fn array_bandwidth(&self, words: u64) -> f64 {
        self.n_bdisks as f64 * words as f64 / self.service_time(words)
    }
}

/// Database shape parameters — Table 2c.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbParams {
    /// `S_db`: database size in words.
    pub s_db: u64,
    /// `S_rec`: record size in words.
    pub s_rec: u64,
    /// `S_seg`: segment size in words — the unit of transfer to the backup
    /// disks; must be a multiple of `s_rec`.
    pub s_seg: u64,
}

impl Default for DbParams {
    fn default() -> Self {
        DbParams {
            s_db: 256 << 20, // 256 Mwords = 1 GB
            s_rec: 32,
            s_seg: 8192,
        }
    }
}

impl DbParams {
    /// Number of segments in the database.
    #[inline]
    pub fn n_segments(&self) -> u64 {
        self.s_db / self.s_seg
    }

    /// Number of records in the database.
    #[inline]
    pub fn n_records(&self) -> u64 {
        self.s_db / self.s_rec
    }

    /// Records per segment.
    #[inline]
    pub fn records_per_segment(&self) -> u64 {
        self.s_seg / self.s_rec
    }

    /// Checks the divisibility constraints the paper assumes.
    pub fn validate(&self) -> Result<(), String> {
        if self.s_rec == 0 || self.s_seg == 0 || self.s_db == 0 {
            return Err("database parameters must be non-zero".into());
        }
        if self.s_seg % self.s_rec != 0 {
            return Err(format!(
                "segment size {} is not a multiple of record size {}",
                self.s_seg, self.s_rec
            ));
        }
        if self.s_db % self.s_seg != 0 {
            return Err(format!(
                "database size {} is not a multiple of segment size {}",
                self.s_db, self.s_seg
            ));
        }
        Ok(())
    }
}

/// Transaction load parameters — Table 2d.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnParams {
    /// `λ`: transaction arrival rate, transactions/second.
    pub lambda: f64,
    /// `N_ru`: number of distinct records updated per transaction.
    pub n_ru: u32,
    /// `C_trans`: processor cost of one transaction exclusive of recovery
    /// costs, in instructions.
    pub c_trans: u64,
}

impl Default for TxnParams {
    fn default() -> Self {
        TxnParams {
            lambda: 1000.0,
            n_ru: 5,
            c_trans: 25_000,
        }
    }
}

/// Whether the in-memory log tail is volatile (flushed to log disks, WAL
/// gating via LSNs required) or stable (battery-backed RAM, §4's "stable
/// log tail" scenario that enables `FASTFUZZY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LogMode {
    /// Volatile tail: appended records become durable only when the tail
    /// is flushed to the log disks. This is the paper's base assumption.
    #[default]
    VolatileTail,
    /// Stable tail: records are durable the moment they are appended
    /// (paper §4, Figure 4e).
    StableTail,
}

/// Full vs partial checkpoints (paper §3): a *full* checkpoint writes
/// every segment; a *partial* checkpoint writes only segments dirtied
/// since they were last written to the target ping-pong copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CkptMode {
    /// Back up only dirty segments (the paper's default for evaluation).
    #[default]
    Partial,
    /// Back up every segment.
    Full,
}

/// The checkpointing algorithms compared in the paper (§3, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Fuzzy checkpoint that copies each segment to an I/O buffer and
    /// flushes the copy once the log has caught up (LSN-gated) — §3.1.
    FuzzyCopy,
    /// Two-color (Pu) transaction-consistent checkpoint that holds the
    /// segment lock across the disk flush — §3.2.1.
    TwoColorFlush,
    /// Two-color TC checkpoint that copies the segment under lock and
    /// flushes the copy unlocked — §3.2.1.
    TwoColorCopy,
    /// Copy-on-update TC checkpoint that flushes un-snapshotted segments
    /// in place, holding the lock across the I/O — §3.2.2.
    CouFlush,
    /// Copy-on-update TC checkpoint that copies un-snapshotted segments
    /// under lock and flushes unlocked — §3.2.2.
    CouCopy,
    /// Straightforward fuzzy checkpoint, flushing segments in place with
    /// no locks and no LSN gating; sound only with a stable log tail — §4.
    FastFuzzy,
    /// Action-consistent copy-on-update (beyond the paper's five: §3.2.2's
    /// footnote notes that the technique of \[DeWi84a\] produces AC, not TC,
    /// backups unless the system is transaction-quiescent at begin).
    /// `COUAC` skips the quiesce: transactions keep running through the
    /// checkpoint begin, the begin marker carries the active list (as a
    /// fuzzy checkpoint's does), and live-segment flushes need the LSN
    /// write-ahead gate that TC-COU avoids.
    CouAc,
}

impl Algorithm {
    /// The five algorithms of the base comparison (Figure 4a).
    pub const BASE_FIVE: [Algorithm; 5] = [
        Algorithm::FuzzyCopy,
        Algorithm::TwoColorFlush,
        Algorithm::TwoColorCopy,
        Algorithm::CouFlush,
        Algorithm::CouCopy,
    ];

    /// All six of the paper's algorithms (Figure 4e adds `FASTFUZZY`).
    pub const ALL: [Algorithm; 6] = [
        Algorithm::FuzzyCopy,
        Algorithm::TwoColorFlush,
        Algorithm::TwoColorCopy,
        Algorithm::CouFlush,
        Algorithm::CouCopy,
        Algorithm::FastFuzzy,
    ];

    /// Every implemented algorithm, including the beyond-paper `COUAC`.
    pub const ALL_EXTENDED: [Algorithm; 7] = [
        Algorithm::FuzzyCopy,
        Algorithm::TwoColorFlush,
        Algorithm::TwoColorCopy,
        Algorithm::CouFlush,
        Algorithm::CouCopy,
        Algorithm::FastFuzzy,
        Algorithm::CouAc,
    ];

    /// The paper's name for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::FuzzyCopy => "FUZZYCOPY",
            Algorithm::TwoColorFlush => "2CFLUSH",
            Algorithm::TwoColorCopy => "2CCOPY",
            Algorithm::CouFlush => "COUFLUSH",
            Algorithm::CouCopy => "COUCOPY",
            Algorithm::FastFuzzy => "FASTFUZZY",
            Algorithm::CouAc => "COUAC",
        }
    }

    /// A lowercase, identifier-safe name for the algorithm — legal as a
    /// JSON object key and a Prometheus label value (no leading digit, no
    /// punctuation). The telemetry layer and bench trajectory use this;
    /// human-facing output uses [`Algorithm::name`].
    pub fn metric_name(self) -> &'static str {
        match self {
            Algorithm::FuzzyCopy => "fuzzycopy",
            Algorithm::TwoColorFlush => "twocolorflush",
            Algorithm::TwoColorCopy => "twocolorcopy",
            Algorithm::CouFlush => "couflush",
            Algorithm::CouCopy => "coucopy",
            Algorithm::FastFuzzy => "fastfuzzy",
            Algorithm::CouAc => "couac",
        }
    }

    /// Does the algorithm copy segments to a buffer before flushing?
    pub fn copies_segments(self) -> bool {
        matches!(
            self,
            Algorithm::FuzzyCopy | Algorithm::TwoColorCopy | Algorithm::CouCopy | Algorithm::CouAc
        )
    }

    /// Does the algorithm use the two-color (paint-bit) protocol, which
    /// can abort transactions that straddle colors?
    pub fn is_two_color(self) -> bool {
        matches!(self, Algorithm::TwoColorFlush | Algorithm::TwoColorCopy)
    }

    /// Does the algorithm use copy-on-update snapshots (transactions save
    /// pre-images of not-yet-swept segments)?
    pub fn is_cou(self) -> bool {
        matches!(
            self,
            Algorithm::CouFlush | Algorithm::CouCopy | Algorithm::CouAc
        )
    }

    /// Must transaction processing be quiesced when a checkpoint begins?
    /// (What turns copy-on-update from action-consistent into
    /// transaction-consistent, §3.2.2.)
    pub fn requires_quiesce(self) -> bool {
        matches!(self, Algorithm::CouFlush | Algorithm::CouCopy)
    }

    /// Does the algorithm produce a transaction-consistent backup?
    pub fn is_transaction_consistent(self) -> bool {
        self.is_two_color() || self.requires_quiesce()
    }

    /// Does the algorithm need LSN gating to respect the write-ahead-log
    /// protocol? (COU does not: every update in its snapshot predates the
    /// begin-checkpoint log force. With a stable tail nobody does.)
    pub fn needs_lsn_gating(self, log_mode: LogMode) -> bool {
        if log_mode == LogMode::StableTail {
            return false;
        }
        match self {
            Algorithm::FuzzyCopy | Algorithm::TwoColorFlush | Algorithm::TwoColorCopy => true,
            // COUAC does not quiesce, so transactions active at begin can
            // install updates (into not-yet-swept segments) whose log
            // records postdate the begin force: live flushes must gate.
            Algorithm::CouAc => true,
            Algorithm::CouFlush | Algorithm::CouCopy => false,
            // FASTFUZZY is only sound with a stable tail; the engine
            // refuses to run it otherwise, so gating never applies.
            Algorithm::FastFuzzy => false,
        }
    }

    /// Is the algorithm sound under the given log mode? `FASTFUZZY`
    /// requires a stable log tail (paper §3.1/§4); everything else works
    /// under both modes.
    pub fn sound_under(self, log_mode: LogMode) -> bool {
        self != Algorithm::FastFuzzy || log_mode == LogMode::StableTail
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "FUZZYCOPY" | "FUZZY_COPY" => Ok(Algorithm::FuzzyCopy),
            "2CFLUSH" | "TWOCOLORFLUSH" | "2C_FLUSH" => Ok(Algorithm::TwoColorFlush),
            "2CCOPY" | "TWOCOLORCOPY" | "2C_COPY" => Ok(Algorithm::TwoColorCopy),
            "COUFLUSH" | "COU_FLUSH" => Ok(Algorithm::CouFlush),
            "COUCOPY" | "COU_COPY" => Ok(Algorithm::CouCopy),
            "FASTFUZZY" | "FAST_FUZZY" => Ok(Algorithm::FastFuzzy),
            "COUAC" | "COU_AC" => Ok(Algorithm::CouAc),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// The complete parameter set: Tables 2a–2d plus the log-tail mode and
/// checkpoint mode knobs from §3 and §4.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Params {
    /// Basic operation costs (Table 2a).
    pub cost: CostParams,
    /// Disk model (Table 2b).
    pub disk: DiskParams,
    /// Database shape (Table 2c).
    pub db: DbParams,
    /// Transaction load (Table 2d).
    pub txn: TxnParams,
    /// Volatile vs stable log tail.
    pub log_mode: LogMode,
    /// Full vs partial checkpoints.
    pub ckpt_mode: CkptMode,
}

impl Params {
    /// The paper's default configuration.
    pub fn paper_defaults() -> Params {
        Params::default()
    }

    /// A small configuration suitable for unit tests and the simulator:
    /// same proportions, scaled down ~4096× (64 Kwords, 32 segments).
    pub fn small() -> Params {
        Params {
            db: DbParams {
                s_db: 64 << 10,
                s_rec: 32,
                s_seg: 2048,
            },
            ..Params::default()
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.db.validate()?;
        if self.disk.n_bdisks == 0 {
            return Err("need at least one backup disk".into());
        }
        if self.txn.n_ru as u64 > self.db.n_records() {
            return Err("transaction updates more records than exist".into());
        }
        if self.txn.lambda.is_nan() || self.txn.lambda < 0.0 {
            return Err("arrival rate must be non-negative".into());
        }
        Ok(())
    }

    /// Average rate at which a *given* segment is updated, in
    /// updates/second (`μ` in DESIGN.md §5): uniform updates imply
    /// `λ · N_ru / N_seg`.
    pub fn segment_update_rate(&self) -> f64 {
        self.txn.lambda * self.txn.n_ru as f64 / self.db.n_segments() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tables() {
        let p = Params::paper_defaults();
        // Table 2a
        assert_eq!(p.cost.c_lock, 20);
        assert_eq!(p.cost.c_alloc, 100);
        assert_eq!(p.cost.c_io, 1000);
        assert_eq!(p.cost.c_lsn, 20);
        assert_eq!(p.cost.c_move_per_word, 1);
        // Table 2b
        assert_eq!(p.disk.t_seek, 0.03);
        assert_eq!(p.disk.t_trans, 3e-6);
        assert_eq!(p.disk.n_bdisks, 20);
        // Table 2c
        assert_eq!(p.db.s_db, 256 * 1024 * 1024);
        assert_eq!(p.db.s_rec, 32);
        assert_eq!(p.db.s_seg, 8192);
        // Table 2d
        assert_eq!(p.txn.lambda, 1000.0);
        assert_eq!(p.txn.n_ru, 5);
        assert_eq!(p.txn.c_trans, 25_000);
    }

    #[test]
    fn derived_geometry() {
        let p = Params::paper_defaults();
        assert_eq!(p.db.n_segments(), 32_768);
        assert_eq!(p.db.n_records(), 8 * 1024 * 1024);
        assert_eq!(p.db.records_per_segment(), 256);
        p.validate().unwrap();
    }

    #[test]
    fn full_flush_takes_about_90_seconds_at_defaults() {
        // Calibration anchor from DESIGN.md §5: a full-database flush at
        // the paper's defaults takes ≈ 90 s.
        let p = Params::paper_defaults();
        let t = p.disk.array_time(p.db.n_segments(), p.db.s_seg);
        assert!((85.0..95.0).contains(&t), "got {t}");
    }

    #[test]
    fn bandwidth_estimate_matches_paper_prose() {
        // §2.3: "imagine that an entire 1 gigabyte database is to be
        // checkpointed every 100 seconds (fast), requiring ten megabytes
        // per second". Our array bandwidth at defaults should be in that
        // ballpark (words/s × 4 bytes ≈ 12 MB/s).
        let p = Params::paper_defaults();
        let bw_bytes = p.disk.array_bandwidth(p.db.s_seg) * WORD_BYTES as f64;
        assert!(bw_bytes > 10e6 && bw_bytes < 15e6, "got {bw_bytes}");
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let mut p = Params::paper_defaults();
        p.db.s_seg = 100; // not a multiple of s_rec=32
        assert!(p.validate().is_err());

        let mut p = Params::paper_defaults();
        p.db.s_db = 12_345; // not a multiple of s_seg
        assert!(p.validate().is_err());

        let mut p = Params::paper_defaults();
        p.disk.n_bdisks = 0;
        assert!(p.validate().is_err());

        let mut p = Params::small();
        p.txn.n_ru = u32::MAX;
        assert!(p.validate().is_err());
    }

    #[test]
    fn algorithm_classification() {
        use Algorithm::*;
        assert!(FuzzyCopy.copies_segments());
        assert!(TwoColorCopy.copies_segments());
        assert!(CouCopy.copies_segments());
        assert!(!TwoColorFlush.copies_segments());
        assert!(!CouFlush.copies_segments());
        assert!(!FastFuzzy.copies_segments());

        assert!(TwoColorFlush.is_two_color() && TwoColorCopy.is_two_color());
        assert!(CouFlush.is_cou() && CouCopy.is_cou() && CouAc.is_cou());
        assert!(CouFlush.requires_quiesce() && CouCopy.requires_quiesce());
        assert!(!CouAc.requires_quiesce(), "AC-COU runs through the begin");
        assert!(!FuzzyCopy.is_transaction_consistent());
        assert!(CouCopy.is_transaction_consistent());
        assert!(TwoColorFlush.is_transaction_consistent());
        assert!(!CouAc.is_transaction_consistent(), "AC, not TC");
    }

    #[test]
    fn lsn_gating_rules() {
        use Algorithm::*;
        for a in Algorithm::ALL {
            assert!(
                !a.needs_lsn_gating(LogMode::StableTail),
                "{a} should not gate with stable tail"
            );
        }
        assert!(FuzzyCopy.needs_lsn_gating(LogMode::VolatileTail));
        assert!(TwoColorFlush.needs_lsn_gating(LogMode::VolatileTail));
        assert!(TwoColorCopy.needs_lsn_gating(LogMode::VolatileTail));
        assert!(!CouFlush.needs_lsn_gating(LogMode::VolatileTail));
        assert!(!CouCopy.needs_lsn_gating(LogMode::VolatileTail));
        assert!(CouAc.needs_lsn_gating(LogMode::VolatileTail));
    }

    #[test]
    fn fastfuzzy_requires_stable_tail() {
        assert!(!Algorithm::FastFuzzy.sound_under(LogMode::VolatileTail));
        assert!(Algorithm::FastFuzzy.sound_under(LogMode::StableTail));
        assert!(Algorithm::FuzzyCopy.sound_under(LogMode::VolatileTail));
    }

    #[test]
    fn algorithm_parse_roundtrip() {
        for a in Algorithm::ALL_EXTENDED {
            let parsed: Algorithm = a.name().parse().unwrap();
            assert_eq!(parsed, a);
        }
        assert!("nonsense".parse::<Algorithm>().is_err());
    }

    #[test]
    fn segment_update_rate_at_defaults() {
        let p = Params::paper_defaults();
        let mu = p.segment_update_rate();
        assert!((mu - 5000.0 / 32768.0).abs() < 1e-12);
    }
}
