//! Instruction-cost accounting.
//!
//! The paper's central performance metric is *processor overhead in
//! instructions per transaction* (§1, §4): I/O latency is off the critical
//! path of a memory-resident transaction, but every lock, LSN check, buffer
//! allocation, I/O initiation and word of data movement consumes CPU that
//! transactions also need.
//!
//! Every component of the workspace charges its work through a
//! [`CostMeter`]. The engine keeps two: a *synchronous* meter charged by
//! work done on behalf of a particular transaction, and an *asynchronous*
//! meter charged by the checkpointer. Dividing the asynchronous total by
//! the number of transactions in the checkpoint interval and adding the
//! synchronous per-transaction cost reproduces the paper's combination
//! rule (§4 ¶2).

use crate::params::CostParams;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The categories of chargeable work, mirroring Table 2a plus data
/// movement and the transaction body itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostCategory {
    /// Lock/unlock operations (`C_lock`).
    Lock,
    /// Buffer allocation/deallocation (`C_alloc`).
    Alloc,
    /// Disk I/O initiation (`C_io`).
    Io,
    /// LSN maintenance or checking (`C_lsn`).
    Lsn,
    /// Data movement within primary memory (1 instr/word).
    Move,
    /// Transaction body execution (`C_trans`), charged on (re)runs.
    TxnBody,
    /// Dirty-bit / paint-bit scanning and other per-segment bookkeeping.
    Scan,
}

impl CostCategory {
    /// All categories, for iteration in reports.
    pub const ALL: [CostCategory; 7] = [
        CostCategory::Lock,
        CostCategory::Alloc,
        CostCategory::Io,
        CostCategory::Lsn,
        CostCategory::Move,
        CostCategory::TxnBody,
        CostCategory::Scan,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CostCategory::Lock => "lock",
            CostCategory::Alloc => "alloc",
            CostCategory::Io => "io",
            CostCategory::Lsn => "lsn",
            CostCategory::Move => "move",
            CostCategory::TxnBody => "txn-body",
            CostCategory::Scan => "scan",
        }
    }

    fn index(self) -> usize {
        match self {
            CostCategory::Lock => 0,
            CostCategory::Alloc => 1,
            CostCategory::Io => 2,
            CostCategory::Lsn => 3,
            CostCategory::Move => 4,
            CostCategory::TxnBody => 5,
            CostCategory::Scan => 6,
        }
    }
}

/// An immutable snapshot of charged instructions, by category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    counts: [u64; 7],
}

impl CostBreakdown {
    /// Instructions charged to `cat`.
    #[inline]
    pub fn get(&self, cat: CostCategory) -> u64 {
        self.counts[cat.index()]
    }

    /// Total instructions across all categories.
    #[inline]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Breakdown with `other` added in.
    pub fn plus(&self, other: &CostBreakdown) -> CostBreakdown {
        let mut out = *self;
        for i in 0..out.counts.len() {
            out.counts[i] += other.counts[i];
        }
        out
    }

    /// Breakdown minus `earlier` (componentwise; `earlier` must be a
    /// snapshot taken before `self` on the same meter).
    pub fn minus(&self, earlier: &CostBreakdown) -> CostBreakdown {
        let mut out = *self;
        for i in 0..out.counts.len() {
            out.counts[i] = out.counts[i]
                .checked_sub(earlier.counts[i])
                .expect("CostBreakdown::minus: `earlier` is not an earlier snapshot");
        }
        out
    }

    /// Breakdown scaled by `1/n` (f64), for per-transaction averaging.
    pub fn per(&self, n: f64) -> [(CostCategory, f64); 7] {
        let mut out = [(CostCategory::Lock, 0.0); 7];
        for (i, cat) in CostCategory::ALL.iter().enumerate() {
            out[i] = (*cat, self.counts[cat.index()] as f64 / n);
        }
        out
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total={} [", self.total())?;
        let mut first = true;
        for cat in CostCategory::ALL {
            let v = self.get(cat);
            if v > 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={}", cat.label(), v)?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

/// A thread-safe instruction counter that knows the Table 2a unit costs.
///
/// Cloning a [`SharedCostMeter`] shares the underlying counters, so the
/// engine can hand the same meter to the storage, log and checkpoint
/// layers. Charging is lock-free (relaxed atomics): the meter is a
/// statistic, not a synchronization point.
#[derive(Debug)]
pub struct CostMeter {
    costs: CostParams,
    counts: [AtomicU64; 7],
    ops: [AtomicU64; 7],
}

/// A cheaply-cloneable handle to a shared [`CostMeter`].
pub type SharedCostMeter = Arc<CostMeter>;

impl CostMeter {
    /// A meter charging at the given unit costs.
    pub fn new(costs: CostParams) -> CostMeter {
        CostMeter {
            costs,
            counts: Default::default(),
            ops: Default::default(),
        }
    }

    /// A shared meter charging at the given unit costs.
    pub fn shared(costs: CostParams) -> SharedCostMeter {
        Arc::new(CostMeter::new(costs))
    }

    /// The unit costs this meter charges at.
    pub fn costs(&self) -> &CostParams {
        &self.costs
    }

    #[inline]
    fn charge(&self, cat: CostCategory, instructions: u64) {
        self.counts[cat.index()].fetch_add(instructions, Ordering::Relaxed);
        self.ops[cat.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Charge one lock or unlock operation (`C_lock`).
    #[inline]
    pub fn lock_op(&self) {
        self.charge(CostCategory::Lock, self.costs.c_lock);
    }

    /// Charge one buffer allocation or deallocation (`C_alloc`).
    #[inline]
    pub fn alloc_op(&self) {
        self.charge(CostCategory::Alloc, self.costs.c_alloc);
    }

    /// Charge one disk I/O initiation (`C_io`).
    #[inline]
    pub fn io_op(&self) {
        self.charge(CostCategory::Io, self.costs.c_io);
    }

    /// Charge one LSN check or update (`C_lsn`).
    #[inline]
    pub fn lsn_op(&self) {
        self.charge(CostCategory::Lsn, self.costs.c_lsn);
    }

    /// Charge movement of `words` words within primary memory.
    #[inline]
    pub fn move_words(&self, words: u64) {
        self.charge(CostCategory::Move, self.costs.c_move_per_word * words);
    }

    /// Charge one transaction body execution (`C_trans`); used when a
    /// transaction is (re)run.
    #[inline]
    pub fn txn_body(&self, c_trans: u64) {
        self.charge(CostCategory::TxnBody, c_trans);
    }

    /// Charge `instructions` of per-segment scanning/bookkeeping.
    #[inline]
    pub fn scan(&self, instructions: u64) {
        self.charge(CostCategory::Scan, instructions);
    }

    /// Snapshot the charged totals.
    pub fn snapshot(&self) -> CostBreakdown {
        let mut counts = [0u64; 7];
        for (i, c) in self.counts.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        CostBreakdown { counts }
    }

    /// Number of operations charged in `cat` (e.g. number of I/Os, not
    /// instructions).
    pub fn op_count(&self, cat: CostCategory) -> u64 {
        self.ops[cat.index()].load(Ordering::Relaxed)
    }

    /// Total instructions charged so far.
    pub fn total(&self) -> u64 {
        self.snapshot().total()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.ops {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for CostMeter {
    fn default() -> Self {
        CostMeter::new(CostParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_table_2a_unit_costs() {
        let m = CostMeter::default();
        m.lock_op();
        m.alloc_op();
        m.io_op();
        m.lsn_op();
        m.move_words(8192);
        let s = m.snapshot();
        assert_eq!(s.get(CostCategory::Lock), 20);
        assert_eq!(s.get(CostCategory::Alloc), 100);
        assert_eq!(s.get(CostCategory::Io), 1000);
        assert_eq!(s.get(CostCategory::Lsn), 20);
        assert_eq!(s.get(CostCategory::Move), 8192);
        assert_eq!(s.total(), 20 + 100 + 1000 + 20 + 8192);
    }

    #[test]
    fn op_counts_track_operations_not_instructions() {
        let m = CostMeter::default();
        m.io_op();
        m.io_op();
        m.move_words(100);
        assert_eq!(m.op_count(CostCategory::Io), 2);
        assert_eq!(m.op_count(CostCategory::Move), 1);
        assert_eq!(m.op_count(CostCategory::Lock), 0);
    }

    #[test]
    fn snapshot_minus_gives_interval_cost() {
        let m = CostMeter::default();
        m.io_op();
        let before = m.snapshot();
        m.io_op();
        m.lock_op();
        let after = m.snapshot();
        let delta = after.minus(&before);
        assert_eq!(delta.get(CostCategory::Io), 1000);
        assert_eq!(delta.get(CostCategory::Lock), 20);
        assert_eq!(delta.total(), 1020);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn minus_panics_on_misuse() {
        let m = CostMeter::default();
        let before = m.snapshot();
        m.io_op();
        let after = m.snapshot();
        let _ = before.minus(&after);
    }

    #[test]
    fn plus_accumulates() {
        let m = CostMeter::default();
        m.io_op();
        let a = m.snapshot();
        let sum = a.plus(&a);
        assert_eq!(sum.get(CostCategory::Io), 2000);
    }

    #[test]
    fn shared_meter_is_really_shared() {
        let m = CostMeter::shared(CostParams::default());
        let m2 = Arc::clone(&m);
        m.io_op();
        m2.lock_op();
        assert_eq!(m.total(), 1020);
        assert_eq!(m2.total(), 1020);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = CostMeter::default();
        m.io_op();
        m.reset();
        assert_eq!(m.total(), 0);
        assert_eq!(m.op_count(CostCategory::Io), 0);
    }

    #[test]
    fn txn_body_uses_explicit_cost() {
        let m = CostMeter::default();
        m.txn_body(25_000);
        assert_eq!(m.snapshot().get(CostCategory::TxnBody), 25_000);
    }

    #[test]
    fn display_omits_zero_categories() {
        let m = CostMeter::default();
        m.io_op();
        let s = m.snapshot().to_string();
        assert!(s.contains("io=1000"), "{s}");
        assert!(!s.contains("lock"), "{s}");
    }

    #[test]
    fn per_transaction_scaling() {
        let m = CostMeter::default();
        m.io_op();
        m.io_op();
        let per = m.snapshot().per(4.0);
        let io = per.iter().find(|(c, _)| *c == CostCategory::Io).unwrap().1;
        assert_eq!(io, 500.0);
    }
}
