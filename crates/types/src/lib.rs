//! Common types for the reproduction of Salem & Garcia-Molina,
//! *Checkpointing Memory-Resident Databases* (ICDE 1989).
//!
//! This crate holds everything the rest of the workspace shares:
//!
//! * strongly-typed identifiers ([`RecordId`], [`SegmentId`], [`Lsn`],
//!   [`TxnId`], [`Timestamp`], [`CheckpointId`]),
//! * the paper's model parameters with the defaults of Tables 2a–2d
//!   ([`Params`] and its sub-structs),
//! * the instruction-cost accounting primitives ([`CostMeter`],
//!   [`CostBreakdown`]) — the paper's performance metric is CPU
//!   *instructions*, charged per basic operation, and every crate in the
//!   workspace charges its work through these meters,
//! * the checkpoint-algorithm enumeration ([`Algorithm`]) and shared
//!   error type ([`MmdbError`]).

#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod hash;
pub mod ids;
pub mod lz;
pub mod params;

pub use cost::{CostBreakdown, CostCategory, CostMeter, SharedCostMeter};
pub use error::{MmdbError, Result};
pub use ids::{CheckpointId, Lsn, RecordId, SegmentId, Timestamp, TxnId};
pub use params::{
    Algorithm, CkptMode, CostParams, DbParams, DiskParams, LogMode, Params, TxnParams, Word,
    WORD_BYTES,
};
