//! A dependency-free LZ-style block codec.
//!
//! Cold log chunks and backup segment images are bulk, sequential, and
//! full of repetition (zero-filled filler frames, records sharing a fill
//! pattern), so even a simple byte-oriented LZ with a hash-chain matcher
//! reclaims most of the easy redundancy. The codec is deliberately small
//! and self-contained — the workspace vendors no compression crates — and
//! favors decode speed and implementation transparency over ratio.
//!
//! ## Token stream
//!
//! The compressed stream is a sequence of tokens:
//!
//! ```text
//! literal run:  0x00..=0x7F  -> (token + 1) literal bytes follow (1..=128)
//! match:        0x80..=0xFF  -> length = (token & 0x7F) + MIN_MATCH,
//!                               then u16 LE distance (1..=65535)
//! ```
//!
//! Matches copy `length` bytes from `distance` bytes back in the output —
//! overlapping copies are legal (distance 1 = run-length encoding).
//!
//! ## Framing
//!
//! [`encode_block`] / [`decode_block`] wrap the raw token stream in a
//! self-describing frame carrying a codec id, both lengths, and an FNV-1a
//! checksum of the *uncompressed* payload, so mixed compressed and
//! uncompressed data recover cleanly and corruption is detected before
//! the bytes are trusted. When compression does not pay, the frame stores
//! the payload verbatim under [`CODEC_RAW`].

use crate::error::{MmdbError, Result};
use crate::hash::Fnv1a;

/// Codec id: payload stored verbatim.
pub const CODEC_RAW: u8 = 0;
/// Codec id: payload compressed with [`compress`].
pub const CODEC_LZ: u8 = 1;

/// Frame header: codec (1) + uncompressed len (4) + stored len (4) +
/// checksum of the uncompressed payload (8).
pub const BLOCK_HEADER: usize = 1 + 4 + 4 + 8;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 0x7F + MIN_MATCH;
const MAX_DISTANCE: usize = 65_535;
const HASH_BITS: u32 = 15;
const CHAIN_TRIES: usize = 16;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into the raw token stream. The output has no
/// framing; pair with [`decompress`] (which needs the uncompressed
/// length) or use [`encode_block`] for a self-describing frame.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];
    let mut lit_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut at = from;
        while at < to {
            let run = (to - at).min(128);
            out.push((run - 1) as u8);
            out.extend_from_slice(&input[at..at + run]);
            at += run;
        }
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut tries = CHAIN_TRIES;
        while cand != usize::MAX && tries > 0 {
            let dist = pos - cand;
            if dist > MAX_DISTANCE {
                break;
            }
            let limit = (input.len() - pos).min(MAX_MATCH);
            let mut len = 0usize;
            while len < limit && input[cand + len] == input[pos + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = dist;
                if len == MAX_MATCH {
                    break;
                }
            }
            cand = prev[cand];
            tries -= 1;
        }
        if best_len >= MIN_MATCH {
            flush_literals(&mut out, lit_start, pos);
            out.push(0x80 | (best_len - MIN_MATCH) as u8);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            // index every position inside the match so later matches can
            // start mid-copy
            let end = pos + best_len;
            while pos < end && pos + MIN_MATCH <= input.len() {
                let h = hash4(&input[pos..]);
                prev[pos] = head[h];
                head[h] = pos;
                pos += 1;
            }
            pos = end;
            lit_start = pos;
        } else {
            prev[pos] = head[h];
            head[h] = pos;
            pos += 1;
        }
    }
    flush_literals(&mut out, lit_start, input.len());
    out
}

/// Decompresses a raw token stream produced by [`compress`] into exactly
/// `out_len` bytes. Fails (without panicking) on malformed streams.
pub fn decompress(input: &[u8], out_len: usize) -> Result<Vec<u8>> {
    let corrupt = |msg: &str| MmdbError::Corrupt(format!("lz block: {msg}"));
    let mut out = Vec::with_capacity(out_len);
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        if token < 0x80 {
            let run = token as usize + 1;
            if pos + run > input.len() {
                return Err(corrupt("literal run past end of stream"));
            }
            out.extend_from_slice(&input[pos..pos + run]);
            pos += run;
        } else {
            let len = (token & 0x7F) as usize + MIN_MATCH;
            if pos + 2 > input.len() {
                return Err(corrupt("match token without distance"));
            }
            let dist = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
            pos += 2;
            if dist == 0 || dist > out.len() {
                return Err(corrupt("match distance outside window"));
            }
            let from = out.len() - dist;
            for i in 0..len {
                let b = out[from + i];
                out.push(b);
            }
        }
        if out.len() > out_len {
            return Err(corrupt("output longer than declared length"));
        }
    }
    if out.len() != out_len {
        return Err(corrupt("output shorter than declared length"));
    }
    Ok(out)
}

/// Encodes `payload` as a self-describing block: compressed when that is
/// smaller, stored verbatim otherwise. The frame carries the codec id,
/// both lengths, and an FNV-1a checksum of the uncompressed payload.
pub fn encode_block(payload: &[u8]) -> Vec<u8> {
    let mut h = Fnv1a::new();
    h.update(payload);
    let sum = h.finish();
    let comp = compress(payload);
    let (codec, stored) = if comp.len() < payload.len() {
        (CODEC_LZ, comp.as_slice())
    } else {
        (CODEC_RAW, payload)
    };
    let mut out = Vec::with_capacity(BLOCK_HEADER + stored.len());
    out.push(codec);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&(stored.len() as u32).to_le_bytes());
    out.extend_from_slice(&sum.to_le_bytes());
    out.extend_from_slice(stored);
    out
}

/// Decodes a block produced by [`encode_block`], verifying the checksum.
/// Returns the uncompressed payload.
pub fn decode_block(bytes: &[u8]) -> Result<Vec<u8>> {
    let corrupt = |msg: &str| MmdbError::Corrupt(format!("lz block: {msg}"));
    if bytes.len() < BLOCK_HEADER {
        return Err(corrupt("truncated block header"));
    }
    let codec = bytes[0];
    let raw_len = u32::from_le_bytes(bytes[1..5].try_into().expect("4-byte slice")) as usize;
    let stored_len = u32::from_le_bytes(bytes[5..9].try_into().expect("4-byte slice")) as usize;
    let sum = u64::from_le_bytes(bytes[9..17].try_into().expect("8-byte slice"));
    if bytes.len() < BLOCK_HEADER + stored_len {
        return Err(corrupt("truncated block payload"));
    }
    let stored = &bytes[BLOCK_HEADER..BLOCK_HEADER + stored_len];
    let payload = match codec {
        CODEC_RAW => {
            if stored_len != raw_len {
                return Err(corrupt("raw block length mismatch"));
            }
            stored.to_vec()
        }
        CODEC_LZ => decompress(stored, raw_len)?,
        c => return Err(corrupt(&format!("unknown codec id {c}"))),
    };
    let mut h = Fnv1a::new();
    h.update(&payload);
    if h.finish() != sum {
        return Err(corrupt("payload checksum mismatch"));
    }
    Ok(payload)
}

/// Total on-disk length of the block starting at `bytes` (header +
/// stored payload), without decoding it.
pub fn block_len(bytes: &[u8]) -> Result<usize> {
    if bytes.len() < BLOCK_HEADER {
        return Err(MmdbError::Corrupt("lz block: truncated header".into()));
    }
    let stored_len = u32::from_le_bytes(bytes[5..9].try_into().expect("4-byte slice")) as usize;
    Ok(BLOCK_HEADER + stored_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let comp = compress(data);
        let back = decompress(&comp, data.len()).unwrap();
        assert_eq!(back, data);
        let block = decode_block(&encode_block(data)).unwrap();
        assert_eq!(block, data);
    }

    #[test]
    fn roundtrip_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello world hello world hello world");
        roundtrip(&vec![0u8; 100_000]);
        roundtrip(&(0..255u8).cycle().take(10_000).collect::<Vec<_>>());
        // pseudo-random bytes: incompressible, must still roundtrip
        let mut x = 0x12345678u32;
        let noise: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&noise);
    }

    #[test]
    fn zeros_compress_hard() {
        let data = vec![0u8; 1 << 20];
        let comp = compress(&data);
        // a 3-byte match token covers at most MAX_MATCH bytes, so the
        // floor is ~3/MAX_MATCH ≈ 2.3%; assert we land near it
        assert!(
            comp.len() < data.len() / 32,
            "1 MiB of zeros -> {} bytes",
            comp.len()
        );
    }

    #[test]
    fn repetitive_words_compress() {
        let mut data = Vec::new();
        for i in 0..4096u32 {
            data.extend_from_slice(&(i % 7).to_le_bytes());
        }
        let comp = compress(&data);
        assert!(comp.len() < data.len() / 2);
    }

    #[test]
    fn incompressible_block_stores_raw() {
        let mut x = 0x9E3779B9u32;
        let noise: Vec<u8> = (0..2048)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let block = encode_block(&noise);
        assert_eq!(block[0], CODEC_RAW);
        assert_eq!(block.len(), BLOCK_HEADER + noise.len());
        assert_eq!(block_len(&block).unwrap(), block.len());
        assert_eq!(decode_block(&block).unwrap(), noise);
    }

    #[test]
    fn corruption_detected() {
        let data = vec![7u8; 4096];
        let mut block = encode_block(&data);
        assert_eq!(block[0], CODEC_LZ);
        let last = block.len() - 1;
        block[last] ^= 0xFF;
        assert!(decode_block(&block).is_err());
        // header corruption
        let mut short = encode_block(&data);
        short.truncate(10);
        assert!(decode_block(&short).is_err());
        // unknown codec
        let mut bad = encode_block(&data);
        bad[0] = 9;
        assert!(decode_block(&bad).is_err());
    }

    #[test]
    fn malformed_streams_fail_cleanly() {
        // literal run past end
        assert!(decompress(&[0x7F, 1, 2], 128).is_err());
        // match with zero distance
        assert!(decompress(&[0x00, 1, 0x80, 0, 0], 10).is_err());
        // match before any output
        assert!(decompress(&[0x80, 1, 0], 4).is_err());
        // declared length mismatch
        assert!(decompress(&[0x00, 1], 5).is_err());
    }
}
