//! The shared error type for the workspace.

use crate::ids::{RecordId, SegmentId, TxnId};
use std::fmt;
use std::io;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, MmdbError>;

/// Errors surfaced by the engine and its substrates.
#[derive(Debug)]
pub enum MmdbError {
    /// A transaction attempted to access both a white and a black segment
    /// during an active two-color checkpoint and must be aborted and
    /// rerun (paper §3.2.1).
    TwoColorViolation {
        /// The violating transaction.
        txn: TxnId,
        /// The access that would have straddled colors.
        segment: SegmentId,
    },
    /// A record id out of range for the database.
    RecordOutOfRange {
        /// The offending record.
        record: RecordId,
        /// Number of records in the database.
        n_records: u64,
    },
    /// A segment id out of range for the database.
    SegmentOutOfRange {
        /// The offending segment.
        segment: SegmentId,
        /// Number of segments in the database.
        n_segments: u64,
    },
    /// Operation on a transaction that is not active (already committed
    /// or aborted, or never begun).
    NoSuchTxn(TxnId),
    /// A value written to a record has the wrong length.
    BadRecordSize {
        /// Expected length in words.
        expected: u64,
        /// Provided length in words.
        got: u64,
    },
    /// The requested checkpoint algorithm is unsound under the current
    /// log-tail mode (FASTFUZZY with a volatile tail).
    UnsoundConfiguration(String),
    /// A checkpoint is already in progress.
    CheckpointInProgress,
    /// No checkpoint is in progress.
    NoCheckpointInProgress,
    /// Transaction processing is quiesced (a COU checkpoint is starting);
    /// the transaction must be retried after the quiesce point.
    Quiesced,
    /// Recovery found no complete backup to restore from.
    NoCompleteBackup,
    /// On-disk data failed validation (bad magic, checksum, or torn
    /// write detected).
    Corrupt(String),
    /// Invalid parameters or usage.
    Invalid(String),
    /// An underlying I/O error from the host filesystem.
    Io(io::Error),
}

impl fmt::Display for MmdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmdbError::TwoColorViolation { txn, segment } => write!(
                f,
                "{txn} aborted: two-color violation accessing {segment} during checkpoint"
            ),
            MmdbError::RecordOutOfRange { record, n_records } => {
                write!(
                    f,
                    "{record} out of range (database has {n_records} records)"
                )
            }
            MmdbError::SegmentOutOfRange {
                segment,
                n_segments,
            } => write!(
                f,
                "{segment} out of range (database has {n_segments} segments)"
            ),
            MmdbError::NoSuchTxn(t) => write!(f, "{t} is not active"),
            MmdbError::BadRecordSize { expected, got } => {
                write!(f, "record value has {got} words, expected {expected}")
            }
            MmdbError::UnsoundConfiguration(msg) => write!(f, "unsound configuration: {msg}"),
            MmdbError::CheckpointInProgress => write!(f, "a checkpoint is already in progress"),
            MmdbError::NoCheckpointInProgress => write!(f, "no checkpoint is in progress"),
            MmdbError::Quiesced => write!(
                f,
                "transaction processing is quiesced for a checkpoint begin"
            ),
            MmdbError::NoCompleteBackup => {
                write!(f, "recovery found no complete backup database copy")
            }
            MmdbError::Corrupt(msg) => write!(f, "corrupt on-disk data: {msg}"),
            MmdbError::Invalid(msg) => write!(f, "invalid: {msg}"),
            MmdbError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for MmdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MmdbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MmdbError {
    fn from(e: io::Error) -> Self {
        MmdbError::Io(e)
    }
}

impl MmdbError {
    /// True for errors that mean "abort and rerun the transaction"
    /// rather than "the caller did something wrong": two-color
    /// violations and quiesce waits.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MmdbError::TwoColorViolation { .. } | MmdbError::Quiesced
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MmdbError::TwoColorViolation {
            txn: TxnId(7),
            segment: SegmentId(3),
        };
        let s = e.to_string();
        assert!(s.contains("TxnId(7)"));
        assert!(s.contains("two-color"));
    }

    #[test]
    fn transient_classification() {
        assert!(MmdbError::TwoColorViolation {
            txn: TxnId(1),
            segment: SegmentId(0)
        }
        .is_transient());
        assert!(MmdbError::Quiesced.is_transient());
        assert!(!MmdbError::NoCompleteBackup.is_transient());
        assert!(!MmdbError::Io(io::Error::other("x")).is_transient());
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let e: MmdbError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}
