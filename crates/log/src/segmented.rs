//! A segmented (chunked) file log device.
//!
//! Production log managers do not keep one ever-growing file: the log is
//! split into fixed-size *chunk files*, and truncating the obsolete
//! prefix (everything older than the last two completed checkpoints —
//! see `Mmdb`'s truncation hook) reclaims space by deleting whole
//! chunks. Offsets remain global and stable: chunk files are named by
//! the global offset of their first byte (`<offset>.log`), so a reopened
//! device reconstructs the offset space from the directory listing.
//!
//! ## Cold-chunk lifecycle (rotation, compaction, compression)
//!
//! Every chunk except the last is *cold*: it will never be appended to
//! again. Cold chunks support two in-place transformations, both
//! length-preserving in the logical offset space:
//!
//! * [`rewrite_chunk`](crate::LogDevice::rewrite_chunk) replaces a cold
//!   chunk's bytes (the compactor overwrites dead frames with
//!   same-length `Compacted` filler), optionally storing the result
//!   compressed as `<offset>.logz` — an 8-byte logical-length header
//!   followed by a checksummed [`mmdb_types::lz`] block.
//! * [`rotate`](crate::LogDevice::rotate) seals the active chunk early
//!   so it becomes cold without waiting for it to fill.
//!
//! The rewrite protocol is crash-atomic per chunk: the new image is
//! written to `<offset>.tmp`, synced, renamed over the final name, and
//! only then is a superseded `.log` file unlinked. On open, `.logz` is
//! preferred when both exist (the rename happens only after a complete
//! write), orphaned `.log` twins and stray `.tmp` files are removed, and
//! chunk contiguity is checked on *logical* lengths.

use crate::device::{ChunkInfo, LogDevice};
use mmdb_types::{lz, MmdbError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default chunk size: 1 MiB.
pub const DEFAULT_CHUNK_BYTES: u64 = 1 << 20;

/// Header of a compressed chunk file: the chunk's logical length (u64
/// LE), so discovery never has to decompress anything.
const LOGZ_HEADER: usize = 8;

/// One chunk file: covers global offsets `[start, start + len)`.
#[derive(Debug)]
struct Chunk {
    start: u64,
    /// Logical length — the span of global offsets covered.
    len: u64,
    /// Bytes on disk (equals `len` for uncompressed chunks).
    disk_bytes: u64,
    compressed: bool,
    path: PathBuf,
}

/// A directory of fixed-capacity chunk files forming one logical log.
#[derive(Debug)]
pub struct SegmentedLogDevice {
    dir: PathBuf,
    chunk_bytes: u64,
    chunks: Vec<Chunk>,
    /// Open handle to the active (last) chunk.
    active: Option<File>,
    sync_on_append: bool,
    /// One-entry cache of the most recently decompressed cold chunk,
    /// keyed by chunk start (sequential recovery scans hit it hard).
    cache: Option<(u64, Vec<u8>)>,
    /// The logical truncation point: a *record boundary* supplied by the
    /// log manager. Chunk files are deleted at whole-chunk granularity,
    /// so the first surviving chunk may physically begin before this
    /// offset; readers must start here (mid-record bytes below it are
    /// unreadable). Persisted in `dir/truncation`.
    logical_start: u64,
}

fn truncation_path(dir: &Path) -> PathBuf {
    dir.join("truncation")
}

fn chunk_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("{start:020}.log"))
}

fn chunk_z_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("{start:020}.logz"))
}

/// Reads and verifies a compressed chunk file, returning its logical
/// bytes.
fn read_compressed_chunk(path: &Path, logical_len: u64) -> Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < LOGZ_HEADER {
        return Err(MmdbError::Corrupt(format!(
            "compressed chunk {path:?} shorter than its header"
        )));
    }
    let stored_len = u64::from_le_bytes(bytes[..LOGZ_HEADER].try_into().expect("8-byte slice"));
    if stored_len != logical_len {
        return Err(MmdbError::Corrupt(format!(
            "compressed chunk {path:?} header length {stored_len} != expected {logical_len}"
        )));
    }
    let raw = lz::decode_block(&bytes[LOGZ_HEADER..])?;
    if raw.len() as u64 != logical_len {
        return Err(MmdbError::Corrupt(format!(
            "compressed chunk {path:?} decoded to {} bytes, expected {logical_len}",
            raw.len()
        )));
    }
    Ok(raw)
}

impl SegmentedLogDevice {
    /// Opens (or creates) a segmented log in `dir` with the given chunk
    /// capacity. Existing chunks are discovered from the directory;
    /// leftovers of an interrupted chunk rewrite (stray `.tmp` files, a
    /// `.log` twin of a completed `.logz`) are cleaned up.
    pub fn open(dir: &Path, chunk_bytes: u64, sync_on_append: bool) -> Result<SegmentedLogDevice> {
        if chunk_bytes == 0 {
            return Err(MmdbError::Invalid("chunk size must be non-zero".into()));
        }
        std::fs::create_dir_all(dir)?;
        let mut plain: Vec<(u64, PathBuf, u64)> = Vec::new();
        let mut packed: Vec<(u64, PathBuf, u64)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // an interrupted rewrite never renamed this into place;
                // the original chunk file is still authoritative
                std::fs::remove_file(entry.path())?;
            } else if let Some(start_str) = name.strip_suffix(".logz") {
                if let Ok(start) = start_str.parse::<u64>() {
                    packed.push((start, entry.path(), entry.metadata()?.len()));
                }
            } else if let Some(start_str) = name.strip_suffix(".log") {
                if let Ok(start) = start_str.parse::<u64>() {
                    plain.push((start, entry.path(), entry.metadata()?.len()));
                }
            }
        }
        let mut chunks = Vec::new();
        for (start, path, disk) in packed {
            // a `.logz` is only ever renamed into place once complete, so
            // when both forms exist the `.log` is the superseded twin of
            // a rewrite that crashed before its unlink
            if let Some(i) = plain.iter().position(|(s, _, _)| *s == start) {
                let (_, twin, _) = plain.remove(i);
                std::fs::remove_file(twin)?;
            }
            let mut header = [0u8; LOGZ_HEADER];
            let mut f = File::open(&path)?;
            f.read_exact(&mut header).map_err(|_| {
                MmdbError::Corrupt(format!("compressed chunk {path:?} shorter than its header"))
            })?;
            let len = u64::from_le_bytes(header);
            chunks.push(Chunk {
                start,
                len,
                disk_bytes: disk,
                compressed: true,
                path,
            });
        }
        for (start, path, disk) in plain {
            chunks.push(Chunk {
                start,
                len: disk,
                disk_bytes: disk,
                compressed: false,
                path,
            });
        }
        chunks.sort_by_key(|c| c.start);
        // sanity: chunks must tile contiguously in the logical space
        for pair in chunks.windows(2) {
            if pair[0].start + pair[0].len != pair[1].start {
                return Err(MmdbError::Corrupt(format!(
                    "log chunks are not contiguous: {:?} then {:?}",
                    pair[0].path, pair[1].path
                )));
            }
        }
        let mut logical_start = chunks.first().map(|c| c.start).unwrap_or(0);
        if let Ok(bytes) = std::fs::read(truncation_path(dir)) {
            if bytes.len() == 8 {
                let stored = u64::from_le_bytes(bytes.try_into().expect("len checked"));
                logical_start = logical_start.max(stored);
            }
        }
        Ok(SegmentedLogDevice {
            dir: dir.to_path_buf(),
            chunk_bytes,
            chunks,
            active: None,
            sync_on_append,
            cache: None,
            logical_start,
        })
    }

    /// Opens with the default chunk size.
    pub fn open_default(dir: &Path, sync_on_append: bool) -> Result<SegmentedLogDevice> {
        Self::open(dir, DEFAULT_CHUNK_BYTES, sync_on_append)
    }

    /// Number of chunk files currently on disk.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes currently held on disk. Compressed chunks count their
    /// on-disk (compressed) size, so this is what the directory actually
    /// occupies, not the logical window span.
    pub fn disk_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.disk_bytes).sum()
    }

    fn ensure_active(&mut self) -> Result<()> {
        if self.chunks.is_empty() {
            let path = chunk_path(&self.dir, 0);
            let file = OpenOptions::new()
                .create(true)
                .read(true)
                .write(true)
                .truncate(true)
                .open(&path)?;
            self.chunks.push(Chunk {
                start: 0,
                len: 0,
                disk_bytes: 0,
                compressed: false,
                path,
            });
            self.active = Some(file);
            return Ok(());
        }
        let last = self.chunks.last().expect("non-empty");
        if last.compressed {
            // the tail chunk was sealed and compressed before a restart;
            // appends must go to a fresh chunk
            return self.roll_chunk();
        }
        if self.active.is_none() {
            self.active = Some(OpenOptions::new().read(true).write(true).open(&last.path)?);
        }
        Ok(())
    }

    fn roll_chunk(&mut self) -> Result<()> {
        let end = self.len();
        let path = chunk_path(&self.dir, end);
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        self.chunks.push(Chunk {
            start: end,
            len: 0,
            disk_bytes: 0,
            compressed: false,
            path,
        });
        self.active = Some(file);
        Ok(())
    }
}

impl LogDevice for SegmentedLogDevice {
    fn append(&mut self, mut bytes: &[u8]) -> Result<()> {
        self.ensure_active()?;
        while !bytes.is_empty() {
            let (room, sealed) = {
                let last = self.chunks.last().expect("active chunk exists");
                (self.chunk_bytes.saturating_sub(last.len), last.compressed)
            };
            if room == 0 || sealed {
                self.roll_chunk()?;
                continue;
            }
            let take = (room as usize).min(bytes.len());
            let (now, rest) = bytes.split_at(take);
            let last = self.chunks.last_mut().expect("active chunk exists");
            let file = self.active.as_mut().expect("active file open");
            file.seek(SeekFrom::Start(last.len))?;
            file.write_all(now)?;
            if self.sync_on_append {
                file.sync_data()?;
            }
            last.len += take as u64;
            last.disk_bytes = last.len;
            bytes = rest;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.chunks.last().map(|c| c.start + c.len).unwrap_or(0)
    }

    fn start_offset(&self) -> u64 {
        self.logical_start
    }

    fn truncate_prefix(&mut self, offset: u64) -> Result<()> {
        if offset > self.len() {
            return Err(MmdbError::Invalid(format!(
                "truncate_prefix({offset}) past end {}",
                self.len()
            )));
        }
        if offset <= self.logical_start {
            return Ok(());
        }
        // Persist the logical point first (a record boundary, courtesy of
        // the log manager); then reclaim fully-dead chunks. If we crash
        // between the two, the next open just re-deletes them.
        self.logical_start = offset;
        std::fs::write(truncation_path(&self.dir), offset.to_le_bytes())?;
        while self.chunks.len() > 1 {
            let first = &self.chunks[0];
            if first.start + first.len <= offset {
                if self.cache.as_ref().map(|(s, _)| *s) == Some(first.start) {
                    self.cache = None;
                }
                std::fs::remove_file(&first.path)?;
                self.chunks.remove(0);
            } else {
                break;
            }
        }
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if offset < self.start_offset() || offset + buf.len() as u64 > self.len() {
            return Err(MmdbError::Corrupt(format!(
                "log read [{}, {}) outside readable window [{}, {})",
                offset,
                offset + buf.len() as u64,
                self.start_offset(),
                self.len()
            )));
        }
        let mut pos = offset;
        let mut out = buf;
        while !out.is_empty() {
            let idx = self
                .chunks
                .iter()
                .position(|c| c.start <= pos && pos < c.start + c.len)
                .ok_or_else(|| MmdbError::Corrupt(format!("no chunk covers offset {pos}")))?;
            let (start, len, compressed) = {
                let c = &self.chunks[idx];
                (c.start, c.len, c.compressed)
            };
            let within = (pos - start) as usize;
            let take = ((len as usize) - within).min(out.len());
            let (now, rest) = out.split_at_mut(take);
            if compressed {
                if self.cache.as_ref().map(|(s, _)| *s) != Some(start) {
                    let raw = read_compressed_chunk(&self.chunks[idx].path, len)?;
                    self.cache = Some((start, raw));
                }
                let (_, raw) = self.cache.as_ref().expect("cache just filled");
                now.copy_from_slice(&raw[within..within + take]);
            } else {
                let mut file = File::open(&self.chunks[idx].path)?;
                file.seek(SeekFrom::Start(within as u64))?;
                file.read_exact(now)?;
            }
            pos += take as u64;
            out = rest;
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<bool> {
        match self.chunks.last() {
            None => Ok(false),
            Some(last) if last.len == 0 && !last.compressed => Ok(false),
            _ => {
                self.roll_chunk()?;
                Ok(true)
            }
        }
    }

    fn chunk_map(&self) -> Vec<ChunkInfo> {
        self.chunks
            .iter()
            .map(|c| ChunkInfo {
                start: c.start,
                len: c.len,
                compressed: c.compressed,
                disk_bytes: c.disk_bytes,
            })
            .collect()
    }

    fn rewrite_chunk(&mut self, start: u64, bytes: &[u8], compress: bool) -> Result<()> {
        let idx = self
            .chunks
            .iter()
            .position(|c| c.start == start)
            .ok_or_else(|| MmdbError::Invalid(format!("no chunk starts at offset {start}")))?;
        if idx + 1 == self.chunks.len() {
            return Err(MmdbError::Invalid(
                "cannot rewrite the active chunk (rotate first)".into(),
            ));
        }
        if bytes.len() as u64 != self.chunks[idx].len {
            return Err(MmdbError::Invalid(format!(
                "chunk rewrite must preserve logical length ({} != {})",
                bytes.len(),
                self.chunks[idx].len
            )));
        }
        // Never convert a compressed chunk back to plain form in place:
        // `.logz` wins over `.log` at open, so the `.logz → .log` rename
        // direction could resurrect a stale image after a crash. The
        // `.log → .logz` direction is safe (the twin `.log` holds the
        // pre-rewrite image, itself a consistent chunk).
        let to_compressed = compress || self.chunks[idx].compressed;
        let (payload, final_path) = if to_compressed {
            let mut p = Vec::with_capacity(LOGZ_HEADER + bytes.len() / 2);
            p.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            p.extend_from_slice(&lz::encode_block(bytes));
            (p, chunk_z_path(&self.dir, start))
        } else {
            (bytes.to_vec(), chunk_path(&self.dir, start))
        };
        let tmp = self.dir.join(format!("{start:020}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&payload)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &final_path)?;
        if to_compressed && !self.chunks[idx].compressed {
            // unlink the superseded plain twin; a crash right before this
            // is healed at the next open (`.logz` preferred)
            std::fs::remove_file(&self.chunks[idx].path)?;
        }
        let c = &mut self.chunks[idx];
        c.compressed = to_compressed;
        c.disk_bytes = payload.len() as u64;
        c.path = final_path;
        if self.cache.as_ref().map(|(s, _)| *s) == Some(start) {
            self.cache = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-seglog-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_spans_chunks() {
        let dir = tmp("span");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(b"0123456789ABCDEFGHIJKLMNOP").unwrap(); // 26 bytes → 3 chunks
        assert_eq!(d.len(), 26);
        assert_eq!(d.chunk_count(), 3);
        let mut buf = [0u8; 12];
        d.read_at(5, &mut buf).unwrap(); // crosses the 10-byte boundary
        assert_eq!(&buf, b"56789ABCDEFG");
        assert_eq!(d.read_all().unwrap(), b"0123456789ABCDEFGHIJKLMNOP");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_reconstructs_offsets() {
        let dir = tmp("reopen");
        {
            let mut d = SegmentedLogDevice::open(&dir, 8, false).unwrap();
            d.append(b"hello world, this is the log").unwrap();
        }
        let mut d = SegmentedLogDevice::open(&dir, 8, false).unwrap();
        assert_eq!(d.len(), 28);
        assert_eq!(d.start_offset(), 0);
        assert_eq!(d.read_all().unwrap(), b"hello world, this is the log");
        d.append(b"!").unwrap();
        assert_eq!(d.len(), 29);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_deletes_whole_chunks_only() {
        let dir = tmp("trunc");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[7u8; 35]).unwrap(); // chunks: [0,10) [10,20) [20,30) [30,35)
        assert_eq!(d.chunk_count(), 4);

        d.truncate_prefix(25).unwrap(); // chunks [0,10) and [10,20) go
                                        // the logical start is exactly the requested offset (a record
                                        // boundary); the physical chunk [20,30) survives in full
        assert_eq!(d.start_offset(), 25);
        assert_eq!(d.chunk_count(), 2);
        assert_eq!(d.disk_bytes(), 15);
        assert_eq!(d.len(), 35, "global length is unchanged");
        assert_eq!(d.read_all().unwrap(), vec![7u8; 10]);

        // reads below the window fail; reads above succeed
        let mut buf = [0u8; 5];
        assert!(d.read_at(15, &mut buf).is_err());
        d.read_at(25, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_survives_reopen() {
        let dir = tmp("trunc-reopen");
        {
            let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
            d.append(&[1u8; 30]).unwrap();
            d.truncate_prefix(20).unwrap();
        }
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        assert_eq!(d.start_offset(), 20);
        assert_eq!(d.len(), 30);
        assert_eq!(d.read_all().unwrap(), vec![1u8; 10]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_never_removes_active_chunk() {
        let dir = tmp("keep-active");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[2u8; 10]).unwrap(); // exactly one full chunk
        d.truncate_prefix(10).unwrap();
        assert_eq!(d.chunk_count(), 1, "the only chunk stays");
        d.append(&[3u8; 5]).unwrap();
        assert_eq!(d.len(), 15);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_past_end_rejected() {
        let dir = tmp("past-end");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[0u8; 5]).unwrap();
        assert!(d.truncate_prefix(6).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noncontiguous_chunks_detected() {
        let dir = tmp("gap");
        {
            let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
            d.append(&[0u8; 25]).unwrap();
        }
        // delete the middle chunk to corrupt the directory
        std::fs::remove_file(chunk_path(&dir, 10)).unwrap();
        assert!(SegmentedLogDevice::open(&dir, 10, false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotate_seals_active_chunk() {
        let dir = tmp("rotate");
        let mut d = SegmentedLogDevice::open(&dir, 100, false).unwrap();
        assert!(!d.rotate().unwrap(), "nothing to seal in an empty log");
        d.append(b"some records").unwrap();
        assert_eq!(d.chunk_count(), 1);
        assert!(d.rotate().unwrap());
        assert_eq!(d.chunk_count(), 2);
        assert!(!d.rotate().unwrap(), "fresh empty chunk: nothing to seal");
        d.append(b"more").unwrap();
        assert_eq!(d.len(), 16);
        assert_eq!(d.read_all().unwrap(), b"some recordsmore");
        let map = d.chunk_map();
        assert_eq!(map.len(), 2);
        assert_eq!((map[0].start, map[0].len), (0, 12));
        assert_eq!((map[1].start, map[1].len), (12, 4));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_chunk_preserves_offsets() {
        let dir = tmp("rewrite");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[9u8; 25]).unwrap(); // [0,10) [10,20) [20,25)
        d.rewrite_chunk(10, &[4u8; 10], false).unwrap();
        assert_eq!(d.len(), 25);
        let mut buf = [0u8; 15];
        d.read_at(5, &mut buf).unwrap();
        assert_eq!(&buf[..5], &[9u8; 5]);
        assert_eq!(&buf[5..], &[4u8; 10]);
        // wrong length and active-chunk rewrites are rejected
        assert!(d.rewrite_chunk(10, &[0u8; 9], false).is_err());
        assert!(d.rewrite_chunk(20, &[0u8; 5], false).is_err());
        assert!(d.rewrite_chunk(7, &[0u8; 10], false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_chunk_roundtrip_and_reopen() {
        let dir = tmp("compress");
        let mut d = SegmentedLogDevice::open(&dir, 100, false).unwrap();
        let data: Vec<u8> = (0..100u8).map(|i| i % 5).collect();
        d.append(&data).unwrap();
        d.append(b"tail").unwrap(); // rolls into chunk [100,104)
        d.rewrite_chunk(0, &data, true).unwrap();
        let map = d.chunk_map();
        assert!(map[0].compressed);
        assert!(map[0].disk_bytes < map[0].len, "compression paid");
        assert_eq!(map[0].len, 100, "logical length preserved");
        // reads decompress transparently, including boundary-crossers
        let mut buf = [0u8; 8];
        d.read_at(96, &mut buf).unwrap();
        assert_eq!(&buf[..4], &data[96..]);
        assert_eq!(&buf[4..], b"tail");
        let mut all = d.read_all().unwrap();
        assert_eq!(all.split_off(100), b"tail");
        assert_eq!(all, data);
        drop(d);

        // reopen: .logz is discovered with its logical length
        let mut d = SegmentedLogDevice::open(&dir, 100, false).unwrap();
        assert_eq!(d.len(), 104);
        let map = d.chunk_map();
        assert!(map[0].compressed);
        assert_eq!(map[0].len, 100);
        let mut all = d.read_all().unwrap();
        assert_eq!(all.split_off(100), b"tail");
        assert_eq!(all, data);
        // appends still work after reopen
        d.append(b"!").unwrap();
        assert_eq!(d.len(), 105);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_rewrite_stays_compressed() {
        let dir = tmp("stay-z");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[1u8; 15]).unwrap();
        d.rewrite_chunk(0, &[1u8; 10], true).unwrap();
        // a second rewrite without the compress flag must not fall back
        // to plain form (crash-safety of the rename direction)
        d.rewrite_chunk(0, &[2u8; 10], false).unwrap();
        assert!(d.chunk_map()[0].compressed);
        let mut buf = [0u8; 10];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 10]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_rolls_off_compressed_tail_after_reopen() {
        let dir = tmp("z-tail");
        {
            let mut d = SegmentedLogDevice::open(&dir, 100, false).unwrap();
            d.append(&[5u8; 40]).unwrap();
            assert!(d.rotate().unwrap());
            d.rewrite_chunk(0, &[5u8; 40], true).unwrap();
            // drop with the sealed+compressed chunk as the only non-empty
            // one; delete the empty active chunk to simulate a crash
            // before its first append
        }
        std::fs::remove_file(chunk_path(&dir, 40)).unwrap();
        let mut d = SegmentedLogDevice::open(&dir, 100, false).unwrap();
        assert_eq!(d.len(), 40);
        assert!(d.chunk_map()[0].compressed);
        d.append(b"xy").unwrap(); // must roll, not write into the .logz
        assert_eq!(d.len(), 42);
        let mut buf = [0u8; 2];
        d.read_at(40, &mut buf).unwrap();
        assert_eq!(&buf, b"xy");
        assert_eq!(d.chunk_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_rewrite_leftovers_cleaned_at_open() {
        let dir = tmp("leftovers");
        {
            let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
            d.append(&[3u8; 25]).unwrap();
            d.rewrite_chunk(0, &[3u8; 10], true).unwrap();
        }
        // simulate a crash mid-rewrite of chunk 10: tmp file present,
        // original intact — and a crash right before the twin unlink of
        // chunk 0: both .log and .logz present
        std::fs::write(dir.join(format!("{:020}.tmp", 10u64)), b"junk").unwrap();
        std::fs::write(chunk_path(&dir, 0), [9u8; 10]).unwrap();
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        assert_eq!(d.chunk_count(), 3);
        assert!(d.chunk_map()[0].compressed, ".logz preferred over .log");
        assert!(!chunk_path(&dir, 0).exists(), "orphan .log removed");
        assert!(
            !dir.join(format!("{:020}.tmp", 10u64)).exists(),
            "stray tmp removed"
        );
        let mut buf = [0u8; 10];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 10], "compressed image wins, not the stale twin");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_compressed_chunk_detected_on_read() {
        let dir = tmp("z-corrupt");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[8u8; 15]).unwrap();
        d.rewrite_chunk(0, &[8u8; 10], true).unwrap();
        let zpath = chunk_z_path(&dir, 0);
        let mut bytes = std::fs::read(&zpath).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0xFF;
        std::fs::write(&zpath, &bytes).unwrap();
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        let mut buf = [0u8; 10];
        assert!(d.read_at(0, &mut buf).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
