//! A segmented (chunked) file log device.
//!
//! Production log managers do not keep one ever-growing file: the log is
//! split into fixed-size *chunk files*, and truncating the obsolete
//! prefix (everything older than the last two completed checkpoints —
//! see `Mmdb`'s truncation hook) reclaims space by deleting whole
//! chunks. Offsets remain global and stable: chunk files are named by
//! the global offset of their first byte (`<offset>.log`), so a reopened
//! device reconstructs the offset space from the directory listing.

use crate::device::LogDevice;
use mmdb_types::{MmdbError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default chunk size: 1 MiB.
pub const DEFAULT_CHUNK_BYTES: u64 = 1 << 20;

/// One chunk file: covers global offsets `[start, start + len)`.
#[derive(Debug)]
struct Chunk {
    start: u64,
    len: u64,
    path: PathBuf,
}

/// A directory of fixed-capacity chunk files forming one logical log.
#[derive(Debug)]
pub struct SegmentedLogDevice {
    dir: PathBuf,
    chunk_bytes: u64,
    chunks: Vec<Chunk>,
    /// Open handle to the active (last) chunk.
    active: Option<File>,
    sync_on_append: bool,
    /// The logical truncation point: a *record boundary* supplied by the
    /// log manager. Chunk files are deleted at whole-chunk granularity,
    /// so the first surviving chunk may physically begin before this
    /// offset; readers must start here (mid-record bytes below it are
    /// unreadable). Persisted in `dir/truncation`.
    logical_start: u64,
}

fn truncation_path(dir: &Path) -> PathBuf {
    dir.join("truncation")
}

fn chunk_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("{start:020}.log"))
}

impl SegmentedLogDevice {
    /// Opens (or creates) a segmented log in `dir` with the given chunk
    /// capacity. Existing chunks are discovered from the directory.
    pub fn open(dir: &Path, chunk_bytes: u64, sync_on_append: bool) -> Result<SegmentedLogDevice> {
        if chunk_bytes == 0 {
            return Err(MmdbError::Invalid("chunk size must be non-zero".into()));
        }
        std::fs::create_dir_all(dir)?;
        let mut chunks = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(start_str) = name.strip_suffix(".log") {
                if let Ok(start) = start_str.parse::<u64>() {
                    let len = entry.metadata()?.len();
                    chunks.push(Chunk {
                        start,
                        len,
                        path: entry.path(),
                    });
                }
            }
        }
        chunks.sort_by_key(|c| c.start);
        // sanity: chunks must tile contiguously
        for pair in chunks.windows(2) {
            if pair[0].start + pair[0].len != pair[1].start {
                return Err(MmdbError::Corrupt(format!(
                    "log chunks are not contiguous: {:?} then {:?}",
                    pair[0].path, pair[1].path
                )));
            }
        }
        let mut logical_start = chunks.first().map(|c| c.start).unwrap_or(0);
        if let Ok(bytes) = std::fs::read(truncation_path(dir)) {
            if bytes.len() == 8 {
                let stored = u64::from_le_bytes(bytes.try_into().expect("len checked"));
                logical_start = logical_start.max(stored);
            }
        }
        Ok(SegmentedLogDevice {
            dir: dir.to_path_buf(),
            chunk_bytes,
            chunks,
            active: None,
            sync_on_append,
            logical_start,
        })
    }

    /// Opens with the default chunk size.
    pub fn open_default(dir: &Path, sync_on_append: bool) -> Result<SegmentedLogDevice> {
        Self::open(dir, DEFAULT_CHUNK_BYTES, sync_on_append)
    }

    /// Number of chunk files currently on disk.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes currently held on disk (readable window).
    pub fn disk_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.len).sum()
    }

    fn ensure_active(&mut self) -> Result<()> {
        if self.chunks.is_empty() {
            let path = chunk_path(&self.dir, 0);
            let file = OpenOptions::new()
                .create(true)
                .read(true)
                .write(true)
                .truncate(true)
                .open(&path)?;
            self.chunks.push(Chunk {
                start: 0,
                len: 0,
                path,
            });
            self.active = Some(file);
            return Ok(());
        }
        if self.active.is_none() {
            let last = self.chunks.last().expect("non-empty");
            self.active = Some(OpenOptions::new().read(true).write(true).open(&last.path)?);
        }
        Ok(())
    }

    fn roll_chunk(&mut self) -> Result<()> {
        let end = self.len();
        let path = chunk_path(&self.dir, end);
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        self.chunks.push(Chunk {
            start: end,
            len: 0,
            path,
        });
        self.active = Some(file);
        Ok(())
    }
}

impl LogDevice for SegmentedLogDevice {
    fn append(&mut self, mut bytes: &[u8]) -> Result<()> {
        self.ensure_active()?;
        while !bytes.is_empty() {
            let room = {
                let last = self.chunks.last().expect("active chunk exists");
                self.chunk_bytes.saturating_sub(last.len)
            };
            if room == 0 {
                self.roll_chunk()?;
                continue;
            }
            let take = (room as usize).min(bytes.len());
            let (now, rest) = bytes.split_at(take);
            let last = self.chunks.last_mut().expect("active chunk exists");
            let file = self.active.as_mut().expect("active file open");
            file.seek(SeekFrom::Start(last.len))?;
            file.write_all(now)?;
            if self.sync_on_append {
                file.sync_data()?;
            }
            last.len += take as u64;
            bytes = rest;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.chunks.last().map(|c| c.start + c.len).unwrap_or(0)
    }

    fn start_offset(&self) -> u64 {
        self.logical_start
    }

    fn truncate_prefix(&mut self, offset: u64) -> Result<()> {
        if offset > self.len() {
            return Err(MmdbError::Invalid(format!(
                "truncate_prefix({offset}) past end {}",
                self.len()
            )));
        }
        if offset <= self.logical_start {
            return Ok(());
        }
        // Persist the logical point first (a record boundary, courtesy of
        // the log manager); then reclaim fully-dead chunks. If we crash
        // between the two, the next open just re-deletes them.
        self.logical_start = offset;
        std::fs::write(truncation_path(&self.dir), offset.to_le_bytes())?;
        while self.chunks.len() > 1 {
            let first = &self.chunks[0];
            if first.start + first.len <= offset {
                std::fs::remove_file(&first.path)?;
                self.chunks.remove(0);
            } else {
                break;
            }
        }
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if offset < self.start_offset() || offset + buf.len() as u64 > self.len() {
            return Err(MmdbError::Corrupt(format!(
                "log read [{}, {}) outside readable window [{}, {})",
                offset,
                offset + buf.len() as u64,
                self.start_offset(),
                self.len()
            )));
        }
        let mut pos = offset;
        let mut out = buf;
        while !out.is_empty() {
            let chunk = self
                .chunks
                .iter()
                .find(|c| c.start <= pos && pos < c.start + c.len)
                .ok_or_else(|| MmdbError::Corrupt(format!("no chunk covers offset {pos}")))?;
            let within = pos - chunk.start;
            let take = ((chunk.len - within) as usize).min(out.len());
            let mut file = File::open(&chunk.path)?;
            file.seek(SeekFrom::Start(within))?;
            let (now, rest) = out.split_at_mut(take);
            file.read_exact(now)?;
            pos += take as u64;
            out = rest;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-seglog-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_spans_chunks() {
        let dir = tmp("span");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(b"0123456789ABCDEFGHIJKLMNOP").unwrap(); // 26 bytes → 3 chunks
        assert_eq!(d.len(), 26);
        assert_eq!(d.chunk_count(), 3);
        let mut buf = [0u8; 12];
        d.read_at(5, &mut buf).unwrap(); // crosses the 10-byte boundary
        assert_eq!(&buf, b"56789ABCDEFG");
        assert_eq!(d.read_all().unwrap(), b"0123456789ABCDEFGHIJKLMNOP");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_reconstructs_offsets() {
        let dir = tmp("reopen");
        {
            let mut d = SegmentedLogDevice::open(&dir, 8, false).unwrap();
            d.append(b"hello world, this is the log").unwrap();
        }
        let mut d = SegmentedLogDevice::open(&dir, 8, false).unwrap();
        assert_eq!(d.len(), 28);
        assert_eq!(d.start_offset(), 0);
        assert_eq!(d.read_all().unwrap(), b"hello world, this is the log");
        d.append(b"!").unwrap();
        assert_eq!(d.len(), 29);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_deletes_whole_chunks_only() {
        let dir = tmp("trunc");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[7u8; 35]).unwrap(); // chunks: [0,10) [10,20) [20,30) [30,35)
        assert_eq!(d.chunk_count(), 4);

        d.truncate_prefix(25).unwrap(); // chunks [0,10) and [10,20) go
                                        // the logical start is exactly the requested offset (a record
                                        // boundary); the physical chunk [20,30) survives in full
        assert_eq!(d.start_offset(), 25);
        assert_eq!(d.chunk_count(), 2);
        assert_eq!(d.disk_bytes(), 15);
        assert_eq!(d.len(), 35, "global length is unchanged");
        assert_eq!(d.read_all().unwrap(), vec![7u8; 10]);

        // reads below the window fail; reads above succeed
        let mut buf = [0u8; 5];
        assert!(d.read_at(15, &mut buf).is_err());
        d.read_at(25, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_survives_reopen() {
        let dir = tmp("trunc-reopen");
        {
            let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
            d.append(&[1u8; 30]).unwrap();
            d.truncate_prefix(20).unwrap();
        }
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        assert_eq!(d.start_offset(), 20);
        assert_eq!(d.len(), 30);
        assert_eq!(d.read_all().unwrap(), vec![1u8; 10]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_never_removes_active_chunk() {
        let dir = tmp("keep-active");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[2u8; 10]).unwrap(); // exactly one full chunk
        d.truncate_prefix(10).unwrap();
        assert_eq!(d.chunk_count(), 1, "the only chunk stays");
        d.append(&[3u8; 5]).unwrap();
        assert_eq!(d.len(), 15);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_past_end_rejected() {
        let dir = tmp("past-end");
        let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
        d.append(&[0u8; 5]).unwrap();
        assert!(d.truncate_prefix(6).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn noncontiguous_chunks_detected() {
        let dir = tmp("gap");
        {
            let mut d = SegmentedLogDevice::open(&dir, 10, false).unwrap();
            d.append(&[0u8; 25]).unwrap();
        }
        // delete the middle chunk to corrupt the directory
        std::fs::remove_file(chunk_path(&dir, 10)).unwrap();
        assert!(SegmentedLogDevice::open(&dir, 10, false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
