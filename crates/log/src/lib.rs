//! REDO-only logging for the memory-resident database.
//!
//! The paper's system (§2.6) logs only after-images: shadow-copy updates
//! mean old versions are never overwritten before commit, so UNDO
//! information is unnecessary. This crate provides:
//!
//! * [`LogRecord`] — record types and a checksummed, backward-scannable
//!   frame encoding,
//! * [`LogDevice`] — the durable byte store ([`MemLogDevice`] for tests and
//!   simulation, [`FileLogDevice`] for the real engine),
//! * [`LogManager`] — the volatile/stable log tail with LSN-based
//!   durability tracking (the write-ahead gate for checkpointers),
//! * [`DurableWatermark`] / [`PendingForce`] — the group-commit split:
//!   committers park on the watermark while a flusher batches forces and
//!   completes them (modeled latency, watermark publish) outside the
//!   engine lock,
//! * [`LogScanner`] — crash-tolerant backward/forward scanning, checkpoint
//!   marker location, and replay-start computation (paper §3.3).

#![warn(missing_docs)]

mod device;
mod manager;
mod record;
mod scan;
mod segmented;
mod ship;
mod watermark;

pub use device::{ChunkInfo, FileLogDevice, FlakyControl, FlakyLogDevice, LogDevice, MemLogDevice};
pub use manager::{LogManager, LogStats, PendingForce};
pub use record::{FramePeek, LogRecord, FRAME_OVERHEAD, MIN_COMPACTED_LEN};
pub use scan::{BackwardIter, CheckpointMark, ForwardIter, LogScanner};
pub use segmented::{SegmentedLogDevice, DEFAULT_CHUNK_BYTES};
pub use ship::{ShipTap, TapRead, DEFAULT_TAP_WINDOW_BYTES};
pub use watermark::DurableWatermark;
