//! The log-shipping tap: a bounded in-memory window of recently forced
//! log bytes, filled by the force path *as the tail moves to the device*
//! so the replication shipper never issues a second device read for
//! bytes the primary just wrote.
//!
//! The tap is strictly an optimization over re-reading the durable
//! device: it only ever contains bytes the device already holds, pushed
//! by [`crate::LogManager`] immediately after a successful device
//! append (volatile-tail force or stable-tail drain). A reader that has
//! fallen behind the window — or that attached after the log already
//! grew — gets [`TapRead::Gap`] and falls back to a ranged device read.
//!
//! Readers long-poll: [`ShipTap::read_from`] parks on a condvar until
//! bytes past the requested LSN arrive, the window reports a gap, or
//! the timeout elapses. Each push also records the force's wall-clock
//! instant so the primary can attribute *replication lag* (time between
//! a commit becoming durable locally and a standby acknowledging it)
//! without any clock shared with the standby.

use mmdb_sync::{LockRank, RankedCondvar, RankedMutex};
use mmdb_types::Lsn;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default window size: enough to ride out a replica hiccup at group
/// commit rates without re-reading the device.
pub const DEFAULT_TAP_WINDOW_BYTES: usize = 4 << 20;

/// Bound on the force-instant deque used for lag attribution.
const MAX_FORCE_MARKS: usize = 4096;

struct TapState {
    /// Window bytes, starting at LSN `start`.
    buf: VecDeque<u8>,
    /// LSN of `buf[0]`.
    start: Lsn,
    /// LSN just past the last pushed byte (== durable LSN at last push).
    durable: Lsn,
    /// `(end_lsn, forced_at)` per push, oldest first, for lag tracking.
    marks: VecDeque<(Lsn, Instant)>,
}

/// One successful read from the tap window.
#[derive(Debug, PartialEq, Eq)]
pub enum TapRead {
    /// Bytes `[start, start + bytes.len())`, all durable on the device.
    Bytes {
        /// LSN of the first returned byte.
        start: Lsn,
        /// The primary's durable LSN at read time.
        durable: Lsn,
        /// Raw log-record frames (always whole frames: pushes happen at
        /// force granularity and forces end on record boundaries).
        bytes: Vec<u8>,
    },
    /// The requested LSN fell off (or predates) the window; read the
    /// device from `from` instead. Carries the window start for
    /// diagnostics.
    Gap {
        /// First LSN the window still covers.
        window_start: Lsn,
    },
    /// Nothing new past the requested LSN before the timeout.
    Timeout,
}

/// A bounded window of recently forced log bytes. See the module docs.
pub struct ShipTap {
    state: RankedMutex<TapState>,
    cv: RankedCondvar,
    cap: usize,
}

impl std::fmt::Debug for ShipTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("ShipTap")
            .field("start", &s.start)
            .field("durable", &s.durable)
            .field("len", &s.buf.len())
            .field("cap", &self.cap)
            .finish()
    }
}

impl ShipTap {
    /// A tap whose window starts empty at `start` (the log's durable LSN
    /// when the tap is attached), holding at most `cap` bytes.
    pub fn new(name: &'static str, start: Lsn, cap: usize) -> Arc<ShipTap> {
        Arc::new(ShipTap {
            state: RankedMutex::new(
                name,
                LockRank::SHIP_TAP,
                TapState {
                    buf: VecDeque::new(),
                    start,
                    durable: start,
                    marks: VecDeque::new(),
                },
            ),
            cv: RankedCondvar::new(),
            cap,
        })
    }

    /// Appends freshly forced bytes whose first byte has LSN `start`.
    /// Called by the force path right after a successful device append;
    /// evicts from the front when the window overflows. A discontiguous
    /// push (tap attached mid-stream, or a competing writer) resets the
    /// window rather than serving a torn byte range.
    pub fn push(&self, start: Lsn, bytes: &[u8]) {
        let mut s = self.state.lock();
        if s.start.advance(s.buf.len() as u64) != start {
            s.buf.clear();
            s.start = start;
        }
        s.buf.extend(bytes);
        s.durable = start.advance(bytes.len() as u64);
        while s.buf.len() > self.cap {
            // evict whole frames' worth only in aggregate: readers below
            // the new start get a Gap and re-read the device, so the cut
            // point needs no frame alignment
            let excess = s.buf.len() - self.cap;
            s.buf.drain(..excess);
            s.start = s.start.advance(excess as u64);
        }
        let durable = s.durable;
        s.marks.push_back((durable, Instant::now()));
        if s.marks.len() > MAX_FORCE_MARKS {
            s.marks.pop_front();
        }
        drop(s);
        self.cv.notify_all();
    }

    /// The LSN just past the last pushed byte.
    pub fn durable(&self) -> Lsn {
        self.state.lock().durable
    }

    /// Reads up to `max_bytes` starting at `from`, parking up to
    /// `timeout` for new bytes when the window end is at or below
    /// `from`. Returns [`TapRead::Gap`] when `from` predates the window.
    pub fn read_from(&self, from: Lsn, max_bytes: usize, timeout: Duration) -> TapRead {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock();
        loop {
            if from < s.start {
                return TapRead::Gap {
                    window_start: s.start,
                };
            }
            if from < s.durable {
                let skip = (from.raw() - s.start.raw()) as usize;
                let take = (s.buf.len() - skip).min(max_bytes);
                let bytes: Vec<u8> = s.buf.iter().skip(skip).take(take).copied().collect();
                return TapRead::Bytes {
                    start: from,
                    durable: s.durable,
                    bytes,
                };
            }
            let now = Instant::now();
            if now >= deadline {
                return TapRead::Timeout;
            }
            let (guard, _) = self.cv.wait_timeout(s, deadline - now);
            s = guard;
        }
    }

    /// Drains lag marks covered by a standby's acknowledged LSN,
    /// returning the elapsed time since the *oldest* force the ack newly
    /// covers — the standby's replication lag as seen by the primary.
    pub fn ack_lag(&self, acked: Lsn) -> Option<Duration> {
        let mut s = self.state.lock();
        let mut oldest: Option<Instant> = None;
        while let Some(&(end, at)) = s.marks.front() {
            if end > acked {
                break;
            }
            oldest = Some(match oldest {
                Some(prev) => prev.min(at),
                None => at,
            });
            s.marks.pop_front();
        }
        oldest.map(|at| at.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tap(start: u64, cap: usize) -> Arc<ShipTap> {
        ShipTap::new("test.tap", Lsn(start), cap)
    }

    #[test]
    fn read_returns_pushed_bytes() {
        let t = tap(0, 1024);
        t.push(Lsn(0), b"hello");
        match t.read_from(Lsn(0), 1024, Duration::ZERO) {
            TapRead::Bytes {
                start,
                durable,
                bytes,
            } => {
                assert_eq!(start, Lsn(0));
                assert_eq!(durable, Lsn(5));
                assert_eq!(bytes, b"hello");
            }
            other => panic!("unexpected {other:?}"),
        }
        // mid-window read
        match t.read_from(Lsn(2), 2, Duration::ZERO) {
            TapRead::Bytes { start, bytes, .. } => {
                assert_eq!(start, Lsn(2));
                assert_eq!(bytes, b"ll");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reader_below_window_gets_gap() {
        let t = tap(100, 1024);
        t.push(Lsn(100), b"abc");
        assert_eq!(
            t.read_from(Lsn(50), 1024, Duration::ZERO),
            TapRead::Gap {
                window_start: Lsn(100)
            }
        );
    }

    #[test]
    fn caught_up_reader_times_out() {
        let t = tap(0, 1024);
        t.push(Lsn(0), b"x");
        assert_eq!(
            t.read_from(Lsn(1), 1024, Duration::from_millis(5)),
            TapRead::Timeout
        );
    }

    #[test]
    fn overflow_evicts_from_the_front() {
        let t = tap(0, 4);
        t.push(Lsn(0), b"abcdef");
        assert_eq!(
            t.read_from(Lsn(0), 16, Duration::ZERO),
            TapRead::Gap {
                window_start: Lsn(2)
            }
        );
        match t.read_from(Lsn(2), 16, Duration::ZERO) {
            TapRead::Bytes { bytes, .. } => assert_eq!(bytes, b"cdef"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn discontiguous_push_resets_the_window() {
        let t = tap(0, 1024);
        t.push(Lsn(0), b"abc");
        // a hole (e.g. the tap was attached mid-stream): never serve a
        // spliced range
        t.push(Lsn(10), b"xyz");
        assert_eq!(
            t.read_from(Lsn(0), 16, Duration::ZERO),
            TapRead::Gap {
                window_start: Lsn(10)
            }
        );
        match t.read_from(Lsn(10), 16, Duration::ZERO) {
            TapRead::Bytes { start, bytes, .. } => {
                assert_eq!(start, Lsn(10));
                assert_eq!(bytes, b"xyz");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn waiter_wakes_on_push() {
        let t = tap(0, 1024);
        let t2 = Arc::clone(&t);
        let reader = std::thread::spawn(move || t2.read_from(Lsn(0), 16, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        t.push(Lsn(0), b"late");
        match reader.join().expect("reader") {
            TapRead::Bytes { bytes, .. } => assert_eq!(bytes, b"late"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ack_lag_drains_covered_marks() {
        let t = tap(0, 1024);
        t.push(Lsn(0), b"aa");
        t.push(Lsn(2), b"bb");
        assert!(t.ack_lag(Lsn(1)).is_none(), "no mark fully covered yet");
        let lag = t.ack_lag(Lsn(4)).expect("both marks covered");
        assert!(lag < Duration::from_secs(5));
        assert!(t.ack_lag(Lsn(4)).is_none(), "marks drain once");
    }
}
