//! The durable-LSN watermark: the synchronization point of group commit.
//!
//! Under `CommitDurability::Group` a committer appends its commit record
//! to the log tail, releases the engine lock, and parks here until the
//! watermark — advanced by whoever forces the tail next, usually the
//! per-shard log flusher — passes the commit record's end-LSN. One real
//! force then acks every commit that arrived while the previous force
//! was in flight, which is exactly the amortization the paper's
//! per-commit `C_io` charge is missing.
//!
//! The watermark is monotone: [`DurableWatermark::advance`] only ever
//! moves it forward, so a waiter that observes `durable >= lsn` can ack
//! unconditionally. A failed force publishes an error instead
//! ([`DurableWatermark::fail`]) so waiters surface the I/O failure
//! rather than hanging; durability is checked *before* the error slot,
//! so commits the device already covers still ack.

use mmdb_sync::{ContentionSink, LockRank, RankedCondvar, RankedGuard, RankedMutex};
use mmdb_types::{Lsn, MmdbError, Result};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct WatermarkState {
    durable: Lsn,
    /// Set when a force fails after commits were appended; cleared by the
    /// next successful advance.
    error: Option<String>,
}

/// A monotone durable-LSN shared between the log manager (publisher) and
/// group committers (waiters). See the module docs.
#[derive(Debug)]
pub struct DurableWatermark {
    state: RankedMutex<WatermarkState>,
    cv: RankedCondvar,
}

impl Default for DurableWatermark {
    fn default() -> DurableWatermark {
        DurableWatermark::new(Lsn::ZERO)
    }
}

impl DurableWatermark {
    /// A watermark starting at `durable` (the log's durable LSN at open).
    pub fn new(durable: Lsn) -> DurableWatermark {
        DurableWatermark {
            state: RankedMutex::new(
                "log.watermark",
                LockRank::WATERMARK,
                WatermarkState {
                    durable,
                    error: None,
                },
            ),
            cv: RankedCondvar::new(),
        }
    }

    /// Attach a contention sink: contended acquisitions and hold times of
    /// the watermark lock surface as `sync.log.watermark.*` metrics.
    pub fn set_sink(&self, sink: Arc<dyn ContentionSink>) {
        self.state.set_sink(sink);
    }

    #[track_caller]
    fn lock(&self) -> RankedGuard<'_, WatermarkState> {
        self.state.lock()
    }

    /// The current durable LSN.
    pub fn get(&self) -> Lsn {
        self.lock().durable
    }

    /// Publishes durability through `to` and wakes every waiter. Monotone:
    /// a stale publisher can never move the watermark backwards. A
    /// successful force also clears any sticky error — the device is
    /// demonstrably writable again.
    pub fn advance(&self, to: Lsn) {
        let mut s = self.lock();
        if to > s.durable {
            s.durable = to;
        }
        s.error = None;
        drop(s);
        self.cv.notify_all();
    }

    /// Publishes a force failure and wakes every waiter so they can
    /// surface the error instead of waiting out their timeout.
    pub fn fail(&self, msg: String) {
        self.lock().error = Some(msg);
        self.cv.notify_all();
    }

    /// Blocks until the watermark reaches `lsn`, a force failure is
    /// published, or `timeout` elapses. Returns `Ok(true)` once durable,
    /// `Ok(false)` on timeout, and the published error otherwise.
    /// Durability is checked before the error slot: a commit the device
    /// already covers acks even if a later force failed.
    pub fn wait_for(&self, lsn: Lsn, timeout: Duration) -> Result<bool> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if s.durable >= lsn {
                return Ok(true);
            }
            if let Some(msg) = &s.error {
                return Err(MmdbError::Io(std::io::Error::other(msg.clone())));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            let (guard, _) = self.cv.wait_timeout(s, deadline - now);
            s = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advance_is_monotone_and_wakes_waiters() {
        let w = DurableWatermark::new(Lsn(10));
        assert_eq!(w.get(), Lsn(10));
        w.advance(Lsn(5));
        assert_eq!(w.get(), Lsn(10), "advance never moves backwards");
        w.advance(Lsn(20));
        assert_eq!(w.get(), Lsn(20));
        // already durable: returns immediately regardless of timeout
        assert!(w.wait_for(Lsn(20), Duration::ZERO).unwrap());
    }

    #[test]
    fn wait_times_out_below_the_watermark() {
        let w = DurableWatermark::new(Lsn::ZERO);
        assert!(!w.wait_for(Lsn(1), Duration::from_millis(10)).unwrap());
    }

    #[test]
    fn fail_wakes_waiters_with_the_error() {
        let w = Arc::new(DurableWatermark::new(Lsn::ZERO));
        let w2 = Arc::clone(&w);
        let waiter = std::thread::spawn(move || w2.wait_for(Lsn(100), Duration::from_secs(30)));
        // let the waiter park, then publish a failure
        std::thread::sleep(Duration::from_millis(20));
        w.fail("injected device failure".into());
        let err = waiter.join().expect("waiter panicked").unwrap_err();
        assert!(err.to_string().contains("injected device failure"));
        // a later successful force clears the error
        w.advance(Lsn(100));
        assert!(w.wait_for(Lsn(100), Duration::ZERO).unwrap());
    }

    #[test]
    fn durable_beats_error_for_covered_commits() {
        let w = DurableWatermark::new(Lsn(50));
        w.fail("later force failed".into());
        // a commit at or below the watermark still acks
        assert!(w.wait_for(Lsn(50), Duration::ZERO).unwrap());
        // one past it surfaces the failure
        assert!(w.wait_for(Lsn(51), Duration::from_millis(5)).is_err());
    }

    #[test]
    fn concurrent_waiters_release_on_advance() {
        let w = Arc::new(DurableWatermark::new(Lsn::ZERO));
        let waiters: Vec<_> = (1..=4u64)
            .map(|i| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || w.wait_for(Lsn(i * 10), Duration::from_secs(30)))
            })
            .collect();
        w.advance(Lsn(40));
        for h in waiters {
            assert!(h.join().expect("waiter panicked").unwrap());
        }
    }
}
