//! The log manager: a volatile (or stable) in-memory tail in front of a
//! durable log device.
//!
//! Records are appended to the tail and become durable when the tail is
//! *forced* to the device — except in [`LogMode::StableTail`] mode, where
//! the tail lives in stable RAM and records are durable the moment they
//! are appended (paper §4). The distinction is exactly what separates
//! `FASTFUZZY` from the LSN-gated algorithms: with a volatile tail, a
//! segment image may only be flushed once the log is durable past every
//! update the image contains.

use crate::device::LogDevice;
use crate::record::LogRecord;
use crate::ship::ShipTap;
use crate::watermark::DurableWatermark;
use mmdb_audit::{Audit, AuditEvent};
use mmdb_obs::{Obs, Timer};
use mmdb_types::{CostMeter, LogMode, Lsn, MmdbError, Result, SharedCostMeter};
use std::sync::Arc;

/// Statistics maintained by the log manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended since creation.
    pub records: u64,
    /// Bytes appended since creation.
    pub bytes: u64,
    /// Forces (tail flushes) performed.
    pub forces: u64,
    /// Bytes lost by the most recent crash (volatile tail discarded).
    pub lost_on_crash: u64,
}

/// The log manager. See the module docs.
pub struct LogManager {
    device: Box<dyn LogDevice>,
    tail: Vec<u8>,
    /// LSN of the first byte of the tail (== durable device length).
    tail_start: Lsn,
    mode: LogMode,
    meter: SharedCostMeter,
    stats: LogStats,
    /// Auto-force when the tail grows past this many bytes (group
    /// commit's backstop: bounds both tail memory and the window of
    /// commits a crash can lose under lazy durability).
    tail_threshold: Option<u64>,
    /// Modeled log-device latency added to every non-empty force,
    /// standing in for the paper-era rotational log disk (see
    /// [`LogManager::set_force_latency`]).
    force_latency: Option<std::time::Duration>,
    /// Shared durable-LSN watermark: published after every force so group
    /// committers parked outside the engine lock can ack (see
    /// [`DurableWatermark`]).
    watermark: Arc<DurableWatermark>,
    /// A tail-threshold force failure recorded inside [`append`]
    /// (which cannot return `Err`); surfaced by the next explicit force.
    sticky_error: Option<String>,
    /// Commit records currently sitting in the tail — the group size of
    /// the next force.
    commits_in_tail: u64,
    /// Log-shipping tap: forced bytes are mirrored here (post device
    /// append, pre `tail.clear()`) so the replication shipper reads
    /// them without a second device read.
    ship: Option<Arc<ShipTap>>,
    audit: Audit,
    obs: Obs,
}

/// A force whose device write already happened but whose completion —
/// the modeled-latency sleep, the `log.force` span, and the watermark
/// publish — has not. [`LogManager::force_group`] returns one so the
/// flusher can drop the engine lock before sleeping and publishing;
/// inline forces complete it immediately.
#[must_use = "completing the force publishes the watermark that releases group committers"]
pub struct PendingForce {
    durable: Lsn,
    latency: Option<std::time::Duration>,
    commits: u64,
    bytes: u64,
    watermark: Arc<DurableWatermark>,
    obs: Obs,
    timer: Timer,
}

impl PendingForce {
    /// The durable LSN this force established.
    pub fn durable(&self) -> Lsn {
        self.durable
    }

    /// Commit records covered by this force (the group size).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Tail bytes this force moved to the device.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Finishes the force: sleeps any modeled device latency, ends the
    /// `log.force` span, and publishes the watermark (waking waiters).
    /// Call this *outside* the engine lock on the group-commit path.
    pub fn complete(self) {
        if let Some(latency) = self.latency {
            std::thread::sleep(latency);
        }
        let (bytes, commits) = (self.bytes, self.commits);
        self.obs
            .span_end("log.force", "log.force_ns", self.timer, || {
                format!("{bytes} bytes, {commits} commits")
            });
        self.watermark.advance(self.durable);
    }
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager")
            .field("tail_start", &self.tail_start)
            .field("tail_len", &self.tail.len())
            .field("mode", &self.mode)
            .field("stats", &self.stats)
            .finish()
    }
}

impl LogManager {
    /// A log manager over `device`. `meter` is the *logging* cost meter:
    /// the paper excludes base logging costs from checkpointing overhead
    /// (§4: "we do not include the other recovery costs, such as data
    /// movement for the creation of the log"), so the engine gives the
    /// log manager its own meter, separate from the checkpointing meters.
    pub fn new(device: Box<dyn LogDevice>, mode: LogMode, meter: SharedCostMeter) -> LogManager {
        let tail_start = Lsn(device.len());
        // the tail is empty at construction, so the durable LSN is
        // tail_start in either mode
        let durable = tail_start;
        LogManager {
            device,
            tail: Vec::new(),
            tail_start,
            mode,
            meter,
            stats: LogStats::default(),
            tail_threshold: None,
            force_latency: None,
            watermark: Arc::new(DurableWatermark::new(durable)),
            sticky_error: None,
            commits_in_tail: 0,
            ship: None,
            audit: Audit::disabled(),
            obs: Obs::disabled(),
        }
    }

    /// Attaches a log-shipping tap: every subsequent force mirrors the
    /// just-appended bytes into the tap's window. Bytes forced before
    /// attachment are *not* replayed into the tap — a reader below the
    /// window falls back to [`LogManager::read_range_aligned`].
    pub fn set_ship_tap(&mut self, tap: Arc<ShipTap>) {
        self.ship = Some(tap);
    }

    /// Reads durable log bytes starting at `from`, cut back to the last
    /// whole record frame, returning at most `max_bytes` raw bytes. The
    /// device-read fallback for a shipper that has fallen behind the
    /// tap window. Fails if `from` has been truncated away (the reader
    /// must re-seed from an archive) or lies past the durable horizon.
    pub fn read_range_aligned(&mut self, from: Lsn, max_bytes: usize) -> Result<Vec<u8>> {
        let start = self.start_lsn();
        if from < start {
            return Err(MmdbError::Invalid(format!(
                "log position {} already truncated (log starts at {})",
                from.raw(),
                start.raw()
            )));
        }
        let durable = self.tail_start;
        if from >= durable {
            return Ok(Vec::new());
        }
        let want = ((durable.raw() - from.raw()) as usize).min(max_bytes);
        let mut buf = vec![0u8; want];
        self.device.read_at(from.raw(), &mut buf)?;
        // cut back to whole frames so the receiver never sees a torn
        // record; a window smaller than one frame yields an empty read
        let mut end = 0;
        while end < buf.len() {
            match LogRecord::decode(&buf[end..]) {
                Ok((_, used)) => end += used,
                Err(_) => break,
            }
        }
        buf.truncate(end);
        Ok(buf)
    }

    /// The shared durable-LSN watermark. Group committers clone this
    /// handle, append their commit record, release the engine lock, and
    /// wait here for the flusher's next force to cover their LSN.
    pub fn watermark(&self) -> Arc<DurableWatermark> {
        Arc::clone(&self.watermark)
    }

    /// Models a slow log device: every force or drain that actually
    /// moves tail bytes to the device additionally sleeps for `latency`.
    /// The paper's evaluation parameterizes I/O costs instead of timing
    /// real hardware; this is the wall-clock counterpart for studying
    /// commit serialization (the device write happens inside the
    /// engine's critical section, so its latency bounds single-log
    /// commit throughput). `None` (the default) adds nothing; empty
    /// forces never touch the modeled device.
    pub fn set_force_latency(&mut self, latency: Option<std::time::Duration>) {
        self.force_latency = latency;
    }

    /// Routes protocol events (durable-horizon advances) to `audit`.
    pub fn set_audit(&mut self, audit: Audit) {
        self.audit = audit;
    }

    /// Routes telemetry (force latency, truncations) to `obs`, and points
    /// the watermark lock's contention counters at the same registry.
    pub fn set_obs(&mut self, obs: Obs) {
        if let Some(sink) = obs.contention_sink() {
            self.watermark.set_sink(sink);
        }
        self.obs = obs;
    }

    /// Bounds the volatile tail: once an append pushes it past
    /// `bytes`, the tail is forced to the device (charged to the logging
    /// meter, like any routine force). `None` disables the bound.
    pub fn set_tail_threshold(&mut self, bytes: Option<u64>) {
        self.tail_threshold = bytes;
    }

    /// The log-tail mode.
    pub fn mode(&self) -> LogMode {
        self.mode
    }

    /// LSN that the next appended record will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.tail_start.advance(self.tail.len() as u64)
    }

    /// The LSN up to which the log is durable. Appends at or past this
    /// LSN would be lost by a crash (volatile tail) — with a stable tail,
    /// everything appended is durable.
    pub fn durable_lsn(&self) -> Lsn {
        match self.mode {
            LogMode::VolatileTail => self.tail_start,
            LogMode::StableTail => self.next_lsn(),
        }
    }

    /// Is the log durable through `lsn` (exclusive)? This is the WAL gate
    /// the LSN-using checkpointers check before flushing a segment image.
    pub fn is_durable(&self, lsn: Lsn) -> bool {
        self.durable_lsn() >= lsn
    }

    /// Appends a record to the tail, returning its LSN. Charges the data
    /// movement of copying the record into the tail to the logging meter.
    /// If a tail threshold is set and exceeded, the tail is forced; a
    /// failure of that force is recorded as a *sticky* error surfaced by
    /// the next explicit force or commit — never silently dropped (the
    /// device keeps its durable length consistent either way).
    pub fn append(&mut self, rec: &LogRecord) -> Lsn {
        let lsn = self.next_lsn();
        rec.encode_into(&mut self.tail);
        self.meter.move_words(rec.encoded_words());
        self.stats.records += 1;
        self.stats.bytes += rec.encoded_len() as u64;
        if matches!(rec, LogRecord::Commit { .. }) {
            self.commits_in_tail += 1;
        }
        if let Some(limit) = self.tail_threshold {
            if self.tail.len() as u64 >= limit {
                if let Err(e) = self.force() {
                    self.sticky_error = Some(format!("deferred tail-threshold force: {e}"));
                    self.obs.counter("log.deferred_force_errors", 1);
                }
            }
        }
        lsn
    }

    /// Rethrows a tail-threshold force failure recorded by
    /// [`append`](Self::append), exactly once.
    fn take_sticky(&mut self) -> Result<()> {
        match self.sticky_error.take() {
            Some(msg) => Err(MmdbError::Io(std::io::Error::other(msg))),
            None => Ok(()),
        }
    }

    /// Appends a record and forces the tail (commit with synchronous
    /// durability).
    pub fn append_forced(&mut self, rec: &LogRecord) -> Result<Lsn> {
        let lsn = self.append(rec);
        self.force()?;
        Ok(lsn)
    }

    /// Forces the tail to the device: everything appended so far becomes
    /// durable. Charges one I/O initiation (to the logging meter) when
    /// there is anything to flush. With a stable tail the contents are
    /// already durable (battery-backed RAM), so nothing is charged — but
    /// the tail is still drained to the device, which stands in for the
    /// stable RAM across process restarts.
    pub fn force(&mut self) -> Result<()> {
        if self.mode == LogMode::StableTail {
            return self.drain_stable_tail();
        }
        if let Some(pending) = self.flush_tail_begin(true)? {
            pending.complete();
        }
        Ok(())
    }

    /// The group-commit force: flushes the tail to the device but defers
    /// the completion (modeled latency + watermark publish) to the
    /// returned [`PendingForce`], which the flusher completes *after*
    /// releasing the engine lock. `Ok(None)` means there was nothing to
    /// flush (the watermark is published anyway, so a waiter whose LSN is
    /// already durable never strands). With a stable tail, appends are
    /// durable immediately and this degenerates to a drain.
    pub fn force_group(&mut self) -> Result<Option<PendingForce>> {
        if self.mode == LogMode::StableTail {
            self.drain_stable_tail()?;
            return Ok(None);
        }
        self.flush_tail_begin(true)
    }

    /// Like [`force`](Self::force) but callable by the *checkpointer*,
    /// charging the I/O to the checkpointer's own meter (a checkpoint-
    /// induced log force is checkpointing overhead, unlike routine commit
    /// forces). Free with a stable tail.
    pub fn force_charged_to(&mut self, meter: &CostMeter) -> Result<()> {
        if self.mode == LogMode::StableTail {
            return self.drain_stable_tail();
        }
        self.take_sticky()?;
        if self.tail.is_empty() {
            self.watermark.advance(self.durable_lsn());
            return Ok(());
        }
        meter.io_op();
        if let Some(pending) = self.flush_tail_begin(false)? {
            pending.complete();
        }
        Ok(())
    }

    /// First half of a force: surfaces any sticky append-path error,
    /// writes the tail to the device, advances the durable horizon and
    /// emits the `LogForced` audit event. The second half — modeled
    /// latency, span, watermark publish — lives in
    /// [`PendingForce::complete`] so the group-commit flusher can run it
    /// outside the engine lock.
    fn flush_tail_begin(&mut self, charge: bool) -> Result<Option<PendingForce>> {
        self.take_sticky()?;
        if self.tail.is_empty() {
            // nothing new to make durable, but publish the watermark so a
            // group waiter whose commit an earlier force already covered
            // is released immediately
            self.watermark.advance(self.durable_lsn());
            return Ok(None);
        }
        if charge {
            self.meter.io_op();
        }
        let bytes = self.tail.len() as u64;
        let timer = self.obs.timer();
        self.device.append(&self.tail)?;
        if let Some(tap) = &self.ship {
            // the bytes are device-durable as of the append above: safe
            // to expose to the shipper before the tail is cleared
            tap.push(self.tail_start, &self.tail);
        }
        self.tail_start = self.tail_start.advance(bytes);
        self.tail.clear();
        self.stats.forces += 1;
        let commits = std::mem::take(&mut self.commits_in_tail);
        self.audit.emit(|| AuditEvent::LogForced {
            durable: self.durable_lsn(),
        });
        Ok(Some(PendingForce {
            durable: self.durable_lsn(),
            latency: self.force_latency,
            commits,
            bytes,
            watermark: Arc::clone(&self.watermark),
            obs: self.obs.clone(),
            timer,
        }))
    }

    /// In stable-tail mode, migrates the (already durable) tail contents
    /// to the device so that scanners can read them. Represents the
    /// stable RAM being drained to the log disks in the background; not
    /// charged as checkpointing work.
    pub fn drain_stable_tail(&mut self) -> Result<()> {
        debug_assert_eq!(self.mode, LogMode::StableTail);
        self.take_sticky()?;
        if self.tail.is_empty() {
            self.watermark.advance(self.durable_lsn());
            return Ok(());
        }
        let drained = self.tail.len() as u64;
        let t = self.obs.timer();
        self.device.append(&self.tail)?;
        if let Some(tap) = &self.ship {
            tap.push(self.tail_start, &self.tail);
        }
        if let Some(latency) = self.force_latency {
            std::thread::sleep(latency);
        }
        self.obs.span_end("log.force", "log.force_ns", t, || {
            format!("{drained} bytes (stable-tail drain)")
        });
        self.tail_start = self.tail_start.advance(self.tail.len() as u64);
        self.tail.clear();
        self.commits_in_tail = 0;
        self.audit.emit(|| AuditEvent::LogForced {
            durable: self.durable_lsn(),
        });
        self.watermark.advance(self.durable_lsn());
        Ok(())
    }

    /// Simulates a system failure: the volatile tail is lost; a stable
    /// tail survives (it is drained to the device so recovery can scan
    /// it). Returns the number of bytes lost.
    pub fn crash(&mut self) -> Result<u64> {
        match self.mode {
            LogMode::VolatileTail => {
                let lost = self.tail.len() as u64;
                self.tail.clear();
                self.commits_in_tail = 0;
                self.stats.lost_on_crash = lost;
                Ok(lost)
            }
            LogMode::StableTail => {
                self.drain_stable_tail()?;
                self.stats.lost_on_crash = 0;
                Ok(0)
            }
        }
    }

    /// Discards the log before `lsn` (typically the replay floor of the
    /// older of the two complete ping-pong checkpoints — everything
    /// before it can never be needed by recovery again). The truncation
    /// point is clamped to the durable portion; the volatile tail is
    /// never affected. Actual space reclamation depends on the device
    /// (segmented logs delete whole chunks; plain files ignore it).
    pub fn truncate_prefix(&mut self, lsn: Lsn) -> Result<()> {
        let point = lsn.min(self.tail_start);
        let t = self.obs.timer();
        self.device.truncate_prefix(point.raw())?;
        self.obs.counter("log.truncations", 1);
        self.obs.span_end("log.truncate", "log.truncate_ns", t, || {
            format!("prefix < {}", point.raw())
        });
        Ok(())
    }

    /// The device's first readable LSN (0 unless truncated).
    pub fn start_lsn(&self) -> Lsn {
        Lsn(self.device.start_offset())
    }

    /// Current statistics.
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    /// Bytes currently sitting in the (volatile or stable) tail.
    pub fn tail_len(&self) -> u64 {
        self.tail.len() as u64
    }

    /// Forces the tail down and seals the device's active chunk so it
    /// becomes cold (compaction- and compression-eligible). Returns
    /// `true` if the device actually rotated; unchunked devices always
    /// report `false`.
    pub fn rotate(&mut self) -> Result<bool> {
        self.force()?;
        let rotated = self.device.rotate()?;
        if rotated {
            self.obs.counter("log.rotations", 1);
        }
        Ok(rotated)
    }

    /// Access to the underlying device (recovery scans it after a crash).
    pub fn device_mut(&mut self) -> &mut dyn LogDevice {
        &mut *self.device
    }

    /// Immutable access to the underlying device (chunk-map inspection).
    pub fn device(&self) -> &dyn LogDevice {
        &*self.device
    }

    /// Consumes the manager, returning the device.
    pub fn into_device(self) -> Box<dyn LogDevice> {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemLogDevice;
    use mmdb_types::{CostCategory, CostMeter, CostParams, TxnId};

    fn mgr(mode: LogMode) -> LogManager {
        LogManager::new(
            Box::new(MemLogDevice::new()),
            mode,
            CostMeter::shared(CostParams::default()),
        )
    }

    fn commit(txn: u64) -> LogRecord {
        LogRecord::Commit { txn: TxnId(txn) }
    }

    #[test]
    fn lsns_are_byte_offsets() {
        let mut m = mgr(LogMode::VolatileTail);
        let a = m.append(&commit(1));
        let b = m.append(&commit(2));
        assert_eq!(a, Lsn(0));
        assert_eq!(b, Lsn(commit(1).encoded_len() as u64));
        assert_eq!(m.next_lsn(), b.advance(commit(2).encoded_len() as u64));
    }

    #[test]
    fn volatile_tail_durability_gate() {
        let mut m = mgr(LogMode::VolatileTail);
        let a = m.append(&commit(1));
        assert_eq!(m.durable_lsn(), Lsn::ZERO);
        assert!(!m.is_durable(a.advance(1)));
        m.force().unwrap();
        assert_eq!(m.durable_lsn(), m.next_lsn());
        assert!(m.is_durable(m.next_lsn()));
    }

    #[test]
    fn stable_tail_is_immediately_durable() {
        let mut m = mgr(LogMode::StableTail);
        m.append(&commit(1));
        assert_eq!(m.durable_lsn(), m.next_lsn());
        assert!(m.is_durable(m.next_lsn()));
    }

    #[test]
    fn crash_loses_volatile_tail_only() {
        let mut m = mgr(LogMode::VolatileTail);
        m.append(&commit(1));
        m.force().unwrap();
        m.append(&commit(2));
        let lost = m.crash().unwrap();
        assert_eq!(lost, commit(2).encoded_len() as u64);
        assert_eq!(m.device_mut().len(), commit(1).encoded_len() as u64);
    }

    #[test]
    fn crash_preserves_stable_tail() {
        let mut m = mgr(LogMode::StableTail);
        m.append(&commit(1));
        m.append(&commit(2));
        let lost = m.crash().unwrap();
        assert_eq!(lost, 0);
        assert_eq!(m.device_mut().len(), 2 * commit(1).encoded_len() as u64);
    }

    #[test]
    fn force_charges_one_io_when_nonempty() {
        let meter = CostMeter::shared(CostParams::default());
        let mut m = LogManager::new(
            Box::new(MemLogDevice::new()),
            LogMode::VolatileTail,
            meter.clone(),
        );
        m.force().unwrap(); // empty: no io
        assert_eq!(meter.op_count(CostCategory::Io), 0);
        m.append(&commit(1));
        m.force().unwrap();
        assert_eq!(meter.op_count(CostCategory::Io), 1);
    }

    #[test]
    fn force_charged_to_bills_the_checkpointer() {
        let log_meter = CostMeter::shared(CostParams::default());
        let ckpt_meter = CostMeter::new(CostParams::default());
        let mut m = LogManager::new(
            Box::new(MemLogDevice::new()),
            LogMode::VolatileTail,
            log_meter.clone(),
        );
        m.append(&commit(1));
        let log_io_before = log_meter.op_count(CostCategory::Io);
        m.force_charged_to(&ckpt_meter).unwrap();
        assert_eq!(ckpt_meter.op_count(CostCategory::Io), 1);
        assert_eq!(log_meter.op_count(CostCategory::Io), log_io_before);
        assert_eq!(m.durable_lsn(), m.next_lsn());
    }

    #[test]
    fn append_charges_move_to_logging_meter() {
        let meter = CostMeter::shared(CostParams::default());
        let mut m = LogManager::new(
            Box::new(MemLogDevice::new()),
            LogMode::VolatileTail,
            meter.clone(),
        );
        let rec = commit(1);
        m.append(&rec);
        assert_eq!(
            meter.snapshot().get(CostCategory::Move),
            rec.encoded_words()
        );
    }

    #[test]
    fn stats_track_activity() {
        let mut m = mgr(LogMode::VolatileTail);
        m.append(&commit(1));
        m.append(&commit(2));
        m.force().unwrap();
        let s = m.stats();
        assert_eq!(s.records, 2);
        assert_eq!(s.bytes, 2 * commit(1).encoded_len() as u64);
        assert_eq!(s.forces, 1);
    }

    #[test]
    fn force_latency_models_a_slow_log_device() {
        let mut m = mgr(LogMode::VolatileTail);
        m.set_force_latency(Some(std::time::Duration::from_millis(5)));
        let start = std::time::Instant::now();
        m.append_forced(&commit(1)).unwrap();
        m.append_forced(&commit(2)).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(10));
        // an empty force never touches the modeled device
        let start = std::time::Instant::now();
        m.force().unwrap();
        assert!(start.elapsed() < std::time::Duration::from_millis(5));
    }

    #[test]
    fn append_forced_is_durable() {
        let mut m = mgr(LogMode::VolatileTail);
        let lsn = m.append_forced(&commit(9)).unwrap();
        assert!(m.is_durable(lsn.advance(commit(9).encoded_len() as u64)));
        assert_eq!(m.tail_len(), 0);
    }

    #[test]
    fn tail_threshold_bounds_the_tail() {
        let mut m = mgr(LogMode::VolatileTail);
        m.set_tail_threshold(Some(60));
        // each commit record is 25 bytes; the third append crosses 60
        m.append(&commit(1));
        m.append(&commit(2));
        assert_eq!(
            m.durable_lsn(),
            Lsn::ZERO,
            "below threshold: still volatile"
        );
        m.append(&commit(3));
        assert_eq!(m.tail_len(), 0, "threshold forced the tail");
        assert_eq!(m.durable_lsn(), m.next_lsn());
        // disabling stops the auto-force
        m.set_tail_threshold(None);
        for i in 0..10 {
            m.append(&commit(100 + i));
        }
        assert!(m.tail_len() > 0);
    }

    #[test]
    fn threshold_force_failure_is_sticky_not_swallowed() {
        let (dev, control) = crate::device::FlakyLogDevice::new();
        let mut m = LogManager::new(
            Box::new(dev),
            LogMode::VolatileTail,
            CostMeter::shared(CostParams::default()),
        );
        m.set_tail_threshold(Some(40));
        control.fail_after_next(0); // every append now fails
        m.append(&commit(1));
        m.append(&commit(2)); // crosses 40 bytes: deferred force fails
        assert!(m.tail_len() > 0, "failed force must keep the tail intact");
        // the failure surfaces exactly once, on the next explicit force
        let err = m.force().expect_err("sticky error must surface");
        assert!(err.to_string().contains("deferred tail-threshold force"));
        // the device healed: the retry makes everything durable again
        control.heal();
        m.force().unwrap();
        assert_eq!(m.durable_lsn(), m.next_lsn());
        assert_eq!(m.tail_len(), 0);
    }

    #[test]
    fn sticky_error_surfaces_through_force_charged_to() {
        let (dev, control) = crate::device::FlakyLogDevice::new();
        let mut m = LogManager::new(
            Box::new(dev),
            LogMode::VolatileTail,
            CostMeter::shared(CostParams::default()),
        );
        m.set_tail_threshold(Some(10));
        control.fail_after_next(0);
        m.append(&commit(1)); // 25 bytes ≥ 10: deferred force fails
        let ckpt_meter = CostMeter::new(CostParams::default());
        assert!(m.force_charged_to(&ckpt_meter).is_err());
        assert_eq!(
            ckpt_meter.op_count(CostCategory::Io),
            0,
            "surfacing a sticky error must not charge the checkpointer"
        );
    }

    #[test]
    fn force_group_defers_the_watermark_publish() {
        let mut m = mgr(LogMode::VolatileTail);
        let w = m.watermark();
        let a = m.append(&commit(1));
        m.append(&commit(2));
        let end = m.next_lsn();
        let pending = m.force_group().unwrap().expect("non-empty tail");
        // device-side durability is immediate...
        assert_eq!(m.durable_lsn(), end);
        assert_eq!(pending.durable(), end);
        assert_eq!(pending.commits(), 2, "group size counts commit records");
        // ...but waiters are only released by complete()
        assert_eq!(w.get(), Lsn::ZERO);
        assert!(!w.wait_for(a.advance(1), std::time::Duration::ZERO).unwrap());
        pending.complete();
        assert_eq!(w.get(), end);
        assert!(w.wait_for(end, std::time::Duration::ZERO).unwrap());
    }

    #[test]
    fn empty_force_group_publishes_the_watermark() {
        let mut m = mgr(LogMode::VolatileTail);
        m.append_forced(&commit(1)).unwrap();
        let end = m.next_lsn();
        // a fresh watermark observer would miss the inline force above
        // only if an empty group force failed to publish
        assert!(m.force_group().unwrap().is_none());
        assert_eq!(m.watermark().get(), end);
    }

    #[test]
    fn inline_force_publishes_the_watermark() {
        let mut m = mgr(LogMode::VolatileTail);
        let w = m.watermark();
        m.append(&commit(7));
        m.force().unwrap();
        assert_eq!(w.get(), m.durable_lsn());
    }

    #[test]
    fn reopen_continues_lsn_space() {
        let mut dev = MemLogDevice::new();
        dev.append(b"x".repeat(100).as_slice()).unwrap();
        let m = LogManager::new(
            Box::new(dev),
            LogMode::VolatileTail,
            CostMeter::shared(CostParams::default()),
        );
        assert_eq!(m.next_lsn(), Lsn(100));
        assert_eq!(m.durable_lsn(), Lsn(100));
    }
}
