//! Log scanning for recovery.
//!
//! After a system failure the recovery manager scans the durable log
//! (paper §3.3): *backward* to locate the begin-checkpoint marker of the
//! most recently completed checkpoint (skipping incomplete ones), possibly
//! further backward to the begin record of the oldest transaction active
//! at that marker (fuzzy checkpoints), then *forward* to replay committed
//! updates.
//!
//! The scanner tolerates a torn final flush: on construction it walks the
//! log forward and treats the first undecodable frame as the end of the
//! durable log. Everything before it is intact (each frame is
//! checksummed).

use crate::device::LogDevice;
use crate::record::LogRecord;
use mmdb_types::{CheckpointId, Lsn, Result, Timestamp, TxnId};

/// Identity and position of a completed checkpoint found in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMark {
    /// The checkpoint id.
    pub ckpt: CheckpointId,
    /// LSN of its begin-checkpoint record.
    pub begin_lsn: Lsn,
    /// The checkpoint timestamp `τ(CH)`.
    pub tau: Timestamp,
    /// Transactions active when the begin marker was written.
    pub active: Vec<TxnId>,
}

/// An in-memory view of the durable log, validated up to the first torn
/// or corrupt frame.
#[derive(Debug)]
pub struct LogScanner {
    bytes: Vec<u8>,
    /// Length of the validated prefix of `bytes` (ends at the last
    /// intact record).
    valid_len: usize,
    /// Global LSN of `bytes[0]` — non-zero when the log's obsolete
    /// prefix has been truncated away.
    base: u64,
}

impl LogScanner {
    /// Reads and validates the durable log from `device` (honoring its
    /// truncation point: LSNs stay global).
    pub fn from_device(device: &mut dyn LogDevice) -> Result<LogScanner> {
        let base = device.start_offset();
        Ok(LogScanner::from_bytes_at(device.read_all()?, base))
    }

    /// Builds a scanner over raw log bytes starting at LSN 0.
    pub fn from_bytes(bytes: Vec<u8>) -> LogScanner {
        LogScanner::from_bytes_at(bytes, 0)
    }

    /// Builds a scanner over raw log bytes whose first byte sits at
    /// global LSN `base` (must be a record boundary).
    pub fn from_bytes_at(bytes: Vec<u8>, base: u64) -> LogScanner {
        let mut pos = 0usize;
        while pos < bytes.len() {
            match LogRecord::decode(&bytes[pos..]) {
                Ok((_, used)) => pos += used,
                Err(_) => break, // torn tail: stop here
            }
        }
        LogScanner {
            bytes,
            valid_len: pos,
            base,
        }
    }

    /// Length in bytes of the validated log window.
    pub fn valid_len(&self) -> u64 {
        self.valid_len as u64
    }

    /// Global LSN of the first scannable record.
    pub fn base_lsn(&self) -> Lsn {
        Lsn(self.base)
    }

    /// Global LSN just past the last intact record.
    pub fn end_lsn(&self) -> Lsn {
        Lsn(self.base + self.valid_len as u64)
    }

    /// Log bulk in words of the validated prefix — the recovery-time
    /// metric the paper uses (§4: recovery reads the backup plus "the
    /// appropriate portion of the log").
    pub fn valid_words(&self) -> u64 {
        (self.valid_len as u64).div_ceil(4)
    }

    /// Iterates records forward starting at `from` (must be a record
    /// boundary; [`Lsn::ZERO`] is always valid).
    pub fn forward_from(&self, from: Lsn) -> ForwardIter<'_> {
        ForwardIter {
            scanner: self,
            pos: (from.raw().saturating_sub(self.base) as usize).min(self.valid_len),
        }
    }

    /// Iterates records backward starting from the end of the validated
    /// prefix.
    pub fn backward(&self) -> BackwardIter<'_> {
        BackwardIter {
            scanner: self,
            end: self.valid_len,
        }
    }

    /// Finds the most recently *completed* checkpoint: scans backward,
    /// remembering end-checkpoint markers, and returns the first
    /// begin-checkpoint marker whose end marker has been seen
    /// (paper §3.3 and its footnote).
    pub fn last_complete_checkpoint(&self) -> Option<CheckpointMark> {
        let mut completed: Vec<CheckpointId> = Vec::new();
        for (lsn, rec) in self.backward() {
            match rec {
                LogRecord::EndCheckpoint { ckpt } => completed.push(ckpt),
                LogRecord::BeginCheckpoint { ckpt, tau, active } if completed.contains(&ckpt) => {
                    return Some(CheckpointMark {
                        ckpt,
                        begin_lsn: lsn,
                        tau,
                        active,
                    });
                }
                // an incomplete checkpoint: skip and keep scanning
                _ => {}
            }
        }
        None
    }

    /// Finds the LSN to start forward replay from, for a checkpoint whose
    /// begin marker listed `active` transactions: the smallest begin-LSN
    /// among those transactions, or the marker itself when the list is
    /// empty (paper §3.3: fuzzy checkpoints must scan "until the beginning
    /// of the earliest transaction in the active transaction list").
    pub fn replay_start(&self, mark: &CheckpointMark) -> Lsn {
        if mark.active.is_empty() {
            return mark.begin_lsn;
        }
        let mut remaining: Vec<TxnId> = mark.active.clone();
        let mut earliest = mark.begin_lsn;
        for (lsn, rec) in self.backward() {
            if lsn >= mark.begin_lsn {
                continue;
            }
            if let LogRecord::TxnBegin { txn, .. } = rec {
                if let Some(i) = remaining.iter().position(|t| *t == txn) {
                    remaining.swap_remove(i);
                    earliest = lsn;
                    if remaining.is_empty() {
                        break;
                    }
                }
            }
        }
        earliest
    }

    /// Words of log from `from` to the end of the validated window — the
    /// portion recovery must read and replay.
    pub fn words_from(&self, from: Lsn) -> u64 {
        (self.base + self.valid_len as u64)
            .saturating_sub(from.raw())
            .div_ceil(4)
    }
}

/// Forward record iterator. Yields `(lsn, record)`.
#[derive(Debug)]
pub struct ForwardIter<'a> {
    scanner: &'a LogScanner,
    pos: usize,
}

impl Iterator for ForwardIter<'_> {
    type Item = (Lsn, LogRecord);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.scanner.valid_len {
            return None;
        }
        match LogRecord::decode(&self.scanner.bytes[self.pos..self.scanner.valid_len]) {
            Ok((rec, used)) => {
                let lsn = Lsn(self.scanner.base + self.pos as u64);
                self.pos += used;
                Some((lsn, rec))
            }
            Err(_) => {
                // `from` was not a record boundary, or validation already
                // ended the log here; either way there is nothing more.
                self.pos = self.scanner.valid_len;
                None
            }
        }
    }
}

/// Backward record iterator. Yields `(lsn, record)` from newest to oldest.
#[derive(Debug)]
pub struct BackwardIter<'a> {
    scanner: &'a LogScanner,
    end: usize,
}

impl Iterator for BackwardIter<'_> {
    type Item = (Lsn, LogRecord);

    fn next(&mut self) -> Option<Self::Item> {
        if self.end == 0 {
            return None;
        }
        let start = LogRecord::frame_start_before(&self.scanner.bytes, self.end).ok()?;
        let (rec, _) = LogRecord::decode(&self.scanner.bytes[start..self.end]).ok()?;
        self.end = start;
        Some((Lsn(self.scanner.base + start as u64), rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::RecordId;

    fn build(records: &[LogRecord]) -> (Vec<u8>, Vec<Lsn>) {
        let mut buf = Vec::new();
        let mut lsns = Vec::new();
        for r in records {
            lsns.push(Lsn(buf.len() as u64));
            r.encode_into(&mut buf);
        }
        (buf, lsns)
    }

    fn sample_log() -> Vec<LogRecord> {
        vec![
            LogRecord::TxnBegin {
                txn: TxnId(1),
                tau: Timestamp(1),
            },
            LogRecord::Update {
                txn: TxnId(1),
                record: RecordId(10),
                value: vec![1, 2],
            },
            LogRecord::BeginCheckpoint {
                ckpt: CheckpointId(1),
                tau: Timestamp(2),
                active: vec![TxnId(1)],
            },
            LogRecord::Commit { txn: TxnId(1) },
            LogRecord::EndCheckpoint {
                ckpt: CheckpointId(1),
            },
            LogRecord::BeginCheckpoint {
                ckpt: CheckpointId(2),
                tau: Timestamp(3),
                active: vec![],
            },
            // checkpoint 2 never completes (crash mid-checkpoint)
        ]
    }

    #[test]
    fn forward_and_backward_agree() {
        let recs = sample_log();
        let (buf, lsns) = build(&recs);
        let sc = LogScanner::from_bytes(buf);

        let fwd: Vec<_> = sc.forward_from(Lsn::ZERO).collect();
        assert_eq!(fwd.len(), recs.len());
        for ((lsn, rec), (want_lsn, want_rec)) in fwd.iter().zip(lsns.iter().zip(&recs)) {
            assert_eq!(lsn, want_lsn);
            assert_eq!(rec, want_rec);
        }

        let mut bwd: Vec<_> = sc.backward().collect();
        bwd.reverse();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn forward_from_mid_lsn() {
        let recs = sample_log();
        let (buf, lsns) = build(&recs);
        let sc = LogScanner::from_bytes(buf);
        let fwd: Vec<_> = sc.forward_from(lsns[3]).collect();
        assert_eq!(fwd.len(), 3);
        assert_eq!(fwd[0].1, recs[3]);
    }

    #[test]
    fn skips_incomplete_checkpoint() {
        let (buf, lsns) = build(&sample_log());
        let sc = LogScanner::from_bytes(buf);
        let mark = sc.last_complete_checkpoint().unwrap();
        assert_eq!(mark.ckpt, CheckpointId(1), "ckpt 2 has no end marker");
        assert_eq!(mark.begin_lsn, lsns[2]);
        assert_eq!(mark.active, vec![TxnId(1)]);
    }

    #[test]
    fn replay_start_extends_to_oldest_active_txn() {
        let (buf, lsns) = build(&sample_log());
        let sc = LogScanner::from_bytes(buf);
        let mark = sc.last_complete_checkpoint().unwrap();
        // txn 1 was active at the marker; its begin is record 0
        assert_eq!(sc.replay_start(&mark), lsns[0]);
    }

    #[test]
    fn replay_start_is_marker_when_no_active() {
        let recs = vec![
            LogRecord::BeginCheckpoint {
                ckpt: CheckpointId(5),
                tau: Timestamp(9),
                active: vec![],
            },
            LogRecord::EndCheckpoint {
                ckpt: CheckpointId(5),
            },
        ];
        let (buf, lsns) = build(&recs);
        let sc = LogScanner::from_bytes(buf);
        let mark = sc.last_complete_checkpoint().unwrap();
        assert_eq!(sc.replay_start(&mark), lsns[0]);
    }

    #[test]
    fn no_checkpoint_returns_none() {
        let (buf, _) = build(&[LogRecord::Commit { txn: TxnId(1) }]);
        let sc = LogScanner::from_bytes(buf);
        assert!(sc.last_complete_checkpoint().is_none());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let recs = sample_log();
        let (mut buf, _) = build(&recs);
        let full = buf.len();
        // append a record and tear it
        LogRecord::Commit { txn: TxnId(99) }.encode_into(&mut buf);
        buf.truncate(full + 5);
        let sc = LogScanner::from_bytes(buf);
        assert_eq!(sc.valid_len() as usize, full);
        assert_eq!(sc.forward_from(Lsn::ZERO).count(), recs.len());
        assert_eq!(sc.backward().count(), recs.len());
    }

    #[test]
    fn empty_log() {
        let sc = LogScanner::from_bytes(Vec::new());
        assert_eq!(sc.valid_len(), 0);
        assert_eq!(sc.forward_from(Lsn::ZERO).count(), 0);
        assert_eq!(sc.backward().count(), 0);
        assert!(sc.last_complete_checkpoint().is_none());
    }

    #[test]
    fn words_from_measures_replay_bulk() {
        let (buf, lsns) = build(&sample_log());
        let total = buf.len() as u64;
        let sc = LogScanner::from_bytes(buf);
        assert_eq!(sc.words_from(Lsn::ZERO), total.div_ceil(4));
        assert_eq!(sc.words_from(lsns[5]), (total - lsns[5].raw()).div_ceil(4));
        assert_eq!(sc.valid_words(), total.div_ceil(4));
    }

    #[test]
    fn base_offset_preserves_global_lsns() {
        // Simulate a truncated log: the same records, but the scanner is
        // told the bytes start at global LSN 1000.
        let recs = sample_log();
        let (buf, lsns) = build(&recs);
        let sc = LogScanner::from_bytes_at(buf, 1000);
        assert_eq!(sc.base_lsn(), Lsn(1000));

        let fwd: Vec<_> = sc.forward_from(Lsn::ZERO).collect();
        assert_eq!(fwd.len(), recs.len());
        for ((lsn, _), want) in fwd.iter().zip(&lsns) {
            assert_eq!(lsn.raw(), want.raw() + 1000);
        }
        // forward_from with a global LSN lands mid-stream correctly
        let from_third: Vec<_> = sc.forward_from(Lsn(lsns[3].raw() + 1000)).collect();
        assert_eq!(from_third.len(), recs.len() - 3);
        // backward scan reports global LSNs too
        let (last_lsn, _) = sc.backward().next().unwrap();
        assert_eq!(last_lsn.raw(), lsns.last().unwrap().raw() + 1000);
        // marker location and replay bulk use the global space
        let mark = sc.last_complete_checkpoint().unwrap();
        assert_eq!(mark.begin_lsn.raw(), lsns[2].raw() + 1000);
        assert_eq!(
            sc.words_from(mark.begin_lsn),
            (sc.end_lsn().raw() - mark.begin_lsn.raw()).div_ceil(4)
        );
    }

    #[test]
    fn multiple_complete_checkpoints_newest_wins() {
        let recs = vec![
            LogRecord::BeginCheckpoint {
                ckpt: CheckpointId(1),
                tau: Timestamp(1),
                active: vec![],
            },
            LogRecord::EndCheckpoint {
                ckpt: CheckpointId(1),
            },
            LogRecord::BeginCheckpoint {
                ckpt: CheckpointId(2),
                tau: Timestamp(2),
                active: vec![],
            },
            LogRecord::EndCheckpoint {
                ckpt: CheckpointId(2),
            },
        ];
        let (buf, lsns) = build(&recs);
        let sc = LogScanner::from_bytes(buf);
        let mark = sc.last_complete_checkpoint().unwrap();
        assert_eq!(mark.ckpt, CheckpointId(2));
        assert_eq!(mark.begin_lsn, lsns[2]);
    }
}
