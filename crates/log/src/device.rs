//! Log devices: where the durable portion of the log lives.
//!
//! The engine writes through [`LogDevice`], so the same log manager runs
//! against a real file (the executable engine), an in-memory vector (unit
//! tests, torn-write injection) or the simulator's modeled disks.

use mmdb_types::{MmdbError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A durable, append-only byte device holding the stable portion of the
/// log. Offset 0 is the first byte ever written (LSN 0).
pub trait LogDevice: Send + Sync {
    /// Durably appends `bytes` at the current end.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;

    /// Durable length in bytes: offsets `[start_offset, len)` are
    /// readable; `len` is the device-side durable LSN.
    fn len(&self) -> u64;

    /// First readable offset. 0 unless a prefix has been truncated away
    /// (checkpoints make old log obsolete; see
    /// [`truncate_prefix`](Self::truncate_prefix)).
    fn start_offset(&self) -> u64 {
        0
    }

    /// True if nothing is currently readable.
    fn is_empty(&self) -> bool {
        self.len() == self.start_offset()
    }

    /// Discards log bytes before `offset` (which must be ≤ `len`).
    /// Offsets are *stable*: reads and appends keep using the global
    /// offset space; only the readable window shrinks. Devices that do
    /// not support truncation may ignore the call (the default).
    fn truncate_prefix(&mut self, offset: u64) -> Result<()> {
        let _ = offset;
        Ok(())
    }

    /// Reads exactly `buf.len()` bytes starting at `offset`; fails if the
    /// range is not fully within the readable window.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Reads the whole readable log (recovery's working set; the paper
    /// assumes the entire relevant log is read, §4). The returned bytes
    /// start at [`start_offset`](Self::start_offset).
    fn read_all(&mut self) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; (self.len() - self.start_offset()) as usize];
        let start = self.start_offset();
        self.read_at(start, &mut buf)?;
        Ok(buf)
    }

    /// Seals the active chunk so it becomes *cold* (eligible for
    /// compaction and compression); subsequent appends land in a fresh
    /// chunk. Returns `true` if a rotation actually happened. Devices
    /// without chunk structure ignore the call (the default).
    fn rotate(&mut self) -> Result<bool> {
        Ok(false)
    }

    /// Describes the device's chunk layout, oldest first. The last entry
    /// is the active (append) chunk. Empty for unchunked devices (the
    /// default) — callers must treat an empty map as "no chunk
    /// lifecycle available".
    fn chunk_map(&self) -> Vec<ChunkInfo> {
        Vec::new()
    }

    /// Atomically replaces the cold chunk starting at global offset
    /// `start` with `bytes`, which must have exactly the chunk's logical
    /// length (compaction is length-preserving: it overwrites dead
    /// frames with same-length filler, never moves an offset). With
    /// `compress`, the chunk is stored compressed on disk; its logical
    /// offsets and length are unchanged. Unsupported by default.
    fn rewrite_chunk(&mut self, start: u64, bytes: &[u8], compress: bool) -> Result<()> {
        let _ = (start, bytes, compress);
        Err(MmdbError::Invalid(
            "this log device does not support chunk rewriting".into(),
        ))
    }
}

/// One chunk of a chunked [`LogDevice`], as reported by
/// [`LogDevice::chunk_map`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Global offset of the chunk's first byte.
    pub start: u64,
    /// Logical length in bytes (the offset span it covers).
    pub len: u64,
    /// Whether the chunk is stored compressed on disk.
    pub compressed: bool,
    /// Bytes the chunk occupies on disk (< `len` when compressed).
    pub disk_bytes: u64,
}

/// An in-memory log device for tests and simulation. Supports torn-write
/// injection via [`MemLogDevice::truncate_to`] and prefix truncation.
#[derive(Debug, Default)]
pub struct MemLogDevice {
    data: Vec<u8>,
    /// Global offset of `data[0]`.
    base: u64,
}

impl MemLogDevice {
    /// An empty device.
    pub fn new() -> MemLogDevice {
        MemLogDevice::default()
    }

    /// Simulates a torn write: discards everything past global offset
    /// `len`, as if the crash interrupted the flush that wrote those
    /// bytes.
    pub fn truncate_to(&mut self, len: u64) {
        self.data.truncate(len.saturating_sub(self.base) as usize);
    }

    /// Borrow the raw bytes (test assertions).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

impl LogDevice for MemLogDevice {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.base + self.data.len() as u64
    }

    fn start_offset(&self) -> u64 {
        self.base
    }

    fn truncate_prefix(&mut self, offset: u64) -> Result<()> {
        if offset > self.len() {
            return Err(MmdbError::Invalid(format!(
                "truncate_prefix({offset}) past end {}",
                self.len()
            )));
        }
        if offset > self.base {
            self.data.drain(..(offset - self.base) as usize);
            self.base = offset;
        }
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if offset < self.base {
            return Err(MmdbError::Corrupt(format!(
                "log read at {offset} before truncation point {}",
                self.base
            )));
        }
        let start = (offset - self.base) as usize;
        let end = start + buf.len();
        if end > self.data.len() {
            return Err(MmdbError::Corrupt(format!(
                "log read past durable end ({} > {})",
                self.base + end as u64,
                self.len()
            )));
        }
        buf.copy_from_slice(&self.data[start..end]);
        Ok(())
    }
}

/// Shared control handle for a [`FlakyLogDevice`], kept by the test while
/// the device itself is owned by the engine. Arms failures and counts
/// appends through the move.
#[derive(Debug, Default)]
pub struct FlakyControl {
    appends: std::sync::atomic::AtomicU64,
    /// Appends at or past this count fail; `u64::MAX` = never.
    fail_at: std::sync::atomic::AtomicU64,
}

impl FlakyControl {
    /// Total appends attempted so far (including failed ones).
    pub fn appends(&self) -> u64 {
        self.appends.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Lets the next `n` appends succeed, then fails every one after
    /// until [`heal`](Self::heal) is called.
    pub fn fail_after_next(&self, n: u64) {
        self.fail_at
            .store(self.appends() + n, std::sync::atomic::Ordering::SeqCst);
    }

    /// Stops injecting failures.
    pub fn heal(&self) {
        self.fail_at
            .store(u64::MAX, std::sync::atomic::Ordering::SeqCst);
    }

    fn should_fail(&self, append_index: u64) -> bool {
        append_index >= self.fail_at.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// A fault-injecting in-memory log device: appends fail with an I/O
/// error once armed via the shared [`FlakyControl`]. Test aid for the
/// error paths a healthy device never exercises (sticky deferred-force
/// errors, 2PC phase-two branch failures).
#[derive(Debug)]
pub struct FlakyLogDevice {
    inner: MemLogDevice,
    control: std::sync::Arc<FlakyControl>,
}

impl FlakyLogDevice {
    /// A healthy device plus the control handle that can break it later.
    pub fn new() -> (FlakyLogDevice, std::sync::Arc<FlakyControl>) {
        let control = std::sync::Arc::new(FlakyControl {
            appends: std::sync::atomic::AtomicU64::new(0),
            fail_at: std::sync::atomic::AtomicU64::new(u64::MAX),
        });
        (
            FlakyLogDevice {
                inner: MemLogDevice::new(),
                control: std::sync::Arc::clone(&control),
            },
            control,
        )
    }
}

impl LogDevice for FlakyLogDevice {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        let index = self
            .control
            .appends
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        if self.control.should_fail(index) {
            return Err(MmdbError::Io(std::io::Error::other(
                "injected log-device failure",
            )));
        }
        self.inner.append(bytes)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn start_offset(&self) -> u64 {
        self.inner.start_offset()
    }

    fn truncate_prefix(&mut self, offset: u64) -> Result<()> {
        self.inner.truncate_prefix(offset)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)
    }
}

/// A file-backed log device.
///
/// `sync_on_append` controls whether each append is `fsync`ed. The engine
/// turns it on for real durability; tests leave it off for speed (crash
/// injection in tests is done at the API level, not by killing the
/// process, so buffered writes survive either way).
#[derive(Debug)]
pub struct FileLogDevice {
    file: File,
    len: u64,
    sync_on_append: bool,
}

impl FileLogDevice {
    /// Opens (or creates) the log file at `path`.
    pub fn open(path: &Path, sync_on_append: bool) -> Result<FileLogDevice> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(FileLogDevice {
            file,
            len,
            sync_on_append,
        })
    }

    /// Creates a fresh (truncated) log file at `path`.
    pub fn create(path: &Path, sync_on_append: bool) -> Result<FileLogDevice> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileLogDevice {
            file,
            len: 0,
            sync_on_append,
        })
    }
}

impl LogDevice for FileLogDevice {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(bytes)?;
        if self.sync_on_append {
            self.file.sync_data()?;
        }
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if offset + buf.len() as u64 > self.len {
            return Err(MmdbError::Corrupt(format!(
                "log read past durable end ({} > {})",
                offset + buf.len() as u64,
                self.len
            )));
        }
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_append_read() {
        let mut d = MemLogDevice::new();
        assert!(d.is_empty());
        d.append(b"hello").unwrap();
        d.append(b" world").unwrap();
        assert_eq!(d.len(), 11);
        let mut buf = [0u8; 5];
        d.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        assert!(d.read_at(7, &mut buf).is_err());
        assert_eq!(d.read_all().unwrap(), b"hello world");
    }

    #[test]
    fn mem_device_truncate_simulates_torn_write() {
        let mut d = MemLogDevice::new();
        d.append(b"0123456789").unwrap();
        d.truncate_to(4);
        assert_eq!(d.len(), 4);
        assert_eq!(d.read_all().unwrap(), b"0123");
    }

    #[test]
    fn file_device_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("mmdb-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");

        let mut d = FileLogDevice::create(&path, false).unwrap();
        d.append(b"abcdef").unwrap();
        assert_eq!(d.len(), 6);
        drop(d);

        let mut d = FileLogDevice::open(&path, false).unwrap();
        assert_eq!(d.len(), 6, "length survives reopen");
        let mut buf = [0u8; 3];
        d.read_at(3, &mut buf).unwrap();
        assert_eq!(&buf, b"def");
        d.append(b"gh").unwrap();
        assert_eq!(d.read_all().unwrap(), b"abcdefgh");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_device_read_past_end_fails() {
        let dir = std::env::temp_dir().join(format!("mmdb-log-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let mut d = FileLogDevice::create(&path, false).unwrap();
        d.append(b"xy").unwrap();
        let mut buf = [0u8; 3];
        assert!(d.read_at(0, &mut buf).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
