//! Log record types and their on-disk encoding.
//!
//! The system uses REDO-only logging (paper §2.6): updates are buffered in
//! the transaction until commit, so no UNDO (before-image) records are
//! needed. The log carries:
//!
//! * transaction begin / commit / abort records,
//! * update records holding the *after-image* of a record (physical REDO —
//!   full record images make replay idempotent, which is what lets a fuzzy
//!   backup be repaired by replaying from the begin-checkpoint marker),
//! * begin-checkpoint markers carrying the checkpoint's id, timestamp
//!   `τ(CH)` and the list of transactions active at the marker (used by
//!   fuzzy recovery to extend the backward scan, §3.3),
//! * end-checkpoint markers (so recovery can identify the most recently
//!   *completed* checkpoint, §3.3 footnote).
//!
//! Frame layout (all little-endian):
//!
//! ```text
//! +--------+------+-------------+----------+--------+
//! | len u32| tag  |   payload   | fnv  u64 | len u32|
//! +--------+------+-------------+----------+--------+
//! ```
//!
//! `len` is the *total* frame length and is repeated at the end so the log
//! can be scanned backward (paper §3.3 scans the log backward to find the
//! checkpoint marker). The checksum covers tag + payload and lets recovery
//! stop cleanly at a torn final record.

use mmdb_types::{
    hash::Fnv1a, CheckpointId, Lsn, MmdbError, RecordId, Result, Timestamp, TxnId, Word,
};

/// A single log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A transaction began.
    TxnBegin {
        /// The transaction.
        txn: TxnId,
        /// Its timestamp `τ(T)`.
        tau: Timestamp,
    },
    /// A committed (or to-be-committed) update's after-image.
    Update {
        /// The writing transaction.
        txn: TxnId,
        /// The updated record.
        record: RecordId,
        /// The new value (full record image).
        value: Vec<Word>,
    },
    /// The transaction committed; its updates are now installable/replayable.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// The transaction aborted; its updates must be ignored by replay.
    Abort {
        /// The transaction.
        txn: TxnId,
    },
    /// A checkpoint began.
    BeginCheckpoint {
        /// The checkpoint.
        ckpt: CheckpointId,
        /// The checkpoint timestamp `τ(CH)` (meaningful for COU).
        tau: Timestamp,
        /// Transactions active when the marker was written. Empty for COU
        /// checkpoints (the system is quiesced).
        active: Vec<TxnId>,
    },
    /// A checkpoint completed (all segment images durable in its ping-pong
    /// copy).
    EndCheckpoint {
        /// The checkpoint.
        ckpt: CheckpointId,
    },
    /// The transaction is *prepared* as a participant branch of a
    /// cross-shard (global) transaction: all of its `Update` records are
    /// durable and the branch can no longer unilaterally abort. Written
    /// forced during phase one of the sharded engine's two-phase commit.
    Prepare {
        /// The local participant transaction.
        txn: TxnId,
        /// The global transaction id shared by every participant branch.
        gid: u64,
    },
    /// The coordinator's durable commit/abort decision for a global
    /// transaction (written forced to the coordinator shard's log only).
    /// Recovery resolves prepared branches by looking for this record;
    /// absent a decision, presumed abort applies.
    Decide {
        /// The global transaction id being decided.
        gid: u64,
        /// `true` for commit, `false` for an explicit abort decision.
        commit: bool,
    },
    /// Filler left by log compaction where dropped frames used to be.
    ///
    /// Compaction rewrites cold log chunks in place: frames whose replay
    /// effect is dead (updates of durably-aborted transactions, or
    /// updates superseded by a later durably-committed write to the same
    /// record) are replaced by a single filler frame of *exactly the same
    /// total length*, so every surviving frame keeps its original LSN and
    /// the global offset space stays stable for replication and backward
    /// scans. Replay ignores fillers entirely. The frame checksum covers
    /// only the tag and span (the zero padding is never trusted), so
    /// scanning a filler costs O(1) regardless of its size.
    Compacted {
        /// Total encoded frame length in bytes — the byte span of the
        /// frames this filler replaced. At least
        /// [`MIN_COMPACTED_LEN`](crate::record::MIN_COMPACTED_LEN).
        span: u64,
    },
}

const TAG_TXN_BEGIN: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_BEGIN_CKPT: u8 = 5;
const TAG_END_CKPT: u8 = 6;
const TAG_PREPARE: u8 = 7;
const TAG_DECIDE: u8 = 8;
const TAG_COMPACTED: u8 = 9;

/// Frame overhead: leading len (4) + tag (1) + checksum (8) + trailing len (4).
pub const FRAME_OVERHEAD: usize = 4 + 1 + 8 + 4;

/// Smallest legal [`LogRecord::Compacted`] frame: overhead plus the
/// 8-byte span field. Every droppable frame (updates are ≥ 41 bytes) is
/// larger, so any run of dropped frames can be covered by one filler.
pub const MIN_COMPACTED_LEN: usize = FRAME_OVERHEAD + 8;

impl LogRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::TxnBegin { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Prepare { txn, .. } => Some(*txn),
            _ => None,
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            LogRecord::TxnBegin { .. } => 8 + 8,
            LogRecord::Update { value, .. } => 8 + 8 + 4 + value.len() * 4,
            LogRecord::Commit { .. } | LogRecord::Abort { .. } => 8,
            LogRecord::BeginCheckpoint { active, .. } => 8 + 8 + 4 + active.len() * 8,
            LogRecord::EndCheckpoint { .. } => 8,
            LogRecord::Prepare { .. } => 8 + 8,
            LogRecord::Decide { .. } => 8 + 1,
            LogRecord::Compacted { span } => (*span as usize).saturating_sub(FRAME_OVERHEAD),
        }
    }

    /// Total encoded frame length in bytes.
    pub fn encoded_len(&self) -> usize {
        FRAME_OVERHEAD + self.payload_len()
    }

    /// Encoded frame length in words (for the paper's log-bulk
    /// accounting, which measures the log in words).
    pub fn encoded_words(&self) -> u64 {
        self.encoded_len().div_ceil(4) as u64
    }

    /// Appends the encoded frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let total = self.encoded_len() as u32;
        out.extend_from_slice(&total.to_le_bytes());
        let body_start = out.len();
        match self {
            LogRecord::TxnBegin { txn, tau } => {
                out.push(TAG_TXN_BEGIN);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&tau.raw().to_le_bytes());
            }
            LogRecord::Update { txn, record, value } => {
                out.push(TAG_UPDATE);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&record.raw().to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                for w in value {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            LogRecord::Commit { txn } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            LogRecord::Abort { txn } => {
                out.push(TAG_ABORT);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            LogRecord::BeginCheckpoint { ckpt, tau, active } => {
                out.push(TAG_BEGIN_CKPT);
                out.extend_from_slice(&ckpt.raw().to_le_bytes());
                out.extend_from_slice(&tau.raw().to_le_bytes());
                out.extend_from_slice(&(active.len() as u32).to_le_bytes());
                for t in active {
                    out.extend_from_slice(&t.raw().to_le_bytes());
                }
            }
            LogRecord::EndCheckpoint { ckpt } => {
                out.push(TAG_END_CKPT);
                out.extend_from_slice(&ckpt.raw().to_le_bytes());
            }
            LogRecord::Prepare { txn, gid } => {
                out.push(TAG_PREPARE);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&gid.to_le_bytes());
            }
            LogRecord::Decide { gid, commit } => {
                out.push(TAG_DECIDE);
                out.extend_from_slice(&gid.to_le_bytes());
                out.push(u8::from(*commit));
            }
            LogRecord::Compacted { span } => {
                debug_assert!(*span as usize >= MIN_COMPACTED_LEN);
                out.push(TAG_COMPACTED);
                out.extend_from_slice(&span.to_le_bytes());
                out.resize(body_start + self.payload_len() + 1, 0);
            }
        }
        // Filler padding is never trusted, so its checksum covers only the
        // tag + span prefix — decoding a filler is O(1) in its size.
        let hashed_end = match self {
            LogRecord::Compacted { .. } => body_start + 9,
            _ => out.len(),
        };
        let mut h = Fnv1a::new();
        h.update(&out[body_start..hashed_end]);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out.extend_from_slice(&total.to_le_bytes());
        debug_assert_eq!(out.len() - body_start + 4, total as usize);
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the start of `bytes`. Returns the record and
    /// the number of bytes consumed. Fails (without panicking) on torn or
    /// corrupt frames.
    pub fn decode(bytes: &[u8]) -> Result<(LogRecord, usize)> {
        let corrupt = |msg: &str| MmdbError::Corrupt(format!("log record: {msg}"));
        if bytes.len() < FRAME_OVERHEAD {
            return Err(corrupt("truncated frame header"));
        }
        let total = u32::from_le_bytes(bytes[0..4].try_into().expect("4-byte slice")) as usize;
        if total < FRAME_OVERHEAD || total > bytes.len() {
            return Err(corrupt("bad frame length"));
        }
        let frame = &bytes[..total];
        let trailer =
            u32::from_le_bytes(frame[total - 4..].try_into().expect("4-byte slice")) as usize;
        if trailer != total {
            return Err(corrupt("trailer length mismatch"));
        }
        let body = &frame[4..total - 12];
        let stored = u64::from_le_bytes(
            frame[total - 12..total - 4]
                .try_into()
                .expect("8-byte slice"),
        );
        if body.is_empty() {
            return Err(corrupt("empty frame body"));
        }
        // Filler frames checksum only their tag + span prefix (the zero
        // padding is never read), so huge fillers scan in O(1).
        let hashed = if body[0] == TAG_COMPACTED {
            body.get(..9).ok_or_else(|| corrupt("short filler frame"))?
        } else {
            body
        };
        let mut h = Fnv1a::new();
        h.update(hashed);
        if h.finish() != stored {
            return Err(corrupt("checksum mismatch"));
        }
        if body[0] == TAG_COMPACTED {
            let span = u64::from_le_bytes(body[1..9].try_into().expect("8-byte slice"));
            if span as usize != total || total < MIN_COMPACTED_LEN {
                return Err(corrupt("filler span disagrees with frame length"));
            }
            return Ok((LogRecord::Compacted { span }, total));
        }

        let mut r = Reader { buf: body, pos: 1 };
        let rec = match body[0] {
            TAG_TXN_BEGIN => LogRecord::TxnBegin {
                txn: TxnId(r.u64()?),
                tau: Timestamp(r.u64()?),
            },
            TAG_UPDATE => {
                let txn = TxnId(r.u64()?);
                let record = RecordId(r.u64()?);
                let n = r.u32()? as usize;
                let mut value = Vec::with_capacity(n);
                for _ in 0..n {
                    value.push(r.u32()?);
                }
                LogRecord::Update { txn, record, value }
            }
            TAG_COMMIT => LogRecord::Commit {
                txn: TxnId(r.u64()?),
            },
            TAG_ABORT => LogRecord::Abort {
                txn: TxnId(r.u64()?),
            },
            TAG_BEGIN_CKPT => {
                let ckpt = CheckpointId(r.u64()?);
                let tau = Timestamp(r.u64()?);
                let n = r.u32()? as usize;
                let mut active = Vec::with_capacity(n);
                for _ in 0..n {
                    active.push(TxnId(r.u64()?));
                }
                LogRecord::BeginCheckpoint { ckpt, tau, active }
            }
            TAG_END_CKPT => LogRecord::EndCheckpoint {
                ckpt: CheckpointId(r.u64()?),
            },
            TAG_PREPARE => LogRecord::Prepare {
                txn: TxnId(r.u64()?),
                gid: r.u64()?,
            },
            TAG_DECIDE => {
                let gid = r.u64()?;
                let commit = match r.u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(corrupt(&format!("bad decide flag {b}"))),
                };
                LogRecord::Decide { gid, commit }
            }
            t => return Err(corrupt(&format!("unknown tag {t}"))),
        };
        if r.pos != body.len() {
            return Err(corrupt("trailing garbage in payload"));
        }
        Ok((rec, total))
    }

    /// Reads the frame length stored in the *last* 4 bytes of a frame
    /// ending at `end` within `bytes`, for backward scanning. Returns the
    /// frame start offset.
    pub fn frame_start_before(bytes: &[u8], end: usize) -> Result<usize> {
        if end < FRAME_OVERHEAD || end > bytes.len() {
            return Err(MmdbError::Corrupt("backward scan out of range".into()));
        }
        let len =
            u32::from_le_bytes(bytes[end - 4..end].try_into().expect("4-byte slice")) as usize;
        if len < FRAME_OVERHEAD || len > end {
            return Err(MmdbError::Corrupt("bad trailing frame length".into()));
        }
        Ok(end - len)
    }

    /// The LSN just past this record, given the record's own LSN.
    pub fn end_lsn(&self, lsn: Lsn) -> Lsn {
        lsn.advance(self.encoded_len() as u64)
    }

    /// Structurally parses one frame from the start of `bytes` *without*
    /// verifying update-payload checksums: update frames return a
    /// [`FramePeek::Update`] locating the after-image inside the frame,
    /// while every other record is fully decoded and verified. This is
    /// the scan half of the parallel-recovery pipeline — the bulk of the
    /// log is update payload, and its checksums are verified by the apply
    /// workers (via [`LogRecord::verify_frame`]) instead of on the
    /// single-threaded scan path. Returns the peek and the frame length.
    pub fn peek(bytes: &[u8]) -> Result<(FramePeek, usize)> {
        let corrupt = |msg: &str| MmdbError::Corrupt(format!("log record: {msg}"));
        if bytes.len() < FRAME_OVERHEAD {
            return Err(corrupt("truncated frame header"));
        }
        let total = u32::from_le_bytes(bytes[0..4].try_into().expect("4-byte slice")) as usize;
        if total < FRAME_OVERHEAD || total > bytes.len() {
            return Err(corrupt("bad frame length"));
        }
        let trailer =
            u32::from_le_bytes(bytes[total - 4..total].try_into().expect("4-byte slice")) as usize;
        if trailer != total {
            return Err(corrupt("trailer length mismatch"));
        }
        let body = &bytes[4..total - 12];
        if body.first() == Some(&TAG_UPDATE) {
            let mut r = Reader { buf: body, pos: 1 };
            let txn = TxnId(r.u64()?);
            let record = RecordId(r.u64()?);
            let value_words = r.u32()? as usize;
            if body.len() != 1 + 8 + 8 + 4 + value_words * 4 {
                return Err(corrupt("update payload length mismatch"));
            }
            return Ok((
                FramePeek::Update {
                    txn,
                    record,
                    value_off: 4 + 1 + 8 + 8 + 4,
                    value_words,
                },
                total,
            ));
        }
        let (rec, used) = LogRecord::decode(bytes)?;
        Ok((FramePeek::Other(rec), used))
    }

    /// Verifies the checksum of exactly one encoded frame (`frame` must
    /// cover the frame precisely). The apply half of the pipelined scan:
    /// see [`LogRecord::peek`].
    pub fn verify_frame(frame: &[u8]) -> bool {
        if frame.len() < FRAME_OVERHEAD {
            return false;
        }
        let total = u32::from_le_bytes(frame[0..4].try_into().expect("4-byte slice")) as usize;
        if total != frame.len() {
            return false;
        }
        let body = &frame[4..total - 12];
        let stored = u64::from_le_bytes(
            frame[total - 12..total - 4]
                .try_into()
                .expect("8-byte slice"),
        );
        let hashed = if body.first() == Some(&TAG_COMPACTED) {
            match body.get(..9) {
                Some(h) => h,
                None => return false,
            }
        } else {
            body
        };
        let mut h = Fnv1a::new();
        h.update(hashed);
        h.finish() == stored
    }
}

/// Result of [`LogRecord::peek`]: a structurally-parsed frame whose
/// update payload (if any) has not been checksum-verified yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePeek {
    /// An update frame, located but unverified. The after-image occupies
    /// `value_words` little-endian words at `value_off` bytes into the
    /// frame.
    Update {
        /// The writing transaction (read from the unverified header).
        txn: TxnId,
        /// The updated record (read from the unverified header).
        record: RecordId,
        /// Byte offset of the after-image within the frame.
        value_off: usize,
        /// After-image length in words.
        value_words: usize,
    },
    /// Any other frame, fully decoded and checksum-verified.
    Other(LogRecord),
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > self.buf.len() {
            return Err(MmdbError::Corrupt("log record: short payload".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogRecord> {
        vec![
            LogRecord::TxnBegin {
                txn: TxnId(42),
                tau: Timestamp(7),
            },
            LogRecord::Update {
                txn: TxnId(42),
                record: RecordId(1234),
                value: vec![1, 2, 3, 0xFFFF_FFFF],
            },
            LogRecord::Update {
                txn: TxnId(1),
                record: RecordId(0),
                value: vec![],
            },
            LogRecord::Commit { txn: TxnId(42) },
            LogRecord::Abort { txn: TxnId(9) },
            LogRecord::BeginCheckpoint {
                ckpt: CheckpointId(3),
                tau: Timestamp(100),
                active: vec![TxnId(5), TxnId(6)],
            },
            LogRecord::BeginCheckpoint {
                ckpt: CheckpointId(4),
                tau: Timestamp(200),
                active: vec![],
            },
            LogRecord::EndCheckpoint {
                ckpt: CheckpointId(3),
            },
            LogRecord::Prepare {
                txn: TxnId(42),
                gid: 0xDEAD_BEEF,
            },
            LogRecord::Decide {
                gid: 0xDEAD_BEEF,
                commit: true,
            },
            LogRecord::Decide {
                gid: 99,
                commit: false,
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for rec in samples() {
            let enc = rec.encode();
            assert_eq!(enc.len(), rec.encoded_len(), "{rec:?}");
            let (dec, used) = LogRecord::decode(&enc).unwrap();
            assert_eq!(dec, rec);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn decode_from_stream_with_following_data() {
        let a = LogRecord::Commit { txn: TxnId(1) };
        let b = LogRecord::Abort { txn: TxnId(2) };
        let mut buf = a.encode();
        buf.extend_from_slice(&b.encode());
        let (dec, used) = LogRecord::decode(&buf).unwrap();
        assert_eq!(dec, a);
        let (dec2, _) = LogRecord::decode(&buf[used..]).unwrap();
        assert_eq!(dec2, b);
    }

    #[test]
    fn torn_frame_detected() {
        let rec = LogRecord::Update {
            txn: TxnId(1),
            record: RecordId(2),
            value: vec![1, 2, 3, 4, 5, 6, 7, 8],
        };
        let enc = rec.encode();
        for cut in 0..enc.len() {
            assert!(
                LogRecord::decode(&enc[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn bitflip_detected() {
        let rec = LogRecord::Commit { txn: TxnId(77) };
        let enc = rec.encode();
        // flip one bit in each byte of the tag/payload/checksum region
        for i in 4..enc.len() - 4 {
            let mut bad = enc.clone();
            bad[i] ^= 0x10;
            match LogRecord::decode(&bad) {
                Err(_) => {}
                Ok((dec, _)) => panic!("bitflip at byte {i} decoded as {dec:?}"),
            }
        }
    }

    #[test]
    fn backward_frame_lookup() {
        let mut buf = Vec::new();
        let recs = samples();
        let mut starts = Vec::new();
        for r in &recs {
            starts.push(buf.len());
            r.encode_into(&mut buf);
        }
        // walk backward from the end recovering each start offset
        let mut end = buf.len();
        for (&start, rec) in starts.iter().zip(&recs).rev() {
            let s = LogRecord::frame_start_before(&buf, end).unwrap();
            assert_eq!(s, start);
            let (dec, _) = LogRecord::decode(&buf[s..]).unwrap();
            assert_eq!(&dec, rec);
            end = s;
        }
        assert_eq!(end, 0);
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::Commit { txn: TxnId(3) }.txn(), Some(TxnId(3)));
        assert_eq!(
            LogRecord::EndCheckpoint {
                ckpt: CheckpointId(1)
            }
            .txn(),
            None
        );
        assert_eq!(
            LogRecord::Prepare {
                txn: TxnId(8),
                gid: 1
            }
            .txn(),
            Some(TxnId(8))
        );
        assert_eq!(
            LogRecord::Decide {
                gid: 1,
                commit: true
            }
            .txn(),
            None
        );
    }

    #[test]
    fn decide_flag_byte_validated() {
        let rec = LogRecord::Decide {
            gid: 5,
            commit: false,
        };
        let mut enc = rec.encode();
        // the flag byte is the last payload byte: total - trailer(4) - fnv(8) - 1
        let flag_at = enc.len() - 4 - 8 - 1;
        assert_eq!(enc[flag_at], 0);
        // a non-boolean flag byte must be rejected even with a valid checksum
        enc[flag_at] = 7;
        let body = &enc[4..enc.len() - 12];
        let mut h = Fnv1a::new();
        h.update(body);
        let sum = h.finish().to_le_bytes();
        let len = enc.len();
        enc[len - 12..len - 4].copy_from_slice(&sum);
        assert!(LogRecord::decode(&enc).is_err());
    }

    #[test]
    fn compacted_roundtrip_various_spans() {
        for span in [
            MIN_COMPACTED_LEN as u64,
            41,
            100,
            4096,
            1 << 20, // a megabyte-scale filler still scans in O(1)
        ] {
            let rec = LogRecord::Compacted { span };
            let enc = rec.encode();
            assert_eq!(enc.len(), span as usize, "span {span}");
            let (dec, used) = LogRecord::decode(&enc).unwrap();
            assert_eq!(dec, rec);
            assert_eq!(used, enc.len());
            assert!(LogRecord::verify_frame(&enc));
        }
    }

    #[test]
    fn compacted_padding_is_untrusted() {
        // corrupting the zero padding must NOT invalidate the frame — the
        // checksum deliberately covers only the tag + span prefix, so a
        // compactor never has to hash the dead bytes it overwrites.
        let rec = LogRecord::Compacted { span: 200 };
        let mut enc = rec.encode();
        enc[60] = 0xAB;
        enc[150] ^= 0xFF;
        let (dec, _) = LogRecord::decode(&enc).unwrap();
        assert_eq!(dec, rec);
        // but the hashed prefix (tag + span) is protected
        let mut bad = rec.encode();
        bad[5] ^= 0x01; // low byte of span
        assert!(LogRecord::decode(&bad).is_err());
        assert!(!LogRecord::verify_frame(&bad));
    }

    #[test]
    fn compacted_span_must_match_frame_length() {
        // a filler whose span field disagrees with the frame length would
        // desynchronize the LSN space — forge one and ensure it's rejected
        let span = 64u64;
        let total = 80usize;
        let mut enc = Vec::new();
        enc.extend_from_slice(&(total as u32).to_le_bytes());
        enc.push(TAG_COMPACTED);
        enc.extend_from_slice(&span.to_le_bytes());
        enc.resize(total - 12, 0);
        let mut h = Fnv1a::new();
        h.update(&enc[4..13]);
        enc.extend_from_slice(&h.finish().to_le_bytes());
        enc.extend_from_slice(&(total as u32).to_le_bytes());
        assert!(LogRecord::decode(&enc).is_err());
    }

    #[test]
    fn compacted_has_no_txn() {
        assert_eq!(LogRecord::Compacted { span: 64 }.txn(), None);
    }

    #[test]
    fn peek_locates_update_payload_without_decoding() {
        let rec = LogRecord::Update {
            txn: TxnId(7),
            record: RecordId(33),
            value: vec![10, 20, 30],
        };
        let enc = rec.encode();
        let (peek, used) = LogRecord::peek(&enc).unwrap();
        assert_eq!(used, enc.len());
        match peek {
            FramePeek::Update {
                txn,
                record,
                value_off,
                value_words,
            } => {
                assert_eq!(txn, TxnId(7));
                assert_eq!(record, RecordId(33));
                assert_eq!(value_words, 3);
                let words: Vec<Word> = enc[value_off..value_off + value_words * 4]
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                    .collect();
                assert_eq!(words, vec![10, 20, 30]);
            }
            other => panic!("expected Update peek, got {other:?}"),
        }
        assert!(LogRecord::verify_frame(&enc));
    }

    #[test]
    fn peek_fully_verifies_non_update_frames() {
        for rec in samples() {
            if matches!(rec, LogRecord::Update { .. }) {
                continue;
            }
            let enc = rec.encode();
            let (peek, used) = LogRecord::peek(&enc).unwrap();
            assert_eq!(used, enc.len());
            assert_eq!(peek, FramePeek::Other(rec));
        }
        // a corrupt non-update frame fails at peek time
        let mut enc = LogRecord::Commit { txn: TxnId(1) }.encode();
        enc[6] ^= 0x01;
        assert!(LogRecord::peek(&enc).is_err());
    }

    #[test]
    fn peek_skips_update_checksum_but_verify_frame_catches_it() {
        let rec = LogRecord::Update {
            txn: TxnId(1),
            record: RecordId(2),
            value: vec![1, 2, 3, 4],
        };
        let mut enc = rec.encode();
        // flip a bit inside the after-image: peek still succeeds (it is
        // structural only), verify_frame must fail
        enc[30] ^= 0x40;
        assert!(LogRecord::peek(&enc).is_ok());
        assert!(!LogRecord::verify_frame(&enc));
        // structural damage (bad length trailer) fails even at peek
        let rec2 = LogRecord::Update {
            txn: TxnId(1),
            record: RecordId(2),
            value: vec![9],
        };
        let enc2 = rec2.encode();
        for cut in 0..enc2.len() {
            assert!(LogRecord::peek(&enc2[..cut]).is_err());
        }
    }

    #[test]
    fn encoded_words_rounds_up() {
        let rec = LogRecord::Commit { txn: TxnId(1) };
        assert_eq!(rec.encoded_len(), 25);
        assert_eq!(rec.encoded_words(), 7);
    }

    #[test]
    fn end_lsn_advances_by_frame_len() {
        let rec = LogRecord::Commit { txn: TxnId(1) };
        assert_eq!(rec.end_lsn(Lsn(100)), Lsn(100 + 25));
    }
}
