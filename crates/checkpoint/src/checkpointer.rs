//! The checkpoint step machine. See the crate docs for the overview.

use mmdb_audit::{Audit, AuditEvent, PaintColor};
use mmdb_disk::BackupStore;
use mmdb_log::{LogManager, LogRecord};
use mmdb_obs::{Obs, Timer};
use mmdb_storage::{Color, Storage};
use mmdb_types::{
    Algorithm, CheckpointId, CkptMode, CostMeter, Lsn, MmdbError, Result, SegmentId,
    SharedCostMeter, Timestamp, TxnId, Word,
};

/// What the checkpointer does when a segment image's log records are not
/// yet durable (the write-ahead gate fails).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalPolicy {
    /// Force the log (charged to the checkpointer) and proceed. This is
    /// the deterministic default.
    #[default]
    Force,
    /// Return [`StepOutcome::WaitingForLog`] and retry on the next step,
    /// letting routine commit forces catch the log up — the paper's
    /// "delay that might be needed to satisfy the LSN condition".
    Wait,
}

/// Result of one checkpointer step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Work was done. `io_words` is the size of the backup-disk write the
    /// step issued (0 when the step only skipped clean/black segments) —
    /// the simulator converts it to disk service time.
    Progress {
        /// Words written to the backup disks by this step.
        io_words: u64,
    },
    /// Blocked on log durability under [`WalPolicy::Wait`]; retry after
    /// the log advances.
    WaitingForLog,
    /// The checkpoint completed during this step.
    Done {
        /// Words written by the final step (usually a trailing pending
        /// flush; the completion header itself is counted as one I/O in
        /// CPU cost but its size is negligible).
        io_words: u64,
    },
}

/// Report returned by [`Checkpointer::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeginReport {
    /// The checkpoint that began.
    pub ckpt: CheckpointId,
    /// The ping-pong copy it writes.
    pub copy: usize,
    /// LSN of its begin-checkpoint log record.
    pub begin_lsn: Lsn,
}

/// Per-checkpoint activity report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CkptReport {
    /// Checkpoint id.
    pub ckpt: CheckpointId,
    /// Ping-pong copy written.
    pub copy: usize,
    /// Segment images written (live or buffered).
    pub segments_flushed: u64,
    /// Segments examined and skipped (clean, or already black).
    pub segments_skipped: u64,
    /// Of the flushed images, how many came from COU old copies.
    pub old_copies_flushed: u64,
    /// Total words written to the backup disks.
    pub io_words: u64,
}

/// Cumulative checkpointer statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CkptStats {
    /// Checkpoints completed.
    pub completed: u64,
    /// Total segment images flushed.
    pub segments_flushed: u64,
    /// Total segments skipped.
    pub segments_skipped: u64,
    /// Total COU old copies flushed.
    pub old_copies_flushed: u64,
    /// Log forces issued by the checkpointer (WAL gate under
    /// [`WalPolicy::Force`], plus checkpoint begin/end forces).
    pub log_forces: u64,
    /// Steps that returned [`StepOutcome::WaitingForLog`].
    pub wal_waits: u64,
    /// Total words written to the backup disks.
    pub io_words: u64,
}

/// A buffered segment image awaiting log durability before it may be
/// flushed (FUZZYCOPY and 2CCOPY under [`WalPolicy::Wait`]).
#[derive(Debug)]
struct PendingFlush {
    sid: SegmentId,
    data: Box<[Word]>,
    version: u64,
    /// The log must be durable through this LSN before the image may be
    /// written (write-ahead rule).
    gate: Lsn,
}

#[derive(Debug)]
struct ActiveCkpt {
    ckpt: CheckpointId,
    copy: usize,
    /// `CUR_SEG`: next position in sweep order. Segments before the
    /// cursor have been processed. For the two-color algorithms the
    /// cursor indexes `white_list`; otherwise it is the segment id
    /// itself.
    cursor: u32,
    n_segments: u32,
    /// The frozen white set, in sweep order (two-color algorithms only).
    /// Built by the paint pass at begin; the sweep visits exactly these
    /// segments instead of re-scanning the whole database.
    white_list: Option<Vec<SegmentId>>,
    /// `τ(CH)` (recorded in the begin marker).
    tau_ch: Timestamp,
    /// The COU snapshot horizon: the storage version counter at begin.
    /// A segment with `version > snapshot_version` has been updated since
    /// the checkpoint began. (Equivalent to the paper's `τ(S) ≤ τ(CH)`
    /// test under quiesce, and — unlike timestamps — still correct for
    /// the non-quiescing `COUAC`, where transactions with `τ(T) < τ(CH)`
    /// may install after the begin.)
    snapshot_version: u64,
    /// True when this checkpoint backs up every segment: either the
    /// configured mode is [`CkptMode::Full`], or the target ping-pong
    /// copy has never completed a checkpoint (a partial image of an
    /// empty copy would not be a complete backup).
    effective_full: bool,
    pending: Option<PendingFlush>,
    report: CkptReport,
    /// Wall-clock timer spanning the whole pass (inert without telemetry).
    timer: Timer,
}

/// The checkpointer. One instance drives all checkpoints of an engine,
/// alternating ping-pong copies.
#[derive(Debug)]
pub struct Checkpointer {
    algorithm: Algorithm,
    mode: CkptMode,
    wal_policy: WalPolicy,
    meter: SharedCostMeter,
    next_ckpt: CheckpointId,
    active: Option<ActiveCkpt>,
    last_report: Option<CkptReport>,
    stats: CkptStats,
    audit: Audit,
    obs: Obs,
}

impl Checkpointer {
    /// A checkpointer running `algorithm` in `mode`, charging its
    /// asynchronous work to `meter`.
    pub fn new(
        algorithm: Algorithm,
        mode: CkptMode,
        wal_policy: WalPolicy,
        meter: SharedCostMeter,
    ) -> Checkpointer {
        Checkpointer {
            algorithm,
            mode,
            wal_policy,
            meter,
            next_ckpt: CheckpointId(1),
            active: None,
            last_report: None,
            stats: CkptStats::default(),
            audit: Audit::disabled(),
            obs: Obs::disabled(),
        }
    }

    /// Routes protocol events to `audit` (disabled by default).
    pub fn set_audit(&mut self, audit: Audit) {
        self.audit = audit;
    }

    /// Routes telemetry (pass/flush spans, lock-hold latency) to `obs`
    /// (disabled by default).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Writes a segment image to the backup store, timing the device
    /// operation and emitting a per-segment flush span.
    fn flush_observed(
        &self,
        backup: &mut dyn BackupStore,
        copy: usize,
        sid: SegmentId,
        data: &[Word],
    ) -> Result<()> {
        let t = self.obs.timer();
        backup.write_segment(copy, sid, data)?;
        self.obs
            .span_end("ckpt.flush", "ckpt.segment_flush_ns", t, || {
                format!("{} {sid} copy {copy}", self.algorithm.name())
            });
        Ok(())
    }

    /// The algorithm in use.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Full or partial checkpoints.
    pub fn mode(&self) -> CkptMode {
        self.mode
    }

    /// Is a checkpoint in progress?
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Is a *two-color* checkpoint in progress (transactions must obey
    /// the color rule)?
    pub fn two_color_active(&self) -> bool {
        self.algorithm.is_two_color() && self.is_active()
    }

    /// The in-progress checkpoint id, if any.
    pub fn active_ckpt(&self) -> Option<CheckpointId> {
        self.active.as_ref().map(|a| a.ckpt)
    }

    /// The ping-pong copy the in-progress checkpoint writes.
    pub fn active_copy(&self) -> Option<usize> {
        self.active.as_ref().map(|a| a.copy)
    }

    /// The sweep cursor (`CUR_SEG`) of the in-progress checkpoint.
    pub fn cursor(&self) -> Option<SegmentId> {
        self.active.as_ref().map(|a| SegmentId(a.cursor))
    }

    /// `τ(CH)` of the in-progress checkpoint.
    pub fn tau_ch(&self) -> Option<Timestamp> {
        self.active.as_ref().map(|a| a.tau_ch)
    }

    /// Report of the most recently completed checkpoint.
    pub fn last_report(&self) -> Option<&CkptReport> {
        self.last_report.as_ref()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CkptStats {
        self.stats
    }

    /// The id the next checkpoint will get.
    pub fn next_ckpt(&self) -> CheckpointId {
        self.next_ckpt
    }

    /// Sets the next checkpoint id (recovery: the id after the restored
    /// checkpoint, so the next checkpoint targets the ping-pong copy that
    /// is *not* the one recovery restored from).
    ///
    /// # Panics
    /// Panics if a checkpoint is in progress.
    pub fn set_next_ckpt(&mut self, next: CheckpointId) {
        assert!(
            self.active.is_none(),
            "cannot renumber checkpoints mid-checkpoint"
        );
        self.next_ckpt = next;
    }

    /// The copy-on-update transaction hook (Figure 3.2): called by the
    /// engine *before* installing a committed update into segment `sid`.
    /// If a COU checkpoint is active, the segment has not yet been swept
    /// (`S > CUR_SEG` — here `sid ≥ cursor`, since the cursor points at
    /// the next unprocessed segment and steps are atomic), and the
    /// segment has not been updated since the checkpoint began
    /// (`τ(S) ≤ τ(CH)`), the transaction saves the segment's old copy.
    ///
    /// The copy is *synchronous* work done on behalf of the transaction,
    /// so it is charged to `sync_meter`, not the checkpointer's meter.
    pub fn on_before_install(
        &self,
        storage: &mut Storage,
        sid: SegmentId,
        sync_meter: &CostMeter,
    ) -> Result<()> {
        if !self.algorithm.is_cou() {
            return Ok(());
        }
        let Some(active) = &self.active else {
            return Ok(());
        };
        if sid.raw() < active.cursor {
            return Ok(()); // already swept: the snapshot no longer needs it
        }
        let meta = storage.segment_meta(sid)?;
        if meta.version > active.snapshot_version {
            return Ok(()); // already updated since begin ⇒ old copy exists
        }
        if meta.old.is_some() {
            return Ok(());
        }
        storage.cou_save_old(sid, sync_meter)?;
        self.obs.counter("ckpt.old_copy_saves", 1);
        self.audit.emit(|| AuditEvent::OldCopyCreated { sid });
        Ok(())
    }

    /// Begins a checkpoint (paper §3.1/§3.2): writes the begin-checkpoint
    /// marker (with the active-transaction list), durably marks the target
    /// ping-pong copy in-progress, and for the two-color algorithms paints
    /// the white set. For COU the caller must have quiesced transaction
    /// processing; `tau_ch` is the fresh checkpoint timestamp.
    pub fn begin(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
        active_txns: &[TxnId],
        tau_ch: Timestamp,
    ) -> Result<BeginReport> {
        if self.active.is_some() {
            return Err(MmdbError::CheckpointInProgress);
        }
        if !self.algorithm.sound_under(log.mode()) {
            return Err(MmdbError::UnsoundConfiguration(format!(
                "{} requires a stable log tail",
                self.algorithm
            )));
        }
        if self.algorithm.requires_quiesce() && !active_txns.is_empty() {
            return Err(MmdbError::Invalid(
                "COU checkpoints must begin quiesced (active transactions present)".into(),
            ));
        }
        let ckpt = self.next_ckpt;
        let copy = ckpt.pingpong_copy();
        // The pass timer starts here so it covers the begin marker, the
        // paint pass and every sweep step through the end-marker force.
        let pass_timer = self.obs.timer();

        // Quiesced (TC) COU checkpoints are consistent as of the begin
        // marker and carry no active list (the quiesce guarantees it is
        // empty); everything else records the active transactions so
        // recovery can extend its backward scan (§3.3).
        let active_list = if self.algorithm.requires_quiesce() {
            Vec::new()
        } else {
            active_txns.to_vec()
        };
        let begin_lsn = log.append(&LogRecord::BeginCheckpoint {
            ckpt,
            tau: tau_ch,
            active: active_list,
        });
        if self.algorithm.is_cou() {
            // §3.2.2: "a begin-checkpoint record is written to the log,
            // and the log tail is flushed to stable storage". This force
            // is what exempts COU from per-segment LSN gating.
            self.stats.log_forces += 1;
            log.force_charged_to(&self.meter)?;
        }

        // A partial checkpoint against a copy that has never completed a
        // checkpoint would leave holes; escalate it to full (this is how
        // the ping-pong pair gets seeded on a fresh database).
        let effective_full = self.mode == CkptMode::Full
            || !matches!(
                backup.copy_status(copy)?,
                mmdb_disk::CopyStatus::Complete(_)
            );

        // Durably mark the target copy in-progress before any segment of
        // it is overwritten (ping-pong discipline).
        self.meter.io_op();
        backup.begin_checkpoint(copy, ckpt)?;

        let n_segments = storage.n_segments() as u32;
        let white_list = if self.algorithm.is_two_color() {
            // Paint the white set: the segments this checkpoint will
            // process, frozen at begin (segments dirtied *after* begin
            // stay black and wait for the next checkpoint — flipping
            // them white mid-checkpoint would break the color
            // serialization). Clean segments are immediately black: their
            // backup image already matches their live content. One
            // instruction per segment of paint/dirty-check sweep; the
            // sweep then visits exactly the white list rather than
            // re-scanning the whole database.
            let full = effective_full;
            self.meter.scan(n_segments as u64);
            let dirty: Vec<bool> = (0..n_segments)
                .map(|i| {
                    full || storage
                        .is_dirty(SegmentId(i), copy)
                        .expect("segment in range")
                })
                .collect();
            storage.paint_for_checkpoint(|sid| dirty[sid.index()]);
            Some(
                (0..n_segments)
                    .map(SegmentId)
                    .filter(|sid| dirty[sid.index()])
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };

        let whites = white_list.as_ref().map_or(0, |list| list.len() as u64);
        self.active = Some(ActiveCkpt {
            ckpt,
            copy,
            cursor: 0,
            n_segments,
            white_list,
            tau_ch,
            snapshot_version: storage.current_version(),
            effective_full,
            pending: None,
            report: CkptReport {
                ckpt,
                copy,
                ..CkptReport::default()
            },
            timer: pass_timer,
        });
        self.next_ckpt = ckpt.next();
        let algorithm = self.algorithm;
        self.audit.emit(|| AuditEvent::CkptBegun {
            ckpt,
            copy,
            algorithm,
            quiesced: algorithm.requires_quiesce(),
            whites,
        });
        Ok(BeginReport {
            ckpt,
            copy,
            begin_lsn,
        })
    }

    /// Performs one unit of checkpoint work: flushes (or copies) at most
    /// one segment, skipping over clean/black segments on the way. See
    /// [`StepOutcome`].
    pub fn step(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
    ) -> Result<StepOutcome> {
        if self.active.is_none() {
            return Err(MmdbError::NoCheckpointInProgress);
        }

        // A pending buffered image blocks everything else: flush it first.
        if self
            .active
            .as_ref()
            .expect("checkpoint active")
            .pending
            .is_some()
        {
            return match self.try_flush_pending(storage, log, backup)? {
                Some(io_words) => {
                    if self.sweep_finished() {
                        self.finish(storage, log, backup, io_words)
                    } else {
                        Ok(StepOutcome::Progress { io_words })
                    }
                }
                None => {
                    self.stats.wal_waits += 1;
                    Ok(StepOutcome::WaitingForLog)
                }
            };
        }

        // Skip forward to the next segment needing work.
        loop {
            if self.sweep_finished() {
                return self.finish(storage, log, backup, 0);
            }
            let sid = self.sweep_current();
            // Examining a segment (dirty bit / paint bit / τ check) costs
            // one instruction of scanning.
            self.meter.scan(1);
            match self.process_segment(storage, log, backup, sid)? {
                SegmentAction::Skipped => {
                    let a = self.active.as_mut().expect("checkpoint active");
                    a.cursor += 1;
                    a.report.segments_skipped += 1;
                    self.stats.segments_skipped += 1;
                    continue;
                }
                SegmentAction::Flushed { io_words } => {
                    let a = self.active.as_mut().expect("checkpoint active");
                    a.cursor += 1;
                    if self.sweep_finished()
                        && self
                            .active
                            .as_ref()
                            .expect("checkpoint active")
                            .pending
                            .is_none()
                    {
                        return self.finish(storage, log, backup, io_words);
                    }
                    return Ok(StepOutcome::Progress { io_words });
                }
                SegmentAction::CopiedPendingWal => {
                    // The segment is processed (copied, and for 2CCOPY
                    // painted black); the image waits for the log.
                    let a = self.active.as_mut().expect("checkpoint active");
                    a.cursor += 1;
                    self.stats.wal_waits += 1;
                    return Ok(StepOutcome::WaitingForLog);
                }
                SegmentAction::WaitingForLog => {
                    // 2CFLUSH under Wait: cursor unchanged, retry later.
                    self.stats.wal_waits += 1;
                    return Ok(StepOutcome::WaitingForLog);
                }
            }
        }
    }

    /// Runs the in-progress checkpoint to completion (convenience for
    /// tests and non-simulated use). Returns the completed report.
    pub fn run_to_completion(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
    ) -> Result<CkptReport> {
        loop {
            match self.step(storage, log, backup)? {
                StepOutcome::Done { .. } => {
                    return Ok(*self.last_report().expect("just completed"));
                }
                StepOutcome::WaitingForLog => {
                    // Nothing else will advance the log in this loop;
                    // force it (charged to the checkpointer) to make
                    // progress.
                    self.stats.log_forces += 1;
                    log.force_charged_to(&self.meter)?;
                }
                StepOutcome::Progress { .. } => {}
            }
        }
    }

    /// Abandons the in-progress checkpoint (crash handling): volatile
    /// checkpointer state is dropped. The target ping-pong copy stays
    /// marked in-progress on disk, which is exactly what makes recovery
    /// choose the other copy.
    pub fn crash(&mut self, storage: &mut Storage) {
        if let Some(active) = self.active.take() {
            // COU old copies live in volatile memory; drop them without
            // cost accounting (the machine is dead).
            let _ = active;
            let silent = CostMeter::new(*self.meter.costs());
            storage.drop_all_old(&silent);
        }
    }

    fn sweep_finished(&self) -> bool {
        let a = self.active.as_ref().expect("active checkpoint");
        match &a.white_list {
            Some(list) => a.cursor as usize >= list.len(),
            None => a.cursor >= a.n_segments,
        }
    }

    /// The segment the sweep will process next.
    fn sweep_current(&self) -> SegmentId {
        let a = self.active.as_ref().expect("active checkpoint");
        match &a.white_list {
            Some(list) => list[a.cursor as usize],
            None => SegmentId(a.cursor),
        }
    }

    fn finish(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
        io_words: u64,
    ) -> Result<StepOutcome> {
        let a = self.active.as_ref().expect("active checkpoint");
        let (ckpt, copy) = (a.ckpt, a.copy);

        let old_copies_left = if self.algorithm.is_cou() {
            // Every old copy should have been consumed by the sweep; the
            // COU-lifetime audit checker verifies this in release builds.
            storage.drop_all_old(&self.meter)
        } else {
            0
        };
        debug_assert_eq!(old_copies_left, 0, "COU old copies leaked past the sweep");

        // Log the end marker and force it durable *before* marking the
        // backup copy complete: a complete header must imply that both
        // checkpoint markers are findable in the durable log (§3.3 and
        // its footnote) — otherwise a crash in between would leave
        // recovery with a backup it cannot position the replay for.
        log.append(&LogRecord::EndCheckpoint { ckpt });
        self.stats.log_forces += 1;
        log.force_charged_to(&self.meter)?;
        self.meter.io_op();
        backup.complete_checkpoint(copy, ckpt)?;
        self.audit.emit(|| AuditEvent::CkptCompleted {
            ckpt,
            copy,
            old_copies_left,
        });

        let a = self.active.take().expect("active checkpoint");
        let report = a.report; // io_words of the final flush were already
                               // accumulated by record_flush
        self.stats.completed += 1;
        self.stats.segments_flushed += report.segments_flushed;
        self.stats.old_copies_flushed += report.old_copies_flushed;
        self.stats.io_words += report.io_words;
        self.obs.observe("ckpt.pass_io_words", report.io_words);
        self.obs.span_end("ckpt.pass", "ckpt.pass_ns", a.timer, || {
            format!(
                "{} {ckpt} copy {copy}: {} flushed, {} skipped, {} io words",
                self.algorithm.name(),
                report.segments_flushed,
                report.segments_skipped,
                report.io_words
            )
        });
        self.last_report = Some(report);
        Ok(StepOutcome::Done { io_words })
    }

    fn record_flush(&mut self, io_words: u64, old_copy: bool) {
        let a = self.active.as_mut().expect("active checkpoint");
        a.report.segments_flushed += 1;
        a.report.io_words += io_words;
        if old_copy {
            a.report.old_copies_flushed += 1;
        }
    }

    /// Attempts to flush the pending buffered image. `Ok(None)` means the
    /// WAL gate is still closed (only under [`WalPolicy::Wait`]).
    fn try_flush_pending(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
    ) -> Result<Option<u64>> {
        let a = self.active.as_mut().expect("active checkpoint");
        let (ckpt, copy) = (a.ckpt, a.copy);
        let p = a.pending.as_ref().expect("pending image");
        let (sid, gate) = (p.sid, p.gate);

        self.meter.lsn_op();
        let open = log.is_durable(gate);
        let durable = log.durable_lsn();
        self.audit.emit(|| AuditEvent::WalGateChecked {
            sid,
            gate,
            durable,
            open,
        });
        if !open {
            match self.wal_policy {
                WalPolicy::Wait => return Ok(None),
                WalPolicy::Force => {
                    self.stats.log_forces += 1;
                    log.force_charged_to(&self.meter)?;
                }
            }
        }
        let pending = self
            .active
            .as_mut()
            .expect("checkpoint active")
            .pending
            .take()
            .expect("pending image");
        self.meter.io_op();
        self.flush_observed(backup, copy, pending.sid, &pending.data)?;
        storage.mark_flushed(pending.sid, copy, pending.version)?;
        let durable = log.durable_lsn();
        self.audit.emit(|| AuditEvent::SegmentFlushed {
            ckpt,
            copy,
            sid,
            image_max_lsn: gate,
            durable,
            from_old_copy: false,
        });
        self.meter.alloc_op(); // free the I/O buffer
        let words = pending.data.len() as u64;
        self.record_flush(words, false);
        Ok(Some(words))
    }

    fn process_segment(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
        sid: SegmentId,
    ) -> Result<SegmentAction> {
        match self.algorithm {
            Algorithm::FastFuzzy => self.step_fastfuzzy(storage, log, backup, sid),
            Algorithm::FuzzyCopy => self.step_fuzzycopy(storage, log, backup, sid),
            Algorithm::TwoColorFlush => self.step_2cflush(storage, log, backup, sid),
            Algorithm::TwoColorCopy => self.step_2ccopy(storage, log, backup, sid),
            Algorithm::CouFlush | Algorithm::CouCopy | Algorithm::CouAc => {
                self.step_cou(storage, log, backup, sid)
            }
        }
    }

    fn is_included(&self, storage: &Storage, sid: SegmentId, copy: usize) -> Result<bool> {
        let full = self
            .active
            .as_ref()
            .expect("active checkpoint")
            .effective_full;
        Ok(full || storage.is_dirty(sid, copy)?)
    }

    /// FASTFUZZY (§4): flush the live segment in place. No locks, no
    /// copies, no LSNs — sound because the stable tail makes every log
    /// record durable at append time.
    fn step_fastfuzzy(
        &mut self,
        storage: &mut Storage,
        log: &LogManager,
        backup: &mut dyn BackupStore,
        sid: SegmentId,
    ) -> Result<SegmentAction> {
        let (ckpt, copy) = {
            let a = self.active.as_ref().expect("checkpoint active");
            (a.ckpt, a.copy)
        };
        if !self.is_included(storage, sid, copy)? {
            return Ok(SegmentAction::Skipped);
        }
        let (version, words, image_max_lsn) = {
            let cap = storage.capture(sid)?;
            self.meter.io_op();
            self.flush_observed(backup, copy, sid, cap.data)?;
            (cap.version, cap.data.len() as u64, cap.max_lsn)
        };
        storage.mark_flushed(sid, copy, version)?;
        let durable = log.durable_lsn();
        self.audit.emit(|| AuditEvent::SegmentFlushed {
            ckpt,
            copy,
            sid,
            image_max_lsn,
            durable,
            from_old_copy: false,
        });
        self.record_flush(words, false);
        Ok(SegmentAction::Flushed { io_words: words })
    }

    /// FUZZYCOPY (§3.1): copy the segment to an I/O buffer, then flush
    /// the buffer once the log is durable past the segment's updates.
    fn step_fuzzycopy(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
        sid: SegmentId,
    ) -> Result<SegmentAction> {
        let copy = self.active.as_ref().expect("checkpoint active").copy;
        if !self.is_included(storage, sid, copy)? {
            return Ok(SegmentAction::Skipped);
        }
        let pending = {
            let cap = storage.capture(sid)?;
            self.meter.alloc_op();
            self.meter.move_words(cap.data.len() as u64);
            PendingFlush {
                sid,
                data: cap.data.into(),
                version: cap.version,
                gate: cap.max_lsn,
            }
        };
        self.active.as_mut().expect("checkpoint active").pending = Some(pending);
        match self.try_flush_pending(storage, log, backup)? {
            Some(io_words) => Ok(SegmentAction::Flushed { io_words }),
            None => Ok(SegmentAction::CopiedPendingWal),
        }
    }

    /// 2CFLUSH (§3.2.1): lock the white segment across its disk flush
    /// (plus any LSN delay), then paint it black.
    fn step_2cflush(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
        sid: SegmentId,
    ) -> Result<SegmentAction> {
        let (ckpt, copy) = {
            let a = self.active.as_ref().expect("checkpoint active");
            (a.ckpt, a.copy)
        };
        if storage.color(sid)? == Color::Black {
            return Ok(SegmentAction::Skipped);
        }
        self.meter.lock_op(); // lock (shared)
        let lock_t = self.obs.timer();
        let gate = storage.capture(sid)?.max_lsn;
        self.meter.lsn_op();
        let open = log.is_durable(gate);
        let probe_durable = log.durable_lsn();
        self.audit.emit(|| AuditEvent::WalGateChecked {
            sid,
            gate,
            durable: probe_durable,
            open,
        });
        if !open {
            match self.wal_policy {
                WalPolicy::Wait => {
                    self.meter.lock_op(); // unlock and retry later
                    self.obs.observe_timer("ckpt.lock_hold_ns", lock_t);
                    return Ok(SegmentAction::WaitingForLog);
                }
                WalPolicy::Force => {
                    self.stats.log_forces += 1;
                    log.force_charged_to(&self.meter)?;
                }
            }
        }
        let (version, words) = {
            let cap = storage.capture(sid)?;
            self.meter.io_op();
            self.flush_observed(backup, copy, sid, cap.data)?;
            (cap.version, cap.data.len() as u64)
        };
        storage.mark_flushed(sid, copy, version)?;
        storage.paint_black(sid)?;
        self.meter.lock_op(); // unlock
        self.obs.observe_timer("ckpt.lock_hold_ns", lock_t);
        let durable = log.durable_lsn();
        self.audit.emit(|| AuditEvent::SegmentFlushed {
            ckpt,
            copy,
            sid,
            image_max_lsn: gate,
            durable,
            from_old_copy: false,
        });
        self.audit.emit(|| AuditEvent::PaintFlipped {
            sid,
            to: PaintColor::Black,
        });
        self.record_flush(words, false);
        Ok(SegmentAction::Flushed { io_words: words })
    }

    /// 2CCOPY (§3.2.1): copy the white segment under lock (so the lock is
    /// held only for the memory copy, not the I/O), paint it black, then
    /// flush the buffer under the LSN gate.
    fn step_2ccopy(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
        sid: SegmentId,
    ) -> Result<SegmentAction> {
        if storage.color(sid)? == Color::Black {
            return Ok(SegmentAction::Skipped);
        }
        self.meter.lock_op(); // lock (shared)
        let lock_t = self.obs.timer();
        let pending = {
            let cap = storage.capture(sid)?;
            self.meter.alloc_op();
            self.meter.move_words(cap.data.len() as u64);
            PendingFlush {
                sid,
                data: cap.data.into(),
                version: cap.version,
                gate: cap.max_lsn,
            }
        };
        storage.paint_black(sid)?;
        self.meter.lock_op(); // unlock — before the I/O, the whole point
        self.obs.observe_timer("ckpt.lock_hold_ns", lock_t);
        self.audit.emit(|| AuditEvent::PaintFlipped {
            sid,
            to: PaintColor::Black,
        });
        self.active.as_mut().expect("checkpoint active").pending = Some(pending);
        match self.try_flush_pending(storage, log, backup)? {
            Some(io_words) => Ok(SegmentAction::Flushed { io_words }),
            None => Ok(SegmentAction::CopiedPendingWal),
        }
    }

    /// COUFLUSH / COUCOPY (§3.2.2, Figure 3.3) and the beyond-paper
    /// COUAC: segments updated since the checkpoint began are flushed
    /// from their transaction-saved old copies; untouched segments are
    /// flushed live (in place for COUFLUSH, via a buffer otherwise).
    ///
    /// The quiesced variants need no LSN gate — every update in their
    /// snapshot predates the begin-checkpoint log force. COUAC does not
    /// quiesce, so a live segment may contain installs whose log records
    /// are still volatile: its live flushes gate like FUZZYCOPY's.
    fn step_cou(
        &mut self,
        storage: &mut Storage,
        log: &mut LogManager,
        backup: &mut dyn BackupStore,
        sid: SegmentId,
    ) -> Result<SegmentAction> {
        let (ckpt, copy, snapshot_version, full) = {
            let a = self.active.as_ref().expect("checkpoint active");
            (a.ckpt, a.copy, a.snapshot_version, a.effective_full)
        };

        // Dirty-bit pre-check, without locking: a segment that is clean
        // with respect to the target copy cannot have been updated since
        // the checkpoint began (an update would have dirtied it), so it
        // has no old copy and nothing to flush. Figure 3.3 locks every
        // CUR_SEG before examining it; skipping clean segments lock-free
        // is a safe refinement that spares partial checkpoints two
        // `C_lock` per clean segment.
        if !full && !storage.is_dirty(sid, copy)? {
            // A clean segment must have no old copy; the COU-lifetime
            // audit checker verifies this in release builds.
            let has_old = storage.has_old(sid)?;
            debug_assert!(!has_old, "clean segment with old copy");
            self.audit
                .emit(|| AuditEvent::CleanSegmentSkipped { sid, has_old });
            return Ok(SegmentAction::Skipped);
        }

        // Figure 3.3 locks CUR_SEG exclusively to examine it.
        self.meter.lock_op();
        let lock_t = self.obs.timer();
        let seg_version = storage.segment_meta(sid)?.version;

        if seg_version > snapshot_version {
            // Updated since the checkpoint began: the snapshot content is
            // in the old copy (the updating transaction saved it). Its
            // log records predate the begin force, so no LSN gate.
            self.meter.lock_op(); // unlock; the old copy is private
            self.obs.observe_timer("ckpt.lock_hold_ns", lock_t);
            let old = storage.take_old(sid, &self.meter)?.ok_or_else(|| {
                MmdbError::Invalid(format!(
                    "COU protocol violation: {sid} updated after the snapshot has no old copy"
                ))
            })?;
            self.audit.emit(|| AuditEvent::OldCopySwept { sid });
            let flushed = storage.segment_meta(sid)?.flushed_version[copy & 1];
            if full || old.version > flushed {
                self.meter.io_op();
                self.flush_observed(backup, copy, sid, &old.data)?;
                self.obs
                    .counter("ckpt.old_copy_flush_words", old.data.len() as u64);
                storage.mark_flushed(sid, copy, old.version)?;
                let durable = log.durable_lsn();
                self.audit.emit(|| AuditEvent::SegmentFlushed {
                    ckpt,
                    copy,
                    sid,
                    image_max_lsn: old.max_lsn,
                    durable,
                    from_old_copy: true,
                });
                let words = old.data.len() as u64;
                self.record_flush(words, true);
                return Ok(SegmentAction::Flushed { io_words: words });
            }
            // Old copy predates the last flush to this ping-pong copy:
            // the backup already has this content.
            return Ok(SegmentAction::Skipped);
        }

        // Untouched since the checkpoint began (and dirty, per the
        // pre-check): live content *is* the snapshot content.
        match self.algorithm {
            Algorithm::CouFlush => {
                // Hold the lock across the flush.
                let (version, words, image_max_lsn) = {
                    let cap = storage.capture(sid)?;
                    self.meter.io_op();
                    self.flush_observed(backup, copy, sid, cap.data)?;
                    (cap.version, cap.data.len() as u64, cap.max_lsn)
                };
                storage.mark_flushed(sid, copy, version)?;
                self.meter.lock_op(); // unlock
                self.obs.observe_timer("ckpt.lock_hold_ns", lock_t);
                let durable = log.durable_lsn();
                self.audit.emit(|| AuditEvent::SegmentFlushed {
                    ckpt,
                    copy,
                    sid,
                    image_max_lsn,
                    durable,
                    from_old_copy: false,
                });
                self.record_flush(words, false);
                Ok(SegmentAction::Flushed { io_words: words })
            }
            Algorithm::CouCopy => {
                // Copy under lock, flush unlocked.
                let (buf, version, image_max_lsn): (Box<[Word]>, u64, Lsn) = {
                    let cap = storage.capture(sid)?;
                    self.meter.alloc_op();
                    self.meter.move_words(cap.data.len() as u64);
                    (cap.data.into(), cap.version, cap.max_lsn)
                };
                self.meter.lock_op(); // unlock
                self.obs.observe_timer("ckpt.lock_hold_ns", lock_t);
                self.meter.io_op();
                self.flush_observed(backup, copy, sid, &buf)?;
                storage.mark_flushed(sid, copy, version)?;
                self.meter.alloc_op(); // free the buffer
                let durable = log.durable_lsn();
                self.audit.emit(|| AuditEvent::SegmentFlushed {
                    ckpt,
                    copy,
                    sid,
                    image_max_lsn,
                    durable,
                    from_old_copy: false,
                });
                let words = buf.len() as u64;
                self.record_flush(words, false);
                Ok(SegmentAction::Flushed { io_words: words })
            }
            Algorithm::CouAc => {
                // Copy under lock, then flush through the WAL gate: the
                // live content may include post-begin installs whose log
                // records are not yet durable.
                let pending = {
                    let cap = storage.capture(sid)?;
                    self.meter.alloc_op();
                    self.meter.move_words(cap.data.len() as u64);
                    PendingFlush {
                        sid,
                        data: cap.data.into(),
                        version: cap.version,
                        gate: cap.max_lsn,
                    }
                };
                self.meter.lock_op(); // unlock before the I/O
                self.obs.observe_timer("ckpt.lock_hold_ns", lock_t);
                self.active.as_mut().expect("checkpoint active").pending = Some(pending);
                match self.try_flush_pending(storage, log, backup)? {
                    Some(io_words) => Ok(SegmentAction::Flushed { io_words }),
                    None => Ok(SegmentAction::CopiedPendingWal),
                }
            }
            _ => unreachable!("step_cou dispatched for non-COU algorithm"),
        }
    }
}

#[derive(Debug)]
enum SegmentAction {
    Skipped,
    Flushed {
        io_words: u64,
    },
    /// Copied and processed, but the buffered image awaits the log.
    CopiedPendingWal,
    /// Nothing processed; retry the same segment later (2CFLUSH + Wait).
    WaitingForLog,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_disk::{BackupStore, CopyStatus, MemBackup};
    use mmdb_log::{LogManager, MemLogDevice};
    use mmdb_storage::Storage;
    use mmdb_types::{CostCategory, CostParams, LogMode, Params, RecordId};

    struct Rig {
        storage: Storage,
        log: LogManager,
        backup: MemBackup,
        ckpt: Checkpointer,
        sync_meter: CostMeter,
        next_tau: u64,
    }

    fn rig(algorithm: Algorithm, mode: CkptMode, log_mode: LogMode, policy: WalPolicy) -> Rig {
        let p = Params::small();
        Rig {
            storage: Storage::new(p.db).unwrap(),
            log: LogManager::new(
                Box::new(MemLogDevice::new()),
                log_mode,
                CostMeter::shared(CostParams::default()),
            ),
            backup: MemBackup::new(p.db),
            ckpt: Checkpointer::new(
                algorithm,
                mode,
                policy,
                CostMeter::shared(CostParams::default()),
            ),
            sync_meter: CostMeter::new(CostParams::default()),
            next_tau: 0,
        }
    }

    impl Rig {
        fn tau(&mut self) -> Timestamp {
            self.next_tau += 1;
            Timestamp(self.next_tau)
        }

        /// Writes one record through the full protocol: log the update,
        /// run the COU hook, install.
        fn write_record(&mut self, rid: u64, fill: u32) {
            let tau = self.tau();
            let s_rec = self.storage.db_params().s_rec as usize;
            let value = vec![fill; s_rec];
            let rec = LogRecord::Update {
                txn: TxnId(tau.raw()),
                record: RecordId(rid),
                value: value.clone(),
            };
            let lsn = self.log.append(&rec);
            let end_lsn = rec.end_lsn(lsn);
            let sid = self.storage.segment_of(RecordId(rid)).unwrap();
            self.ckpt
                .on_before_install(&mut self.storage, sid, &self.sync_meter)
                .unwrap();
            self.storage
                .install_record(RecordId(rid), &value, end_lsn, tau, &self.sync_meter)
                .unwrap();
        }

        fn begin(&mut self) -> BeginReport {
            let tau = self.tau();
            self.ckpt
                .begin(&mut self.storage, &mut self.log, &mut self.backup, &[], tau)
                .unwrap()
        }

        fn run(&mut self) -> CkptReport {
            self.ckpt
                .run_to_completion(&mut self.storage, &mut self.log, &mut self.backup)
                .unwrap()
        }

        fn checkpoint(&mut self) -> CkptReport {
            self.begin();
            self.run()
        }

        /// Seeds both ping-pong copies (two checkpoints, escalated to
        /// full automatically) so that later checkpoints are genuinely
        /// partial.
        fn seed(&mut self) {
            self.checkpoint();
            self.checkpoint();
        }

        fn read_back(&mut self, copy: usize, sid: u32) -> Vec<u32> {
            let mut buf = vec![0u32; self.storage.db_params().s_seg as usize];
            self.backup
                .read_segment(copy, SegmentId(sid), &mut buf)
                .unwrap();
            buf
        }
    }

    fn all_sound(log_mode: LogMode) -> Vec<Algorithm> {
        Algorithm::ALL
            .into_iter()
            .filter(|a| a.sound_under(log_mode))
            .collect()
    }

    #[test]
    fn full_checkpoint_copies_whole_database_every_algorithm() {
        for log_mode in [LogMode::VolatileTail, LogMode::StableTail] {
            for alg in all_sound(log_mode) {
                let mut r = rig(alg, CkptMode::Full, log_mode, WalPolicy::Force);
                r.write_record(10, 0xAA);
                r.write_record(700, 0xBB);
                let report = r.checkpoint();
                assert_eq!(
                    report.segments_flushed, 32,
                    "{alg}: full checkpoint flushes all segments"
                );
                assert_eq!(report.segments_skipped, 0, "{alg}");
                assert_eq!(
                    r.backup.copy_status(1).unwrap(),
                    CopyStatus::Complete(CheckpointId(1)),
                    "{alg}: first checkpoint goes to copy 1"
                );
                // backup content equals live content for every segment
                for sid in 0..32 {
                    assert_eq!(
                        r.read_back(1, sid),
                        r.storage.segment_data(SegmentId(sid)).unwrap(),
                        "{alg}: segment {sid}"
                    );
                }
            }
        }
    }

    #[test]
    fn partial_checkpoint_flushes_only_dirty() {
        for log_mode in [LogMode::VolatileTail, LogMode::StableTail] {
            for alg in all_sound(log_mode) {
                let mut r = rig(alg, CkptMode::Partial, log_mode, WalPolicy::Force);
                r.seed();
                r.write_record(0, 1); // segment 0
                r.write_record(64, 2); // segment 1
                r.write_record(65, 3); // segment 1 again
                let report = r.checkpoint();
                assert_eq!(report.segments_flushed, 2, "{alg}");
                // the two-color sweep visits only the white list, so it
                // never sees (or "skips") the clean segments
                let expect_skipped = if alg.is_two_color() { 0 } else { 30 };
                assert_eq!(report.segments_skipped, expect_skipped, "{alg}");
            }
        }
    }

    #[test]
    fn pingpong_alternates_and_tracks_dirtiness_per_copy() {
        let mut r = rig(
            Algorithm::FuzzyCopy,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.seed(); // ckpts 1 and 2 seed both copies (escalated to full)
        r.write_record(0, 1);
        let rep3 = r.checkpoint(); // ckpt 3 → copy 1
        assert_eq!(rep3.copy, 1);
        assert_eq!(rep3.segments_flushed, 1);

        // No new writes: ckpt 4 → copy 0, which has not seen segment 0's
        // update yet
        let rep4 = r.checkpoint();
        assert_eq!(rep4.copy, 0);
        assert_eq!(rep4.segments_flushed, 1, "copy 0 still needs segment 0");

        // Still no new writes: ckpt 5 → copy 1, already has everything
        let rep5 = r.checkpoint();
        assert_eq!(rep5.copy, 1);
        assert_eq!(rep5.segments_flushed, 0);
        assert_eq!(rep5.segments_skipped, 32);
    }

    #[test]
    fn begin_twice_fails() {
        let mut r = rig(
            Algorithm::FuzzyCopy,
            CkptMode::Full,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.begin();
        let tau = r.tau();
        let err = r
            .ckpt
            .begin(&mut r.storage, &mut r.log, &mut r.backup, &[], tau)
            .unwrap_err();
        assert!(matches!(err, MmdbError::CheckpointInProgress));
    }

    #[test]
    fn step_without_begin_fails() {
        let mut r = rig(
            Algorithm::FuzzyCopy,
            CkptMode::Full,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        let err = r
            .ckpt
            .step(&mut r.storage, &mut r.log, &mut r.backup)
            .unwrap_err();
        assert!(matches!(err, MmdbError::NoCheckpointInProgress));
    }

    #[test]
    fn fastfuzzy_rejected_without_stable_tail() {
        let mut r = rig(
            Algorithm::FastFuzzy,
            CkptMode::Full,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        let tau = r.tau();
        let err = r
            .ckpt
            .begin(&mut r.storage, &mut r.log, &mut r.backup, &[], tau)
            .unwrap_err();
        assert!(matches!(err, MmdbError::UnsoundConfiguration(_)));
    }

    #[test]
    fn cou_rejects_non_quiescent_begin() {
        let mut r = rig(
            Algorithm::CouCopy,
            CkptMode::Full,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        let tau = r.tau();
        let err = r
            .ckpt
            .begin(&mut r.storage, &mut r.log, &mut r.backup, &[TxnId(1)], tau)
            .unwrap_err();
        assert!(matches!(err, MmdbError::Invalid(_)));
    }

    #[test]
    fn wal_gate_blocks_fuzzycopy_under_wait_policy() {
        let mut r = rig(
            Algorithm::FuzzyCopy,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Wait,
        );
        r.write_record(0, 7); // log record sits in the volatile tail
        r.begin();
        // first step copies the segment but cannot flush: log not durable
        let out = r
            .ckpt
            .step(&mut r.storage, &mut r.log, &mut r.backup)
            .unwrap();
        assert_eq!(out, StepOutcome::WaitingForLog);
        // a commit-style force unblocks it
        r.log.force().unwrap();
        let out = r
            .ckpt
            .step(&mut r.storage, &mut r.log, &mut r.backup)
            .unwrap();
        assert!(matches!(out, StepOutcome::Progress { io_words: 2048 }));
        assert!(r.ckpt.stats().wal_waits >= 1);
    }

    #[test]
    fn wal_gate_forces_under_force_policy() {
        let mut r = rig(
            Algorithm::FuzzyCopy,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.seed();
        r.write_record(0, 7);
        r.begin();
        let report = r.run();
        assert_eq!(report.segments_flushed, 1);
        assert!(r.ckpt.stats().log_forces >= 1);
        // the flushed image matches the updated content
        assert_eq!(r.read_back(1, 0)[0], 7);
    }

    #[test]
    fn two_color_paints_dirty_white_and_sweeps_black() {
        let mut r = rig(
            Algorithm::TwoColorCopy,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.seed();
        r.write_record(0, 1);
        r.write_record(300, 2); // segment 4
        r.begin();
        assert_eq!(r.storage.white_count(), 2);
        assert_eq!(r.storage.color(SegmentId(0)).unwrap(), Color::White);
        assert_eq!(r.storage.color(SegmentId(1)).unwrap(), Color::Black);
        r.run();
        assert_eq!(r.storage.white_count(), 0, "all white segments processed");
    }

    #[test]
    fn cou_snapshot_is_preserved_against_concurrent_updates() {
        for alg in [Algorithm::CouFlush, Algorithm::CouCopy] {
            let mut r = rig(
                alg,
                CkptMode::Partial,
                LogMode::VolatileTail,
                WalPolicy::Force,
            );
            // Pre-checkpoint state: record 0 (seg 0) = 5, record 2000 (seg 31) = 6.
            r.write_record(0, 5);
            r.write_record(2000, 6);
            let snap_seg0 = r.storage.segment_data(SegmentId(0)).unwrap().to_vec();
            let snap_seg31 = r.storage.segment_data(SegmentId(31)).unwrap().to_vec();

            r.begin();
            // Concurrent updates touch both segments before they are swept.
            r.write_record(1, 99); // seg 0: not yet swept → old copy saved
            assert!(r.storage.has_old(SegmentId(0)).unwrap(), "{alg}");
            r.write_record(2001, 98); // seg 31
            assert!(r.storage.has_old(SegmentId(31)).unwrap(), "{alg}");

            let report = r.run();
            assert_eq!(report.old_copies_flushed, 2, "{alg}");
            // The backup holds the *snapshot* content, not the concurrent updates.
            assert_eq!(r.read_back(1, 0), snap_seg0, "{alg}: segment 0 snapshot");
            assert_eq!(r.read_back(1, 31), snap_seg31, "{alg}: segment 31 snapshot");
            // And no old copies linger.
            assert_eq!(r.storage.old_copy_words(), 0, "{alg}");
        }
    }

    #[test]
    fn cou_update_behind_cursor_does_not_copy() {
        let mut r = rig(
            Algorithm::CouCopy,
            CkptMode::Full,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.begin();
        // Sweep past segment 0.
        loop {
            let out = r
                .ckpt
                .step(&mut r.storage, &mut r.log, &mut r.backup)
                .unwrap();
            assert!(!matches!(out, StepOutcome::Done { .. }), "too fast");
            if r.ckpt.cursor().unwrap() > SegmentId(0) {
                break;
            }
        }
        // An update to the already-swept segment 0 must NOT save an old copy.
        r.write_record(0, 42);
        assert!(!r.storage.has_old(SegmentId(0)).unwrap());
        // But an update ahead of the cursor must.
        r.write_record(2000, 43);
        assert!(r.storage.has_old(SegmentId(31)).unwrap());
        r.run();
    }

    #[test]
    fn cou_second_update_to_same_segment_copies_once() {
        let mut r = rig(
            Algorithm::CouCopy,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.write_record(2000, 1);
        r.begin();
        r.write_record(2000, 2);
        r.write_record(2001, 3); // same segment 31
        assert!(r.storage.has_old(SegmentId(31)).unwrap());
        let report = r.run();
        assert_eq!(report.old_copies_flushed, 1);
        // backup holds the snapshot value 1, not 2 or 3
        assert_eq!(r.read_back(1, 31)[512], 1);
    }

    #[test]
    fn cou_old_copy_of_clean_segment_is_skipped_for_partial() {
        // A segment that was clean w.r.t. the target copy at begin but is
        // updated mid-checkpoint: the old copy exists but matches what the
        // backup already has, so a partial checkpoint skips the flush.
        let mut r = rig(
            Algorithm::CouCopy,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.write_record(2000, 1);
        r.checkpoint(); // ckpt 1 → copy 1: segment 31 flushed with value 1
        r.checkpoint(); // ckpt 2 → copy 0: segment 31 flushed with value 1

        // ckpt 3 → copy 1. Segment 31 is clean w.r.t. copy 1.
        r.begin();
        r.write_record(2000, 2); // updated mid-checkpoint → old copy saved
        let report = r.run();
        assert_eq!(
            report.old_copies_flushed, 0,
            "snapshot content already in copy 1"
        );
        assert_eq!(r.read_back(1, 31)[512], 1);
        // The live update (value 2) is still dirty for the *next* checkpoint.
        let rep4 = r.checkpoint(); // ckpt 4 → copy 0
        assert_eq!(rep4.segments_flushed, 1);
        assert_eq!(r.read_back(0, 31)[512], 2);
    }

    #[test]
    fn cost_accounting_2cflush_vs_2ccopy() {
        // 2CCOPY pays alloc + segment move that 2CFLUSH does not; both pay
        // two lock ops, one LSN check and one I/O per flushed segment.
        let run = |alg: Algorithm| -> mmdb_types::CostBreakdown {
            let mut r = rig(alg, CkptMode::Full, LogMode::VolatileTail, WalPolicy::Force);
            r.checkpoint();
            r.ckpt.meter.snapshot()
        };
        let flush = run(Algorithm::TwoColorFlush);
        let copy = run(Algorithm::TwoColorCopy);
        assert_eq!(flush.get(CostCategory::Move), 0, "2CFLUSH never copies");
        assert_eq!(
            copy.get(CostCategory::Move),
            32 * 2048,
            "2CCOPY copies every segment"
        );
        assert_eq!(flush.get(CostCategory::Io), copy.get(CostCategory::Io));
        assert_eq!(flush.get(CostCategory::Lock), copy.get(CostCategory::Lock));
        assert!(copy.total() > flush.total());
    }

    #[test]
    fn fastfuzzy_is_cheapest() {
        let mut costs = Vec::new();
        for alg in all_sound(LogMode::StableTail) {
            let mut r = rig(alg, CkptMode::Full, LogMode::StableTail, WalPolicy::Force);
            r.checkpoint();
            costs.push((alg, r.ckpt.meter.total()));
        }
        let fast = costs
            .iter()
            .find(|(a, _)| *a == Algorithm::FastFuzzy)
            .unwrap()
            .1;
        for (alg, cost) in &costs {
            assert!(
                fast <= *cost,
                "FASTFUZZY ({fast}) should not cost more than {alg} ({cost})"
            );
        }
    }

    #[test]
    fn crash_abandons_checkpoint_and_drops_old_copies() {
        let mut r = rig(
            Algorithm::CouCopy,
            CkptMode::Full,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.write_record(2000, 1);
        r.begin();
        r.write_record(2000, 2);
        assert!(r.storage.old_copy_words() > 0);
        r.ckpt.crash(&mut r.storage);
        assert!(!r.ckpt.is_active());
        assert_eq!(r.storage.old_copy_words(), 0);
        // the torn checkpoint's copy is still marked in-progress
        assert_eq!(
            r.backup.copy_status(1).unwrap(),
            CopyStatus::InProgress(CheckpointId(1))
        );
        assert!(r.backup.recovery_copy().is_err(), "no complete backup yet");
    }

    #[test]
    fn end_marker_and_header_agree() {
        let mut r = rig(
            Algorithm::FuzzyCopy,
            CkptMode::Full,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.checkpoint();
        r.checkpoint();
        // backup headers: ckpt 1 on copy 1, ckpt 2 on copy 0
        assert_eq!(r.backup.recovery_copy().unwrap(), (0, CheckpointId(2)));
        // the log contains matching begin/end markers
        let scanner = mmdb_log::LogScanner::from_device(r.log.device_mut()).unwrap();
        let mark = scanner.last_complete_checkpoint().unwrap();
        assert_eq!(mark.ckpt, CheckpointId(2));
    }

    #[test]
    fn two_color_begin_records_active_transactions() {
        let mut r = rig(
            Algorithm::TwoColorCopy,
            CkptMode::Full,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        let tau = r.tau();
        r.ckpt
            .begin(
                &mut r.storage,
                &mut r.log,
                &mut r.backup,
                &[TxnId(7), TxnId(9)],
                tau,
            )
            .unwrap();
        r.run();
        let scanner = mmdb_log::LogScanner::from_device(r.log.device_mut()).unwrap();
        let mark = scanner.last_complete_checkpoint().unwrap();
        assert_eq!(mark.active, vec![TxnId(7), TxnId(9)]);
    }

    #[test]
    fn reports_accumulate_into_stats() {
        let mut r = rig(
            Algorithm::FastFuzzy,
            CkptMode::Partial,
            LogMode::StableTail,
            WalPolicy::Force,
        );
        r.seed(); // ckpts 1+2: full, 32 segments each
        r.write_record(0, 1);
        r.checkpoint(); // ckpt 3: seg 0 → copy 1
        r.write_record(64, 2);
        r.checkpoint(); // ckpt 4: segs 0 and 1 → copy 0
        let s = r.ckpt.stats();
        assert_eq!(s.completed, 4);
        assert_eq!(s.segments_flushed, 64 + 1 + 2);
        assert_eq!(s.io_words, 67 * 2048);
        assert_eq!(r.ckpt.last_report().unwrap().ckpt, CheckpointId(4));
    }
    #[test]
    fn couac_begins_with_active_transactions_listed() {
        let mut r = rig(
            Algorithm::CouAc,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.write_record(0, 1);
        let tau = r.tau();
        // unlike COUCOPY/COUFLUSH, begin succeeds with active txns...
        r.ckpt
            .begin(
                &mut r.storage,
                &mut r.log,
                &mut r.backup,
                &[TxnId(41), TxnId(42)],
                tau,
            )
            .unwrap();
        r.run();
        // ...and the marker records them for recovery's backward scan
        let scanner = mmdb_log::LogScanner::from_device(r.log.device_mut()).unwrap();
        let mark = scanner.last_complete_checkpoint().unwrap();
        assert_eq!(mark.active, vec![TxnId(41), TxnId(42)]);
    }

    #[test]
    fn couac_snapshot_preserved_and_gated() {
        let mut r = rig(
            Algorithm::CouAc,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Wait,
        );
        r.write_record(0, 5);
        r.log.force().unwrap();
        r.begin();
        // under Wait policy, the live flush of segment 0 must gate on the
        // log if an unflushed update lands first... here the log is
        // durable, so the first step flushes.
        let out = r
            .ckpt
            .step(&mut r.storage, &mut r.log, &mut r.backup)
            .unwrap();
        assert!(matches!(
            out,
            StepOutcome::Progress { io_words: 2048 } | StepOutcome::Done { io_words: 2048 }
        ));

        // a post-begin update to a not-yet-swept segment saves an old copy
        r.write_record(2000, 7); // segment 31
        assert!(r.storage.has_old(SegmentId(31)).unwrap());
        r.run();
        assert_eq!(r.storage.old_copy_words(), 0);
    }

    #[test]
    fn couac_gate_is_open_after_the_begin_force() {
        // COUAC checks the WAL gate on live flushes, but in this engine
        // the gate never actually closes: the begin-checkpoint log force
        // covers every pre-begin update, and post-begin installs are
        // intercepted by the COU hook (the sweep then writes the old
        // copy, not the live content). The gate check remains as a
        // safety net — and a metered cost — for engines whose installs
        // could bypass the hook.
        let mut r = rig(
            Algorithm::CouAc,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Wait,
        );
        // seed so later checkpoints are genuinely partial
        r.checkpoint();
        r.checkpoint();
        // an update whose log record stays in the volatile tail
        r.write_record(0, 9);
        // (no explicit force: the checkpoint begin performs one)
        r.begin();
        assert!(
            r.log.is_durable(r.log.next_lsn()),
            "the begin force made the tail durable"
        );
        let out = r
            .ckpt
            .step(&mut r.storage, &mut r.log, &mut r.backup)
            .unwrap();
        assert!(
            matches!(out, StepOutcome::Progress { io_words: 2048 }),
            "gate open → the live flush proceeds: {out:?}"
        );
        r.run();
        assert_eq!(r.read_back(1, 0)[0], 9);
    }

    #[test]
    fn two_color_white_list_freezes_at_begin() {
        let mut r = rig(
            Algorithm::TwoColorCopy,
            CkptMode::Partial,
            LogMode::VolatileTail,
            WalPolicy::Force,
        );
        r.seed();
        r.write_record(0, 1); // segment 0 dirty at begin
        r.begin();
        assert_eq!(r.storage.white_count(), 1);
        // a segment dirtied AFTER begin stays black and is NOT flushed by
        // this checkpoint (flipping it white would break the color
        // serialization argument)
        r.write_record(2000, 2); // segment 31
        assert_eq!(r.storage.color(SegmentId(31)).unwrap(), Color::Black);
        let report = r.run();
        assert_eq!(report.segments_flushed, 1, "only the frozen white set");
        // the next checkpoint picks it up
        let report = r.checkpoint();
        assert!(report.segments_flushed >= 1);
    }

    #[test]
    fn effective_full_only_escalates_unseeded_copies() {
        let mut r = rig(
            Algorithm::FastFuzzy,
            CkptMode::Partial,
            LogMode::StableTail,
            WalPolicy::Force,
        );
        // ckpt 1 (copy 1): empty copy → escalated to full
        let rep = r.checkpoint();
        assert_eq!(rep.segments_flushed, 32);
        // ckpt 2 (copy 0): also empty → full
        let rep = r.checkpoint();
        assert_eq!(rep.segments_flushed, 32);
        // ckpt 3 (copy 1, seeded): genuinely partial
        let rep = r.checkpoint();
        assert_eq!(rep.segments_flushed, 0);
    }
}
