//! The checkpointer: six algorithms for asynchronously maintaining the
//! backup database (paper §3).
//!
//! | algorithm   | consistency | mechanism |
//! |-------------|-------------|-----------|
//! | `FUZZYCOPY` | fuzzy       | copy segment to a buffer, flush when the log is durable past the segment's updates (LSN gate) |
//! | `2CFLUSH`   | TC          | two-color paint; lock each segment across its disk flush |
//! | `2CCOPY`    | TC          | two-color paint; copy under lock, flush the buffer unlocked |
//! | `COUFLUSH`  | TC          | copy-on-update snapshot; flush un-snapshotted segments under lock |
//! | `COUCOPY`   | TC          | copy-on-update snapshot; copy un-snapshotted segments under lock, flush unlocked |
//! | `FASTFUZZY` | fuzzy       | flush in place, no locks or LSNs; requires a stable log tail (§4) |
//!
//! The checkpointer is a *step machine*: [`Checkpointer::begin`] starts a
//! checkpoint and [`Checkpointer::step`] processes (at most) one segment.
//! The engine interleaves steps with transactions, which makes every
//! interleaving — including crashes between arbitrary steps — expressible
//! deterministically in tests, and lets the discrete-event simulator
//! assign each step its disk service time.
//!
//! Each step is atomic with respect to transactions; within a step,
//! "lock"/"unlock" are charged as `C_lock` operations per the paper's
//! cost model (§2.1). Lock *wait* delays are not modeled, matching the
//! paper ("We hope to be able to measure synchronization and other
//! delays using the testbed").

#![warn(missing_docs)]

mod checkpointer;

pub use checkpointer::{BeginReport, Checkpointer, CkptReport, CkptStats, StepOutcome, WalPolicy};
