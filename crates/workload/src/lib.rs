//! Workload generators for the checkpointing study.
//!
//! The paper's load model (§2.5) is deliberately simple: identical
//! transactions arriving at rate `λ`, each updating `N_ru` distinct
//! records chosen uniformly from the whole database. [`UniformWorkload`]
//! reproduces it exactly; [`ZipfWorkload`] and [`HotSetWorkload`] are
//! beyond-paper extensions used by the ablation benches (skew changes how
//! quickly segments dirty, which partial checkpoints care about).
//! [`ArrivalProcess`] supplies the Poisson arrival stream for the
//! discrete-event simulator.
//!
//! Everything is deterministic under a seed, so simulator runs are
//! reproducible.

#![warn(missing_docs)]

use mmdb_types::{RecordId, Word};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One generated transaction: the records it updates (distinct) and a
/// deterministic fill value per update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    /// Sequence number of the transaction in this workload stream.
    pub seq: u64,
    /// The distinct records to update, with their new fill words.
    pub updates: Vec<(RecordId, Word)>,
}

impl TxnSpec {
    /// Materializes the update list with full record values of `s_rec`
    /// words each.
    pub fn materialize(&self, s_rec: usize) -> Vec<(RecordId, Vec<Word>)> {
        self.updates
            .iter()
            .map(|(rid, fill)| (*rid, vec![*fill; s_rec]))
            .collect()
    }
}

/// A stream of transactions over a record space.
pub trait Workload {
    /// The next transaction in the stream.
    fn next_txn(&mut self) -> TxnSpec;

    /// Number of records in the workload's record space.
    fn n_records(&self) -> u64;
}

fn distinct_records(
    rng: &mut StdRng,
    n_updates: u32,
    mut pick: impl FnMut(&mut StdRng) -> u64,
    seq: u64,
) -> TxnSpec {
    let mut records = Vec::with_capacity(n_updates as usize);
    let mut updates = Vec::with_capacity(n_updates as usize);
    while updates.len() < n_updates as usize {
        let r = pick(rng);
        if !records.contains(&r) {
            records.push(r);
            // a deterministic, non-zero fill derived from seq and slot
            let fill = (seq as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(updates.len() as u32)
                | 1;
            updates.push((RecordId(r), fill));
        }
    }
    TxnSpec { seq, updates }
}

/// The paper's workload: `N_ru` distinct records, uniform over the
/// database (§2.5: "The update probability is distributed uniformly
/// across all of the database records").
#[derive(Debug)]
pub struct UniformWorkload {
    n_records: u64,
    n_updates: u32,
    rng: StdRng,
    seq: u64,
}

impl UniformWorkload {
    /// A seeded uniform workload.
    pub fn new(n_records: u64, n_updates: u32, seed: u64) -> UniformWorkload {
        assert!(n_records >= n_updates as u64, "not enough records");
        UniformWorkload {
            n_records,
            n_updates,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
        }
    }
}

impl Workload for UniformWorkload {
    fn next_txn(&mut self) -> TxnSpec {
        self.seq += 1;
        let n = self.n_records;
        distinct_records(
            &mut self.rng,
            self.n_updates,
            |rng| rng.random_range(0..n),
            self.seq,
        )
    }

    fn n_records(&self) -> u64 {
        self.n_records
    }
}

/// Zipf-distributed record popularity (beyond-paper): record `i` is drawn
/// with probability ∝ `1/(i+1)^theta`. `theta = 0` degenerates to
/// uniform; `theta ≈ 1` is the classic heavy skew.
#[derive(Debug)]
pub struct ZipfWorkload {
    cumulative: Vec<f64>,
    n_updates: u32,
    rng: StdRng,
    seq: u64,
}

impl ZipfWorkload {
    /// A seeded Zipf workload. `n_records` is capped in practice by the
    /// cumulative table (8 bytes/record).
    pub fn new(n_records: u64, n_updates: u32, theta: f64, seed: u64) -> ZipfWorkload {
        assert!(n_records >= n_updates as u64, "not enough records");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cumulative = Vec::with_capacity(n_records as usize);
        let mut total = 0.0f64;
        for i in 0..n_records {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        // normalize
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfWorkload {
            cumulative,
            n_updates,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
        }
    }

    fn pick(&mut self) -> u64 {
        let u: f64 = self.rng.random_range(0.0..1.0);
        // first index with cumulative >= u
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.cumulative.len() as u64 - 1),
        }
    }
}

impl Workload for ZipfWorkload {
    fn next_txn(&mut self) -> TxnSpec {
        self.seq += 1;
        let seq = self.seq;
        let n_updates = self.n_updates;
        let mut records = Vec::with_capacity(n_updates as usize);
        let mut updates = Vec::with_capacity(n_updates as usize);
        while updates.len() < n_updates as usize {
            let r = self.pick();
            if !records.contains(&r) {
                records.push(r);
                let fill = (seq as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(updates.len() as u32)
                    | 1;
                updates.push((RecordId(r), fill));
            }
        }
        TxnSpec { seq, updates }
    }

    fn n_records(&self) -> u64 {
        self.cumulative.len() as u64
    }
}

/// Hot-set skew (beyond-paper): a fraction `hot_access` of updates go to
/// the first `hot_records` fraction of the record space.
#[derive(Debug)]
pub struct HotSetWorkload {
    n_records: u64,
    hot_records: u64,
    hot_access: f64,
    n_updates: u32,
    rng: StdRng,
    seq: u64,
}

impl HotSetWorkload {
    /// E.g. `HotSetWorkload::new(n, 5, 0.1, 0.9, seed)`: 90% of updates
    /// hit the hottest 10% of records.
    pub fn new(
        n_records: u64,
        n_updates: u32,
        hot_fraction: f64,
        hot_access: f64,
        seed: u64,
    ) -> HotSetWorkload {
        assert!((0.0..=1.0).contains(&hot_fraction));
        assert!((0.0..=1.0).contains(&hot_access));
        let hot_records = ((n_records as f64 * hot_fraction) as u64).max(n_updates as u64);
        HotSetWorkload {
            n_records,
            hot_records,
            hot_access,
            n_updates,
            rng: StdRng::seed_from_u64(seed),
            seq: 0,
        }
    }
}

impl Workload for HotSetWorkload {
    fn next_txn(&mut self) -> TxnSpec {
        self.seq += 1;
        let (n, hot, p) = (self.n_records, self.hot_records, self.hot_access);
        distinct_records(
            &mut self.rng,
            self.n_updates,
            |rng| {
                if rng.random_range(0.0..1.0) < p {
                    rng.random_range(0..hot)
                } else {
                    rng.random_range(0..n)
                }
            },
            self.seq,
        )
    }

    fn n_records(&self) -> u64 {
        self.n_records
    }
}

/// Poisson arrivals at rate `λ` transactions/second (§2.5); interarrival
/// times are exponential.
#[derive(Debug)]
pub struct ArrivalProcess {
    lambda: f64,
    rng: StdRng,
    now: f64,
}

impl ArrivalProcess {
    /// A seeded arrival process starting at time 0.
    pub fn new(lambda: f64, seed: u64) -> ArrivalProcess {
        assert!(lambda > 0.0, "arrival rate must be positive");
        ArrivalProcess {
            lambda,
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
        }
    }

    /// The time of the next arrival (monotonically increasing).
    pub fn next_arrival(&mut self) -> f64 {
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        self.now += -u.ln() / self.lambda;
        self.now
    }

    /// The configured rate.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_generates_distinct_records_in_range() {
        let mut w = UniformWorkload::new(1000, 5, 42);
        for _ in 0..200 {
            let t = w.next_txn();
            assert_eq!(t.updates.len(), 5);
            let set: HashSet<_> = t.updates.iter().map(|(r, _)| r.raw()).collect();
            assert_eq!(set.len(), 5, "records must be distinct");
            assert!(set.iter().all(|&r| r < 1000));
        }
    }

    #[test]
    fn uniform_is_deterministic_under_seed() {
        let mut a = UniformWorkload::new(1000, 5, 7);
        let mut b = UniformWorkload::new(1000, 5, 7);
        for _ in 0..50 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
        let mut c = UniformWorkload::new(1000, 5, 8);
        let differs = (0..50).any(|_| {
            let mut a2 = UniformWorkload::new(1000, 5, 7);
            a2.next_txn() != c.next_txn()
        });
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn uniform_covers_the_space() {
        let mut w = UniformWorkload::new(100, 5, 1);
        let mut seen = HashSet::new();
        for _ in 0..500 {
            for (r, _) in w.next_txn().updates {
                seen.insert(r.raw());
            }
        }
        assert!(seen.len() > 95, "uniform should touch nearly all records");
    }

    #[test]
    fn zipf_skews_toward_low_ids() {
        let mut w = ZipfWorkload::new(10_000, 5, 1.0, 3);
        let mut hot = 0u64;
        let mut total = 0u64;
        for _ in 0..400 {
            for (r, _) in w.next_txn().updates {
                total += 1;
                if r.raw() < 100 {
                    hot += 1;
                }
            }
        }
        // under zipf(1.0), the top 1% of records draw far more than 1%
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.3, "zipf skew too weak: {frac}");
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut w = ZipfWorkload::new(10_000, 5, 0.0, 3);
        let mut hot = 0u64;
        let mut total = 0u64;
        for _ in 0..400 {
            for (r, _) in w.next_txn().updates {
                total += 1;
                if r.raw() < 100 {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(frac < 0.05, "theta=0 should be ~1%: {frac}");
    }

    #[test]
    fn hotset_concentrates_access() {
        let mut w = HotSetWorkload::new(10_000, 5, 0.1, 0.9, 5);
        let mut hot = 0u64;
        let mut total = 0u64;
        for _ in 0..400 {
            for (r, _) in w.next_txn().updates {
                total += 1;
                if r.raw() < 1000 {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.85, "expected ~91% hot access, got {frac}");
    }

    #[test]
    fn arrivals_are_monotone_with_roughly_right_rate() {
        let mut a = ArrivalProcess::new(100.0, 11);
        let mut last = 0.0;
        let mut t = 0.0;
        let n = 20_000;
        for _ in 0..n {
            t = a.next_arrival();
            assert!(t > last);
            last = t;
        }
        let measured = n as f64 / t;
        assert!(
            (measured - 100.0).abs() < 5.0,
            "rate should be ≈100/s, measured {measured}"
        );
    }

    #[test]
    fn materialize_produces_full_records() {
        let mut w = UniformWorkload::new(100, 2, 1);
        let t = w.next_txn();
        let m = t.materialize(32);
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|(_, v)| v.len() == 32));
        assert!(m.iter().all(|(_, v)| v[0] != 0), "fills are non-zero");
    }

    #[test]
    fn txn_seq_increments() {
        let mut w = UniformWorkload::new(100, 2, 1);
        assert_eq!(w.next_txn().seq, 1);
        assert_eq!(w.next_txn().seq, 2);
    }
}
