//! Property tests for the workload generators: determinism under a
//! seed, Zipf skew that actually responds to `theta`, and Poisson
//! arrivals whose empirical rate matches `λ`.

#![allow(clippy::unwrap_used)]

use mmdb_workload::{ArrivalProcess, UniformWorkload, Workload, ZipfWorkload};
use proptest::prelude::*;

/// Empirical access mass landing on the hottest decile of the record
/// space over `txns` singleton-update transactions.
fn hot_decile_mass(n_records: u64, theta: f64, seed: u64, txns: u64) -> f64 {
    let mut wl = ZipfWorkload::new(n_records, 1, theta, seed);
    let hot_cutoff = n_records / 10;
    let mut hot = 0u64;
    for _ in 0..txns {
        let spec = wl.next_txn();
        if spec.updates[0].0 .0 < hot_cutoff {
            hot += 1;
        }
    }
    hot as f64 / txns as f64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Record `i` is drawn with probability ∝ 1/(i+1)^theta, so the mass
    /// on the hottest decile must grow with theta. Empirical over 3000
    /// draws; the 0.4 theta separation dwarfs sampling noise (~0.01).
    #[test]
    fn zipf_hot_decile_mass_is_monotone_in_theta(
        theta_lo in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let theta_hi = theta_lo + 0.4;
        let lo = hot_decile_mass(256, theta_lo, seed, 3000);
        let hi = hot_decile_mass(256, theta_hi, seed, 3000);
        prop_assert!(
            hi + 0.02 >= lo,
            "hot-decile mass fell as skew rose: theta {theta_lo:.2} -> {lo:.3}, theta {theta_hi:.2} -> {hi:.3}"
        );
        // and real skew beats flat by a visible margin at the top end
        if theta_lo < 0.05 {
            prop_assert!(hi > lo + 0.03, "theta {theta_hi:.2} indistinguishable from uniform");
        }
    }

    /// The same seed replays the identical transaction stream — the
    /// contract the simulator, benches, and the network load driver all
    /// rely on for reproducibility.
    #[test]
    fn uniform_stream_is_deterministic_per_seed(
        seed in any::<u64>(),
        n_updates in 1u32..6,
    ) {
        let mut a = UniformWorkload::new(512, n_updates, seed);
        let mut b = UniformWorkload::new(512, n_updates, seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_txn(), b.next_txn());
        }
    }

    #[test]
    fn zipf_stream_is_deterministic_per_seed(
        seed in any::<u64>(),
        theta in 0.0f64..0.95,
        n_updates in 1u32..6,
    ) {
        let mut a = ZipfWorkload::new(512, n_updates, theta, seed);
        let mut b = ZipfWorkload::new(512, n_updates, theta, seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_txn(), b.next_txn());
        }
    }

    /// Different seeds diverge (else "seeded" would be a fiction).
    #[test]
    fn different_seeds_give_different_streams(seed in any::<u64>()) {
        let other = seed.wrapping_add(1);
        let mut a = UniformWorkload::new(512, 4, seed);
        let mut b = UniformWorkload::new(512, 4, other);
        let diverged = (0..50).any(|_| a.next_txn() != b.next_txn());
        prop_assert!(diverged, "seeds {seed} and {other} produced identical streams");
    }

    /// Poisson arrivals: the empirical mean inter-arrival time over 4000
    /// samples must sit within 15% of 1/λ (the sampling std of the mean
    /// is ~1.6%, so this bound has an order of magnitude of slack).
    #[test]
    fn arrival_process_mean_interarrival_matches_lambda(
        lambda in 0.5f64..50.0,
        seed in any::<u64>(),
    ) {
        let mut ap = ArrivalProcess::new(lambda, seed);
        prop_assert_eq!(ap.lambda(), lambda);
        let n = 4000u64;
        let mut last = 0.0f64;
        let mut prev;
        for _ in 0..n {
            prev = last;
            last = ap.next_arrival();
            prop_assert!(last > prev, "arrival times must strictly increase");
        }
        let mean = last / n as f64;
        let expected = 1.0 / lambda;
        prop_assert!(
            (mean - expected).abs() <= 0.15 * expected,
            "mean inter-arrival {mean:.5} vs expected {expected:.5} (lambda {lambda:.2})"
        );
    }

    /// Every generated transaction touches distinct, in-range records.
    #[test]
    fn transactions_touch_distinct_in_range_records(
        seed in any::<u64>(),
        theta in 0.0f64..0.95,
        n_updates in 1u32..8,
    ) {
        let n_records = 128u64;
        let mut uni = UniformWorkload::new(n_records, n_updates, seed);
        let mut zipf = ZipfWorkload::new(n_records, n_updates, theta, seed);
        for _ in 0..20 {
            for spec in [uni.next_txn(), zipf.next_txn()] {
                let mut seen = std::collections::HashSet::new();
                for (rid, _) in &spec.updates {
                    prop_assert!(rid.0 < n_records, "record {} out of range", rid.0);
                    prop_assert!(seen.insert(rid.0), "duplicate record {} in one txn", rid.0);
                }
                prop_assert_eq!(seen.len(), n_updates as usize);
            }
        }
    }
}
