//! Transaction management: the active-transaction table, shadow-copy
//! write buffering, and two-color conflict tracking.
//!
//! Per the paper's load model (§2.5–2.6):
//!
//! * updates are stored in a buffer local to the updating transaction
//!   until commit (*shadow-copy* scheme, as in IMS/Fastpath) — this crate
//!   holds those buffers as [`StagedWrite`]s;
//! * at commit the engine installs the staged writes into the primary
//!   database and writes REDO log records — installation is orchestrated
//!   by `mmdb-core`, which owns the storage and log;
//! * during an active two-color checkpoint, "no transaction is allowed to
//!   access both white and black records" (§3.2.1) — the table tracks the
//!   colors each transaction has observed and reports violations as
//!   transient errors, which the engine converts into abort + rerun.
//!
//! The table also maintains the statistics the performance study needs:
//! commits, aborts by cause, and restart counts (`p_restart`, §2.7/§4).

#![warn(missing_docs)]

use mmdb_types::{Lsn, MmdbError, RecordId, Result, SegmentId, Timestamp, TxnId, Word};
use std::collections::BTreeMap;

/// The paint color a transaction observed (mirrors
/// `mmdb_storage::Color`, duplicated here to keep this crate free of a
/// storage dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeenColor {
    /// Accessed a white (not yet checkpointed) segment.
    White,
    /// Accessed a black (already checkpointed) segment.
    Black,
}

/// A buffered (pre-commit) update: the after-image of one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedWrite {
    /// The record to be overwritten at commit.
    pub record: RecordId,
    /// The segment containing it (cached for commit-time color checks).
    pub segment: SegmentId,
    /// The new value (full record image, `S_rec` words).
    pub value: Vec<Word>,
}

/// An active transaction.
#[derive(Debug)]
pub struct ActiveTxn {
    /// The transaction id.
    pub id: TxnId,
    /// The transaction timestamp `τ(T)` (assigned at begin; used by the
    /// copy-on-update protocol).
    pub tau: Timestamp,
    /// LSN of the transaction's begin record in the log.
    pub begin_lsn: Lsn,
    /// Buffered updates, in program order.
    pub writes: Vec<StagedWrite>,
    /// The color this transaction has observed during the current
    /// two-color checkpoint, if any.
    pub color_seen: Option<SeenColor>,
    /// How many times this logical transaction has been started
    /// (1 = first run; >1 after two-color restarts).
    pub run: u32,
    /// When `Some(gid)`, the transaction is a *prepared* branch of the
    /// global transaction `gid` (sharded two-phase commit): its updates
    /// are durable in the log and it may no longer unilaterally abort —
    /// only `finish_commit` or an explicit coordinator-decided abort may
    /// remove it.
    pub prepared: Option<u64>,
}

impl ActiveTxn {
    /// Records that the transaction observed `color`; errors if it has
    /// already observed the opposite color (the two-color rule).
    pub fn observe_color(&mut self, color: SeenColor, segment: SegmentId) -> Result<()> {
        match self.color_seen {
            None => {
                self.color_seen = Some(color);
                Ok(())
            }
            Some(seen) if seen == color => Ok(()),
            Some(_) => Err(MmdbError::TwoColorViolation {
                txn: self.id,
                segment,
            }),
        }
    }

    /// Total words buffered in the shadow copy.
    pub fn staged_words(&self) -> u64 {
        self.writes.iter().map(|w| w.value.len() as u64).sum()
    }
}

/// Counters for the transaction-failure statistics of §2.7/§4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions begun (including reruns).
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Aborts caused by the two-color rule (checkpoint-induced failures).
    pub aborted_two_color: u64,
    /// Aborts for any other reason (explicit application aborts).
    pub aborted_other: u64,
}

impl TxnStats {
    /// The empirical checkpoint-induced restart probability
    /// `p_restart = two-color aborts / begun`.
    pub fn p_restart(&self) -> f64 {
        if self.begun == 0 {
            0.0
        } else {
            self.aborted_two_color as f64 / self.begun as f64
        }
    }
}

/// The active-transaction table.
#[derive(Debug, Default)]
pub struct TxnTable {
    next_id: u64,
    active: BTreeMap<TxnId, ActiveTxn>,
    stats: TxnStats,
}

impl TxnTable {
    /// An empty table.
    pub fn new() -> TxnTable {
        TxnTable::default()
    }

    /// Begins a transaction with the given timestamp and begin-record
    /// LSN; returns its id. `run` is 1 for a fresh transaction, >1 for a
    /// two-color rerun of the same logical work.
    pub fn begin(&mut self, tau: Timestamp, begin_lsn: Lsn, run: u32) -> TxnId {
        self.next_id += 1;
        let id = TxnId(self.next_id);
        self.active.insert(
            id,
            ActiveTxn {
                id,
                tau,
                begin_lsn,
                writes: Vec::new(),
                color_seen: None,
                run,
                prepared: None,
            },
        );
        self.stats.begun += 1;
        id
    }

    /// The active transaction with the given id.
    pub fn get(&self, id: TxnId) -> Result<&ActiveTxn> {
        self.active.get(&id).ok_or(MmdbError::NoSuchTxn(id))
    }

    /// Mutable access to an active transaction.
    pub fn get_mut(&mut self, id: TxnId) -> Result<&mut ActiveTxn> {
        self.active.get_mut(&id).ok_or(MmdbError::NoSuchTxn(id))
    }

    /// Buffers an update in the transaction's shadow copy.
    pub fn stage_write(
        &mut self,
        id: TxnId,
        record: RecordId,
        segment: SegmentId,
        value: Vec<Word>,
    ) -> Result<()> {
        let txn = self.get_mut(id)?;
        txn.writes.push(StagedWrite {
            record,
            segment,
            value,
        });
        Ok(())
    }

    /// Removes the transaction for commit, returning its state. The
    /// engine installs the writes and logs the commit; the table only
    /// counts it.
    pub fn finish_commit(&mut self, id: TxnId) -> Result<ActiveTxn> {
        let txn = self.active.remove(&id).ok_or(MmdbError::NoSuchTxn(id))?;
        self.stats.committed += 1;
        Ok(txn)
    }

    /// Removes the transaction for an abort. `two_color` distinguishes
    /// checkpoint-induced aborts (which the study counts as restarts)
    /// from application aborts.
    pub fn finish_abort(&mut self, id: TxnId, two_color: bool) -> Result<ActiveTxn> {
        let txn = self.active.remove(&id).ok_or(MmdbError::NoSuchTxn(id))?;
        if two_color {
            self.stats.aborted_two_color += 1;
        } else {
            self.stats.aborted_other += 1;
        }
        Ok(txn)
    }

    /// Ids of all active transactions (the begin-checkpoint marker's
    /// active list, §3.1).
    pub fn active_ids(&self) -> Vec<TxnId> {
        self.active.keys().copied().collect()
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// True when no transactions are active (the COU quiesce condition,
    /// §3.2.2).
    pub fn is_quiescent(&self) -> bool {
        self.active.is_empty()
    }

    /// Clears the color observations of all active transactions (called
    /// when a two-color checkpoint begins: observations from before the
    /// checkpoint refer to pre-checkpoint state and must not trigger
    /// spurious aborts).
    pub fn reset_colors(&mut self) {
        for txn in self.active.values_mut() {
            txn.color_seen = None;
        }
    }

    /// Discards all active transactions (a crash loses the volatile
    /// transaction table; their staged writes were never installed).
    pub fn crash(&mut self) {
        self.active.clear();
    }

    /// The statistics so far.
    pub fn stats(&self) -> TxnStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TxnTable {
        TxnTable::new()
    }

    #[test]
    fn begin_assigns_unique_ids() {
        let mut t = table();
        let a = t.begin(Timestamp(1), Lsn(0), 1);
        let b = t.begin(Timestamp(2), Lsn(10), 1);
        assert_ne!(a, b);
        assert_eq!(t.active_count(), 2);
        assert_eq!(t.active_ids(), vec![a, b]);
        assert_eq!(t.stats().begun, 2);
    }

    #[test]
    fn stage_and_commit_returns_writes_in_order() {
        let mut t = table();
        let id = t.begin(Timestamp(1), Lsn(0), 1);
        t.stage_write(id, RecordId(5), SegmentId(0), vec![1, 2])
            .unwrap();
        t.stage_write(id, RecordId(9), SegmentId(1), vec![3, 4])
            .unwrap();
        let txn = t.finish_commit(id).unwrap();
        assert_eq!(txn.writes.len(), 2);
        assert_eq!(txn.writes[0].record, RecordId(5));
        assert_eq!(txn.writes[1].record, RecordId(9));
        assert_eq!(txn.staged_words(), 4);
        assert!(t.is_quiescent());
        assert_eq!(t.stats().committed, 1);
        assert!(t.get(id).is_err());
    }

    #[test]
    fn two_color_rule_enforced() {
        let mut t = table();
        let id = t.begin(Timestamp(1), Lsn(0), 1);
        t.get_mut(id)
            .unwrap()
            .observe_color(SeenColor::White, SegmentId(0))
            .unwrap();
        t.get_mut(id)
            .unwrap()
            .observe_color(SeenColor::White, SegmentId(1))
            .unwrap();
        let err = t
            .get_mut(id)
            .unwrap()
            .observe_color(SeenColor::Black, SegmentId(2))
            .unwrap_err();
        assert!(matches!(err, MmdbError::TwoColorViolation { .. }));
    }

    #[test]
    fn same_color_repeatedly_is_fine() {
        let mut t = table();
        let id = t.begin(Timestamp(1), Lsn(0), 1);
        for i in 0..10 {
            t.get_mut(id)
                .unwrap()
                .observe_color(SeenColor::Black, SegmentId(i))
                .unwrap();
        }
    }

    #[test]
    fn abort_classification() {
        let mut t = table();
        let a = t.begin(Timestamp(1), Lsn(0), 1);
        let b = t.begin(Timestamp(2), Lsn(5), 1);
        t.finish_abort(a, true).unwrap();
        t.finish_abort(b, false).unwrap();
        let s = t.stats();
        assert_eq!(s.aborted_two_color, 1);
        assert_eq!(s.aborted_other, 1);
        assert_eq!(s.p_restart(), 0.5);
    }

    #[test]
    fn p_restart_empty_table() {
        assert_eq!(TxnStats::default().p_restart(), 0.0);
    }

    #[test]
    fn reset_colors_clears_observations() {
        let mut t = table();
        let id = t.begin(Timestamp(1), Lsn(0), 1);
        t.get_mut(id)
            .unwrap()
            .observe_color(SeenColor::White, SegmentId(0))
            .unwrap();
        t.reset_colors();
        // now observing black is fine: the white observation predates the
        // (new) checkpoint
        t.get_mut(id)
            .unwrap()
            .observe_color(SeenColor::Black, SegmentId(1))
            .unwrap();
    }

    #[test]
    fn crash_empties_table_without_counting_aborts() {
        let mut t = table();
        t.begin(Timestamp(1), Lsn(0), 1);
        t.begin(Timestamp(2), Lsn(5), 1);
        t.crash();
        assert!(t.is_quiescent());
        let s = t.stats();
        assert_eq!(s.aborted_two_color + s.aborted_other, 0);
    }

    #[test]
    fn operations_on_unknown_txn_fail() {
        let mut t = table();
        let ghost = TxnId(99);
        assert!(t.get(ghost).is_err());
        assert!(t
            .stage_write(ghost, RecordId(0), SegmentId(0), vec![])
            .is_err());
        assert!(t.finish_commit(ghost).is_err());
        assert!(t.finish_abort(ghost, true).is_err());
    }

    #[test]
    fn run_counter_carried() {
        let mut t = table();
        let id = t.begin(Timestamp(1), Lsn(0), 3);
        assert_eq!(t.get(id).unwrap().run, 3);
    }

    #[test]
    fn prepared_flag_defaults_off_and_is_settable() {
        let mut t = table();
        let id = t.begin(Timestamp(1), Lsn(0), 1);
        assert_eq!(t.get(id).unwrap().prepared, None);
        t.get_mut(id).unwrap().prepared = Some(77);
        assert_eq!(t.get(id).unwrap().prepared, Some(77));
        // commit still drains it like any other transaction
        let txn = t.finish_commit(id).unwrap();
        assert_eq!(txn.prepared, Some(77));
    }
}
