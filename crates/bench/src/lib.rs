//! Shared harness code for the figure-reproduction binary and the
//! Criterion benches.

#![warn(missing_docs)]

use mmdb_model::render::Table;
use mmdb_model::AnalyticModel;
use mmdb_obs::json::Value;
use mmdb_obs::HistSummary;
use mmdb_sim::{SimConfig, SimResult, Simulator};
use mmdb_types::{Algorithm, LogMode, Params};

/// One row of the simulator-vs-model cross-validation (experiment
/// `simval` in DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct ValidationRow {
    /// Algorithm validated.
    pub algorithm: Algorithm,
    /// Analytic overhead prediction, instructions/txn (at the scaled
    /// parameters the simulator ran).
    pub model_overhead: f64,
    /// Measured overhead from the discrete-event run.
    pub sim_overhead: f64,
    /// Analytic restart probability.
    pub model_p_restart: f64,
    /// Measured restart probability.
    pub sim_p_restart: f64,
    /// Measured checkpoint interval, seconds.
    pub sim_interval: f64,
    /// Analytic minimum checkpoint duration, seconds.
    pub model_interval: f64,
    /// Analytic recovery time at the scaled parameters, seconds.
    pub model_recovery: f64,
    /// Measured recovery time (the simulator crashes and actually
    /// recovers at the end of its run), seconds.
    pub sim_recovery: f64,
}

impl ValidationRow {
    /// sim/model overhead ratio (1.0 = perfect agreement).
    pub fn overhead_ratio(&self) -> f64 {
        self.sim_overhead / self.model_overhead
    }
}

/// Runs the simulator and the analytic model at the same scaled
/// parameters and returns the comparison.
pub fn cross_validate(algorithm: Algorithm, duration: f64) -> ValidationRow {
    let mut cfg = SimConfig::validation(algorithm);
    cfg.duration = duration;
    let sim: SimResult = Simulator::new(cfg).run().expect("simulation failed");
    let model = AnalyticModel::new(cfg.params, algorithm).evaluate(None);
    ValidationRow {
        algorithm,
        model_overhead: model.overhead_per_txn(),
        sim_overhead: sim.overhead_per_txn(),
        model_p_restart: model.p_restart,
        sim_p_restart: sim.p_restart(),
        sim_interval: sim.avg_ckpt_interval,
        model_interval: model.duration,
        model_recovery: model.recovery_seconds,
        sim_recovery: sim.measured_recovery_seconds,
    }
}

/// Renders the cross-validation table.
pub fn render_validation(rows: &[ValidationRow]) -> String {
    let mut t = Table::new(
        "Simulator vs analytic model (scaled parameters: 4 Mwords, λ=15.6/s)",
        &[
            "algorithm",
            "model instr/txn",
            "sim instr/txn",
            "ratio",
            "model p_restart",
            "sim p_restart",
            "model D (s)",
            "sim D (s)",
            "model rec (s)",
            "sim rec (s)",
        ],
    );
    for r in rows {
        t.row(&[
            r.algorithm.name().to_string(),
            format!("{:.0}", r.model_overhead),
            format!("{:.0}", r.sim_overhead),
            format!("{:.2}", r.overhead_ratio()),
            format!("{:.3}", r.model_p_restart),
            format!("{:.3}", r.sim_p_restart),
            format!("{:.1}", r.model_interval),
            format!("{:.1}", r.sim_interval),
            format!("{:.1}", r.model_recovery),
            format!("{:.1}", r.sim_recovery),
        ]);
    }
    t.render()
}

/// One per-algorithm row of the bench trajectory (`repro bench`): the
/// paper's overhead metric plus the telemetry layer's latency digests,
/// all driven by the simulated clock so the emitted JSON is
/// reproducible under the fixed seed.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// Transactions committed in the measured window.
    pub committed: u64,
    /// Checkpoints completed in the measured window.
    pub checkpoints: u64,
    /// Total checkpointing overhead, instructions per committed txn.
    pub overhead_per_txn: f64,
    /// Synchronous component of the overhead.
    pub sync_per_txn: f64,
    /// Asynchronous component of the overhead.
    pub async_per_txn: f64,
    /// Empirical two-color restart probability.
    pub p_restart: f64,
    /// Checkpoint-pass latency digest, simulated microseconds
    /// (request-to-completion; one sample per completed checkpoint).
    pub ckpt_pass_us: Option<HistSummary>,
    /// Modeled recovery-time digest, microseconds (the end-of-run crash
    /// and real recovery).
    pub recovery_us: Option<HistSummary>,
}

/// Runs the discrete-event simulator once per algorithm (all seven,
/// including the beyond-paper COUAC) at the validation parameters and
/// collects the bench trajectory.
pub fn bench_trajectory(quick: bool) -> Vec<BenchEntry> {
    Algorithm::ALL_EXTENDED
        .iter()
        .map(|&algorithm| {
            let mut cfg = SimConfig::validation(algorithm);
            if quick {
                cfg.duration = 120.0;
                cfg.warmup = 60.0;
            }
            let r = Simulator::new(cfg).run().expect("simulation failed");
            BenchEntry {
                algorithm,
                committed: r.committed,
                checkpoints: r.checkpoints,
                overhead_per_txn: r.overhead_per_txn(),
                sync_per_txn: r.sync_per_txn(),
                async_per_txn: r.async_per_txn(),
                p_restart: r.p_restart(),
                ckpt_pass_us: r.snapshot.hist("sim.ckpt_pass_us").copied(),
                recovery_us: r.snapshot.hist("recovery.total_modeled_us").copied(),
            }
        })
        .collect()
}

fn hist_json(h: &HistSummary) -> Value {
    Value::Obj(vec![
        ("count".into(), Value::u(h.count)),
        ("p50_us".into(), Value::u(h.p50)),
        ("p90_us".into(), Value::u(h.p90)),
        ("p99_us".into(), Value::u(h.p99)),
        ("p999_us".into(), Value::u(h.p999)),
        ("max_us".into(), Value::u(h.max)),
        ("mean_us".into(), Value::f(h.mean)),
    ])
}

/// Serializes a bench trajectory as the `BENCH_repro.json` document:
/// per-algorithm overhead-per-transaction plus p50/p99 checkpoint-pass
/// and recovery latency digests. Content is deterministic for a given
/// build (simulated clock only — no wall-clock values).
pub fn bench_json(entries: &[BenchEntry], quick: bool) -> String {
    let algorithms = Value::Obj(
        entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("committed".into(), Value::u(e.committed)),
                    ("checkpoints".into(), Value::u(e.checkpoints)),
                    (
                        "overhead_instr_per_txn".into(),
                        Value::f(e.overhead_per_txn),
                    ),
                    ("sync_instr_per_txn".into(), Value::f(e.sync_per_txn)),
                    ("async_instr_per_txn".into(), Value::f(e.async_per_txn)),
                    ("p_restart".into(), Value::f(e.p_restart)),
                ];
                if let Some(h) = &e.ckpt_pass_us {
                    fields.push(("ckpt_pass".into(), hist_json(h)));
                }
                if let Some(h) = &e.recovery_us {
                    fields.push(("recovery".into(), hist_json(h)));
                }
                (e.algorithm.metric_name().to_string(), Value::Obj(fields))
            })
            .collect(),
    );
    Value::Obj(vec![
        ("schema".into(), Value::s("mmdb-bench-repro/v1")),
        ("source".into(), Value::s("mmdb-bench repro bench")),
        ("quick".into(), Value::Bool(quick)),
        ("algorithms".into(), algorithms),
    ])
    .to_pretty()
}

/// The algorithms that are sound under the given log mode.
pub fn sound_algorithms(log_mode: LogMode) -> Vec<Algorithm> {
    Algorithm::ALL
        .into_iter()
        .filter(|a| a.sound_under(log_mode))
        .collect()
}

/// Paper-default parameters with the log mode an algorithm needs.
pub fn params_for(algorithm: Algorithm) -> Params {
    let mut p = Params::paper_defaults();
    if algorithm == Algorithm::FastFuzzy {
        p.log_mode = LogMode::StableTail;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_validation_agrees_for_fastfuzzy() {
        let row = cross_validate(Algorithm::FastFuzzy, 120.0);
        assert!(
            (0.8..1.25).contains(&row.overhead_ratio()),
            "sim and model should agree within ~20%: {row:?}"
        );
    }

    #[test]
    fn cross_validation_agrees_for_two_color() {
        let row = cross_validate(Algorithm::TwoColorCopy, 120.0);
        assert!(
            (0.8..1.25).contains(&row.overhead_ratio()),
            "sim and model should agree within ~20%: {row:?}"
        );
        // p_restart definitions differ: the model counts per arriving
        // logical transaction, the simulator per begun attempt
        // (attempts = arrivals + reruns), so sim ≈ model/(1+model).
        let expected_sim = row.model_p_restart / (1.0 + row.model_p_restart);
        assert!(
            (row.sim_p_restart - expected_sim).abs() < 0.08,
            "restart rates should be consistent: {row:?}"
        );
    }

    #[test]
    fn sound_algorithm_lists() {
        assert_eq!(sound_algorithms(LogMode::VolatileTail).len(), 5);
        assert_eq!(sound_algorithms(LogMode::StableTail).len(), 6);
    }
}
