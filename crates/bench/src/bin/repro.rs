//! `repro` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! cargo run -p mmdb-bench --bin repro --release -- all
//! cargo run -p mmdb-bench --bin repro --release -- fig4a
//! ```
//!
//! Subcommands: `table2`, `fig4a`, `fig4b`, `fig4c`, `fig4d`, `fig4e`,
//! `simval`, `ablate`, `costs`, `simsweep`, `bench`, `all`. Output is
//! plain text: the same rows/series the paper reports, from the
//! re-derived analytic model, plus the simulator cross-validation. Pass
//! `--csv <dir>` to also write each figure's data as CSV for external
//! plotting. `bench` runs the telemetry-instrumented simulator over
//! every algorithm and writes `BENCH_repro.json` (overhead per txn,
//! p50/p99 checkpoint-pass and recovery latencies; `--out <path>` to
//! redirect).

use mmdb_bench::{bench_json, bench_trajectory, cross_validate, render_validation};
use mmdb_model::figures::{
    fig4a, fig4b, fig4c, fig4d, fig4e, render_algorithm_points, render_fig4b, render_sweep,
    render_tables2,
};
use mmdb_model::render::Table;
use mmdb_types::{Algorithm, Params};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create --csv directory");
    }
    let csv = csv_dir.as_deref();
    let out: std::path::PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_repro.json"));

    match what {
        "table2" => table2(),
        "fig4a" => run_fig4a(csv),
        "fig4b" => run_fig4b(csv),
        "fig4c" => run_fig4c(csv),
        "fig4d" => run_fig4d(csv),
        "fig4e" => run_fig4e(csv),
        "simval" => run_simval(quick, csv),
        "ablate" => run_ablate(quick),
        "costs" => run_costs(),
        "simsweep" => run_simsweep(quick, csv),
        "bench" => run_bench(quick, &out),
        "all" => {
            table2();
            run_fig4a(csv);
            run_fig4b(csv);
            run_fig4c(csv);
            run_fig4d(csv);
            run_fig4e(csv);
            run_simval(quick, csv);
            run_ablate(quick);
            run_costs();
            run_simsweep(quick, csv);
            run_bench(quick, &out);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of: \
                 table2 fig4a fig4b fig4c fig4d fig4e simval ablate costs simsweep bench all"
            );
            std::process::exit(2);
        }
    }
}

/// The telemetry bench trajectory: one instrumented simulator run per
/// algorithm, exported as `BENCH_repro.json` — overhead per transaction
/// and p50/p99 checkpoint-pass / recovery latency digests, all on the
/// simulated clock (deterministic under the fixed seed).
fn run_bench(quick: bool, out: &std::path::Path) {
    eprintln!(
        "running telemetry bench trajectory ({} algorithms, {} mode)...",
        mmdb_types::Algorithm::ALL_EXTENDED.len(),
        if quick { "quick" } else { "full" }
    );
    let entries = bench_trajectory(quick);
    let mut t = Table::new(
        "Bench trajectory — overhead and latency digests (simulated clock, scaled parameters)",
        &[
            "algorithm",
            "overhead (instr/txn)",
            "ckpts",
            "pass p50 (ms)",
            "pass p99 (ms)",
            "recovery p50 (s)",
        ],
    );
    for e in &entries {
        let (p50, p99) = e
            .ckpt_pass_us
            .map(|h| (h.p50 as f64 / 1e3, h.p99 as f64 / 1e3))
            .unwrap_or((0.0, 0.0));
        let rec = e.recovery_us.map(|h| h.p50 as f64 / 1e6).unwrap_or(0.0);
        t.row(&[
            e.algorithm.name().to_string(),
            format!("{:.0}", e.overhead_per_txn),
            format!("{}", e.checkpoints),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
            format!("{rec:.2}"),
        ]);
    }
    println!("{}", t.render());
    std::fs::write(out, bench_json(&entries, quick)).expect("write bench json");
    eprintln!("wrote {}", out.display());
}

fn table2() {
    println!("{}", render_tables2(&Params::paper_defaults()));
}

fn write_csv(csv: Option<&std::path::Path>, name: &str, header: &str, rows: &[String]) {
    let Some(dir) = csv else { return };
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    let path = dir.join(name);
    std::fs::write(&path, out).expect("write csv");
    eprintln!("wrote {}", path.display());
}

fn algorithm_points_csv(
    csv: Option<&std::path::Path>,
    name: &str,
    rows: &[mmdb_model::figures::AlgorithmPoint],
) {
    let lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.1},{:.1},{:.1},{:.4},{:.2}",
                r.algorithm.name(),
                r.point.overhead_per_txn(),
                r.point.sync_per_txn,
                r.point.async_per_txn,
                r.point.p_restart,
                r.point.recovery_seconds
            )
        })
        .collect();
    write_csv(
        csv,
        name,
        "algorithm,overhead_instr_per_txn,sync,async,p_restart,recovery_s",
        &lines,
    );
}

fn run_fig4a(csv: Option<&std::path::Path>) {
    let rows = fig4a(Params::paper_defaults());
    algorithm_points_csv(csv, "fig4a.csv", &rows);
    println!(
        "{}",
        render_algorithm_points(
            "Figure 4a — processor overhead and recovery time \
             (paper defaults, checkpoints as fast as possible)",
            &rows
        )
    );
    println!(
        "Expected shape: two-color algorithms cost several times the others \
         (rerun-dominated); COU ≈ FUZZYCOPY; recovery times nearly equal.\n"
    );
}

fn run_fig4b(csv: Option<&std::path::Path>) {
    let series = fig4b(Params::paper_defaults(), 10, 12.0);
    let lines: Vec<String> = series
        .iter()
        .flat_map(|ser| {
            ser.points.iter().map(move |(d, rec, o)| {
                format!(
                    "{},{},{d:.1},{rec:.2},{o:.1}",
                    ser.algorithm.name(),
                    ser.n_bdisks
                )
            })
        })
        .collect();
    write_csv(
        csv,
        "fig4b.csv",
        "algorithm,n_bdisks,duration_s,recovery_s,overhead_instr_per_txn",
        &lines,
    );
    println!("{}", render_fig4b(&series));
    println!(
        "Expected shape: overhead falls and recovery rises along each curve; \
         doubling the disks extends curves left; 2CCOPY benefits more than COUCOPY.\n"
    );
}

fn sweep_csv(
    csv: Option<&std::path::Path>,
    name: &str,
    x: &str,
    series: &[mmdb_model::figures::SweepSeries],
) {
    let lines: Vec<String> = series
        .iter()
        .flat_map(|ser| {
            let label = if ser.label.is_empty() {
                ser.algorithm.name().to_string()
            } else {
                format!("{} ({})", ser.algorithm.name(), ser.label)
            };
            ser.points
                .iter()
                .map(move |(xv, o)| format!("{label},{xv},{o:.1}"))
        })
        .collect();
    write_csv(
        csv,
        name,
        &format!("series,{x},overhead_instr_per_txn"),
        &lines,
    );
}

fn run_fig4c(csv: Option<&std::path::Path>) {
    let lambdas = [10.0, 30.0, 100.0, 300.0, 1000.0, 2000.0, 4000.0];
    let series = fig4c(Params::paper_defaults(), &lambdas);
    sweep_csv(csv, "fig4c.csv", "lambda", &series);
    println!(
        "{}",
        render_sweep(
            "Figure 4c — overhead vs transaction load (λ, txns/s)",
            "lambda",
            &series,
            true,
        )
    );
    println!(
        "Expected shape: per-transaction cost falls with load; 2CFLUSH is \
         cheapest at low load but among the costliest at high load.\n"
    );
}

fn run_fig4d(csv: Option<&std::path::Path>) {
    let sizes = [1024u64, 2048, 4096, 8192, 16384, 32768, 65536];
    let series = fig4d(Params::paper_defaults(), &sizes);
    sweep_csv(csv, "fig4d.csv", "s_seg_words", &series);
    println!(
        "{}",
        render_sweep(
            "Figure 4d — overhead vs segment size (words); \
             'min duration' = solid curves, '300 s interval' = dotted",
            "S_seg",
            &series,
            true,
        )
    );
    println!(
        "Expected shape: at the fixed interval the 2C curves fall with segment \
         size and COUCOPY stays flat; as-fast-as-possible, the copy algorithms \
         rise while 2CFLUSH falls.\n"
    );
}

fn run_fig4e(csv: Option<&std::path::Path>) {
    let rows = fig4e(Params::paper_defaults());
    algorithm_points_csv(csv, "fig4e.csv", &rows);
    println!(
        "{}",
        render_algorithm_points(
            "Figure 4e — processor overhead with a stable log tail \
             (adds FASTFUZZY; checkpoints as fast as possible)",
            &rows
        )
    );
    println!(
        "Expected shape: FASTFUZZY costs only a few hundred instructions per \
         transaction; the others are nearly unchanged from Figure 4a.\n"
    );
}

fn run_simval(quick: bool, csv: Option<&std::path::Path>) {
    let duration = if quick { 120.0 } else { 400.0 };
    eprintln!(
        "running discrete-event cross-validation ({duration} simulated seconds per algorithm)..."
    );
    let rows: Vec<_> = Algorithm::ALL_EXTENDED
        .iter()
        .map(|&a| cross_validate(a, duration))
        .collect();
    let lines: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{:.1},{:.1},{:.3},{:.4},{:.4},{:.2},{:.2},{:.2},{:.2}",
                r.algorithm.name(),
                r.model_overhead,
                r.sim_overhead,
                r.overhead_ratio(),
                r.model_p_restart,
                r.sim_p_restart,
                r.model_interval,
                r.sim_interval,
                r.model_recovery,
                r.sim_recovery
            )
        })
        .collect();
    write_csv(
        csv,
        "simval.csv",
        "algorithm,model_overhead,sim_overhead,ratio,model_p_restart,sim_p_restart,model_interval_s,sim_interval_s,model_recovery_s,sim_recovery_s",
        &lines,
    );
    println!("{}", render_validation(&rows));
    println!(
        "The simulator runs the real engine (real paint bits, COU copies, \
         aborts, REDO log) under Poisson load at scaled parameters; the model \
         column is the analytic prediction at the same parameters.\n"
    );
}

/// Beyond-paper ablation: how access skew changes partial-checkpoint
/// behavior. The paper assumes uniform updates (§2.5); skew concentrates
/// dirt in fewer segments, shrinking the flush set and the checkpoint
/// duration — which partial checkpointing converts into lower overhead.
fn run_ablate(quick: bool) {
    use mmdb_sim::{SimConfig, Simulator, WorkloadKind};
    let duration = if quick { 120.0 } else { 300.0 };
    eprintln!("running skew ablation ({duration} simulated seconds per cell)...");
    let workloads = [
        ("uniform", WorkloadKind::Uniform),
        ("zipf(0.8)", WorkloadKind::Zipf(0.8)),
        ("hotset 90/10", WorkloadKind::HotSet(0.10, 0.90)),
    ];
    let mut t = Table::new(
        "Ablation — access skew vs partial checkpointing (FASTFUZZY & COUCOPY, scaled params)",
        &[
            "workload",
            "algorithm",
            "ckpt pacing",
            "avg segments flushed",
            "avg ckpt interval (s)",
            "overhead (instr/txn)",
        ],
    );
    for (label, kind) in workloads {
        for algorithm in [Algorithm::FastFuzzy, Algorithm::CouCopy] {
            for (pacing, interval) in [("back-to-back", None), ("fixed 14 s", Some(14.0))] {
                let mut cfg = SimConfig::validation(algorithm);
                cfg.workload = kind;
                cfg.duration = duration;
                cfg.ckpt_interval = interval;
                let r = Simulator::new(cfg).run().expect("simulation failed");
                t.row(&[
                    label.to_string(),
                    algorithm.name().to_string(),
                    pacing.to_string(),
                    format!("{:.1}", r.avg_segments_flushed),
                    format!("{:.1}", r.avg_ckpt_interval),
                    format!("{:.0}", r.overhead_per_txn()),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!(
        "Observed shape: skew shrinks the flush set dramatically, but under \
         back-to-back pacing the checkpointer just cycles faster over the hot \
         set, so per-transaction overhead does NOT fall — the win appears at a \
         fixed interval, where the skewed flush sets are a fraction of the \
         uniform ones for the same recovery bound. The paper's uniform-update \
         assumption is therefore conservative for partial checkpointing.\n"
    );
}

/// Beyond-paper ablation: sensitivity of each algorithm to the basic
/// operation costs of Table 2a. The paper fixes them at one machine's
/// values; this sweep shows which design choices each algorithm's cost
/// hangs on — the copy algorithms live and die by data-movement cost,
/// 2CFLUSH by nothing but `C_io` and the rerun tax, FASTFUZZY by `C_io`
/// alone.
fn run_costs() {
    use mmdb_model::AnalyticModel;
    use mmdb_types::LogMode;

    type Tweak = fn(&mut Params);
    let algorithms = Algorithm::ALL_EXTENDED;
    let scenarios: [(&str, Tweak); 5] = [
        ("baseline (Table 2a)", |_| {}),
        ("C_lock ×10", |p| p.cost.c_lock *= 10),
        ("C_alloc ×10", |p| p.cost.c_alloc *= 10),
        ("C_io ×5", |p| p.cost.c_io *= 5),
        ("move ×4 (slow memcpy)", |p| p.cost.c_move_per_word *= 4),
    ];

    let mut header: Vec<String> = vec!["scenario".into()];
    header.extend(algorithms.iter().map(|a| a.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = Table::new(
        "Ablation — overhead (instr/txn) sensitivity to Table 2a operation costs",
        &header_refs,
    );
    for (label, tweak) in scenarios {
        let mut row = vec![label.to_string()];
        for &algorithm in &algorithms {
            let mut p = Params::paper_defaults();
            if algorithm == Algorithm::FastFuzzy {
                p.log_mode = LogMode::StableTail;
            }
            tweak(&mut p);
            let point = AnalyticModel::new(p, algorithm).evaluate(None);
            row.push(format!("{:.0}", point.overhead_per_txn()));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "Reading guide: the copy algorithms (FUZZYCOPY, 2CCOPY, COUCOPY, COUAC) \
         scale with data-movement cost; 2CFLUSH and FASTFUZZY are immune to it; \
         C_alloc only touches buffered flushes; the two-color rerun tax dwarfs \
         every unit-cost change.\n"
    );
}

/// Figure 4c re-run on the *executed system*: the simulator sweeps the
/// transaction load at scaled parameters and the analytic model is
/// evaluated at the same points. Verifies the load-sweep *shape* (the
/// paper's crossing: 2CFLUSH cheap at low load, costly at high) on real
/// algorithm executions, not just the model.
fn run_simsweep(quick: bool, csv: Option<&std::path::Path>) {
    use mmdb_model::AnalyticModel;
    use mmdb_sim::{SimConfig, Simulator};

    let algorithms = [
        Algorithm::FuzzyCopy,
        Algorithm::TwoColorFlush,
        Algorithm::CouCopy,
    ];
    let lambdas: &[f64] = if quick {
        &[2.0, 15.6, 60.0]
    } else {
        &[2.0, 6.0, 15.6, 30.0, 60.0]
    };
    eprintln!(
        "running simulated load sweep ({} cells)...",
        algorithms.len() * lambdas.len()
    );

    let mut header: Vec<String> = vec!["lambda (txn/s)".into()];
    for a in &algorithms {
        header.push(format!("{} model", a.name()));
        header.push(format!("{} sim", a.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut t = Table::new(
        "Figure 4c on the executed system — overhead (instr/txn) vs load, scaled parameters",
        &header_refs,
    );
    let mut csv_lines = Vec::new();
    for &lambda in lambdas {
        let mut row = vec![format!("{lambda}")];
        for &algorithm in &algorithms {
            let mut cfg = SimConfig::validation(algorithm);
            cfg.params.txn.lambda = lambda;
            cfg.duration = if quick { 150.0 } else { 300.0 };
            cfg.warmup = 60.0;
            let model = AnalyticModel::new(cfg.params, algorithm).evaluate(None);
            let sim = Simulator::new(cfg).run().expect("simulation failed");
            row.push(format!("{:.0}", model.overhead_per_txn()));
            row.push(format!("{:.0}", sim.overhead_per_txn()));
            csv_lines.push(format!(
                "{},{lambda},{:.1},{:.1}",
                algorithm.name(),
                model.overhead_per_txn(),
                sim.overhead_per_txn()
            ));
        }
        t.row(&row);
    }
    write_csv(
        csv,
        "simsweep.csv",
        "algorithm,lambda,model_overhead,sim_overhead",
        &csv_lines,
    );
    println!("{}", t.render());
    println!(
        "Expected shape (paper Fig 4c, now on real executions): overhead falls \
         with load for the copy algorithms; 2CFLUSH starts cheapest and ends \
         among the costliest.\n"
    );
}
