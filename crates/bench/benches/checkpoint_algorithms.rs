//! Criterion counterpart of Figures 4a/4e: the wall-clock cost of one
//! complete checkpoint on the real engine, per algorithm, for both
//! partial (dirty working set) and full checkpoints.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mmdb_core::{Mmdb, MmdbConfig};
use mmdb_types::{Algorithm, CkptMode, LogMode, RecordId};

fn engine(algorithm: Algorithm, mode: CkptMode) -> Mmdb {
    let mut cfg = MmdbConfig::small(algorithm);
    cfg.params.ckpt_mode = mode;
    if algorithm == Algorithm::FastFuzzy {
        cfg.params.log_mode = LogMode::StableTail;
    }
    let mut db = Mmdb::open_in_memory(cfg).unwrap();
    // seed both ping-pong copies so the measured checkpoints are honest
    // partial/full checkpoints, not first-time escalations
    db.run_txn(&[(RecordId(0), vec![1; db.record_words()])])
        .unwrap();
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    db
}

fn dirty_some(db: &mut Mmdb, n: u64) {
    let words = db.record_words();
    for i in 0..n {
        db.run_txn(&[(
            RecordId((i * 97) % db.n_records()),
            vec![i as u32 + 2; words],
        )])
        .unwrap();
    }
}

fn bench_partial_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_checkpoint");
    for alg in Algorithm::ALL {
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter_batched(
                || {
                    let mut db = engine(alg, CkptMode::Partial);
                    dirty_some(&mut db, 50);
                    db
                },
                |mut db| {
                    db.checkpoint().unwrap();
                    db
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_full_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_checkpoint");
    for alg in [
        Algorithm::FastFuzzy,
        Algorithm::FuzzyCopy,
        Algorithm::CouCopy,
    ] {
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter_batched(
                || engine(alg, CkptMode::Full),
                |mut db| {
                    db.checkpoint().unwrap();
                    db
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_partial_checkpoint, bench_full_checkpoint
}
criterion_main!(benches);
