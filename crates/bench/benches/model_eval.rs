//! Benchmarks of the analytic model and figure generators themselves —
//! each figure's full sweep is timed, which doubles as a regression guard
//! that the model stays cheap enough to embed in interactive tools.

use criterion::{criterion_group, criterion_main, Criterion};
use mmdb_model::figures::{fig4a, fig4b, fig4c, fig4d, fig4e};
use mmdb_model::AnalyticModel;
use mmdb_types::{Algorithm, Params};

fn bench_model_point(c: &mut Criterion) {
    let m = AnalyticModel::new(Params::paper_defaults(), Algorithm::CouCopy);
    c.bench_function("model_evaluate_min_duration", |b| {
        b.iter(|| m.evaluate(None))
    });
    c.bench_function("model_min_duration_fixed_point", |b| {
        b.iter(|| m.min_duration())
    });
}

fn bench_figures(c: &mut Criterion) {
    let p = Params::paper_defaults();
    c.bench_function("fig4a_generate", |b| b.iter(|| fig4a(p)));
    c.bench_function("fig4b_generate", |b| b.iter(|| fig4b(p, 10, 12.0)));
    let lambdas = [10.0, 30.0, 100.0, 300.0, 1000.0, 2000.0, 4000.0];
    c.bench_function("fig4c_generate", |b| b.iter(|| fig4c(p, &lambdas)));
    let sizes = [1024u64, 2048, 4096, 8192, 16384, 32768, 65536];
    c.bench_function("fig4d_generate", |b| b.iter(|| fig4d(p, &sizes)));
    c.bench_function("fig4e_generate", |b| b.iter(|| fig4e(p)));
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_model_point, bench_figures
}
criterion_main!(benches);
