//! Criterion counterpart of Figure 4c's synchronous side: the real
//! engine's transaction commit path, per algorithm, with and without an
//! active checkpoint. The COU algorithms pay their old-copy saves here;
//! the LSN-gated algorithms pay their LSN maintenance; the two-color
//! algorithms occasionally pay a rerun.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mmdb_core::{Mmdb, MmdbConfig};
use mmdb_types::{Algorithm, LogMode, RecordId};
use mmdb_workload::{UniformWorkload, Workload};

fn engine(algorithm: Algorithm) -> Mmdb {
    let mut cfg = MmdbConfig::small(algorithm);
    if algorithm == Algorithm::FastFuzzy {
        cfg.params.log_mode = LogMode::StableTail;
    }
    let mut db = Mmdb::open_in_memory(cfg).unwrap();
    db.run_txn(&[(RecordId(0), vec![1; db.record_words()])])
        .unwrap();
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    db
}

fn bench_commit_idle(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_commit_idle");
    for alg in Algorithm::ALL {
        let mut db = engine(alg);
        let words = db.record_words();
        let mut wl = UniformWorkload::new(db.n_records(), 5, 7);
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter_batched(
                || wl.next_txn().materialize(words),
                |updates| db.run_txn(&updates).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_commit_during_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_commit_during_ckpt");
    for alg in Algorithm::ALL {
        let mut db = engine(alg);
        let words = db.record_words();
        // dirty everything so the checkpoint has a long sweep, then
        // start it and keep it active for the whole measurement
        let mut wl = UniformWorkload::new(db.n_records(), 5, 9);
        for _ in 0..400 {
            let u = wl.next_txn().materialize(words);
            db.run_txn(&u).unwrap();
        }
        db.try_begin_checkpoint().unwrap();
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter_batched(
                || wl.next_txn().materialize(words),
                |updates| {
                    // keep the checkpoint alive: restart it when it ends
                    if !db.is_checkpoint_active() {
                        let _ = db.try_begin_checkpoint();
                    }
                    db.run_txn(&updates).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_commit_idle, bench_commit_during_checkpoint
}
criterion_main!(benches);
