//! Criterion counterpart of the recovery-time halves of Figures 4a/4b:
//! real crash recovery (backup restore + log replay) as the database and
//! the replayed log grow.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mmdb_core::{Mmdb, MmdbConfig};
use mmdb_types::{Algorithm, DbParams};
use mmdb_workload::{UniformWorkload, Workload};

/// Builds a crashed engine with `post_ckpt_txns` transactions of log to
/// replay.
fn crashed_engine(db_shape: DbParams, post_ckpt_txns: u64) -> Mmdb {
    let mut cfg = MmdbConfig::small(Algorithm::FuzzyCopy);
    cfg.params.db = db_shape;
    let mut db = Mmdb::open_in_memory(cfg).unwrap();
    let words = db.record_words();
    let mut wl = UniformWorkload::new(db.n_records(), 5, 3);
    for _ in 0..20 {
        let u = wl.next_txn().materialize(words);
        db.run_txn(&u).unwrap();
    }
    db.checkpoint().unwrap();
    for _ in 0..post_ckpt_txns {
        let u = wl.next_txn().materialize(words);
        db.run_txn(&u).unwrap();
    }
    db.crash().unwrap();
    db
}

fn bench_recovery_vs_db_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_vs_db_size");
    for (label, s_db) in [("64K", 64u64 << 10), ("256K", 256 << 10), ("1M", 1 << 20)] {
        let shape = DbParams {
            s_db,
            s_rec: 32,
            s_seg: 2048,
        };
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || crashed_engine(shape, 10),
                |mut db| {
                    db.recover().unwrap();
                    db
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_recovery_vs_log_bulk(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_vs_log_bulk");
    let shape = DbParams {
        s_db: 64 << 10,
        s_rec: 32,
        s_seg: 2048,
    };
    for txns in [10u64, 100, 1000] {
        group.bench_function(BenchmarkId::from_parameter(txns), |b| {
            b.iter_batched(
                || crashed_engine(shape, txns),
                |mut db| {
                    db.recover().unwrap();
                    db
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_file_backed_recovery(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("mmdb-bench-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // build the on-disk state once
    {
        let cfg = MmdbConfig::small(Algorithm::CouCopy);
        let (mut db, _) = Mmdb::open_dir(cfg, &dir).unwrap();
        let words = db.record_words();
        let mut wl = UniformWorkload::new(db.n_records(), 5, 3);
        for _ in 0..50 {
            let u = wl.next_txn().materialize(words);
            db.run_txn(&u).unwrap();
        }
        db.checkpoint().unwrap();
        for _ in 0..50 {
            let u = wl.next_txn().materialize(words);
            db.run_txn(&u).unwrap();
        }
    }
    let cfg = MmdbConfig::small(Algorithm::CouCopy);
    c.bench_function("recovery_file_backed_open", |b| {
        b.iter(|| {
            let (db, report) = Mmdb::open_dir(cfg, &dir).unwrap();
            assert!(report.is_some());
            db
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_recovery_vs_db_size,
    bench_recovery_vs_log_bulk,
    bench_file_backed_recovery
}
criterion_main!(benches);
