//! Microbenchmarks of the substrates: log append/force/scan throughput
//! and storage install/capture/COU-copy costs. These are the primitive
//! costs Table 2a abstracts as `C_io`, `C_alloc`, `C_lsn` and data
//! movement; the bench shows what they cost on real hardware.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use mmdb_log::{LogManager, LogRecord, LogScanner, MemLogDevice};
use mmdb_storage::Storage;
use mmdb_types::{
    CostMeter, CostParams, LogMode, Lsn, Params, RecordId, SegmentId, Timestamp, TxnId,
};

fn update_record(i: u64) -> LogRecord {
    LogRecord::Update {
        txn: TxnId(i),
        record: RecordId(i % 1000),
        value: vec![i as u32; 32],
    }
}

fn bench_log_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_append");
    for (label, mode) in [
        ("volatile_tail", LogMode::VolatileTail),
        ("stable_tail", LogMode::StableTail),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut log = LogManager::new(
                Box::new(MemLogDevice::new()),
                mode,
                CostMeter::shared(CostParams::default()),
            );
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                log.append(&update_record(i))
            })
        });
    }
    group.finish();
}

fn bench_log_append_forced(c: &mut Criterion) {
    c.bench_function("log_append_forced", |b| {
        let mut log = LogManager::new(
            Box::new(MemLogDevice::new()),
            LogMode::VolatileTail,
            CostMeter::shared(CostParams::default()),
        );
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            log.append_forced(&update_record(i)).unwrap()
        })
    });
}

fn bench_log_scan(c: &mut Criterion) {
    // build a log of 10k records once
    let mut bytes = Vec::new();
    for i in 0..10_000u64 {
        update_record(i).encode_into(&mut bytes);
    }
    let mut group = c.benchmark_group("log_scan_10k_records");
    group.bench_function("validate_and_forward", |b| {
        b.iter_batched(
            || bytes.clone(),
            |bytes| {
                let sc = LogScanner::from_bytes(bytes);
                sc.forward_from(Lsn::ZERO).count()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("backward", |b| {
        let sc = LogScanner::from_bytes(bytes.clone());
        b.iter(|| sc.backward().count())
    });
    group.finish();
}

fn bench_storage_ops(c: &mut Criterion) {
    let mut storage = Storage::new(Params::small().db).unwrap();
    let meter = CostMeter::new(CostParams::default());
    let value = vec![7u32; 32];
    let mut group = c.benchmark_group("storage");
    group.bench_function("install_record", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            storage
                .install_record(RecordId(i % 2048), &value, Lsn(i), Timestamp(i), &meter)
                .unwrap()
        })
    });
    group.bench_function("capture_segment", |b| {
        b.iter(|| storage.capture(SegmentId(3)).unwrap().version)
    });
    group.bench_function("cou_save_and_take_old", |b| {
        b.iter(|| {
            storage.cou_save_old(SegmentId(5), &meter).unwrap();
            storage.take_old(SegmentId(5), &meter).unwrap()
        })
    });
    group.bench_function("fingerprint_64k_words", |b| {
        b.iter(|| storage.fingerprint())
    });
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_log_append,
    bench_log_append_forced,
    bench_log_scan,
    bench_storage_ops
}
criterion_main!(benches);
