//! Parallel partitioned replay (recovery pillar 1).
//!
//! The serial recovery path (`mmdb-recovery`) is a strict sequence: read
//! every backup segment, checksum-validate the whole log, then replay
//! forward installing at each commit. Its wall-clock cost is dominated
//! by two bulks that are independent after commit resolution — backup
//! segment images and committed update payloads — so this module splits
//! the work:
//!
//! 1. **Structural scan** (single-threaded, cheap): walk the log with
//!    [`LogRecord::peek`], which fully verifies small control frames but
//!    only *locates* update payloads, deferring their checksums.
//! 2. **Commit resolution** (single-threaded): the same staging logic as
//!    the serial path, but producing per-lane *apply queues* (commit
//!    order preserved within each lane) instead of installing inline.
//! 3. **Parallel apply**: the storage is split into per-worker lanes
//!    ([`Storage::with_lanes`]); each worker verifies the update frames
//!    whose records it owns, loads its backup segment images as the main
//!    thread streams them in, and then installs its apply queue — all
//!    concurrently with the other lanes and with the backup reads.
//!
//! Records for disjoint segments are independent once commits are
//! resolved, and within a lane the queue preserves global commit order,
//! so the final segment contents are bit-identical to the serial path
//! (`fsck --compare` is the oracle; the version counter is shared
//! atomically so dirty-tracking invariants match too).
//!
//! **Corruption fallback:** the serial path treats the first bad frame
//! as the end of the durable log, which can change everything (a later
//! checkpoint marker may vanish). If any deferred update checksum fails,
//! this module throws away the partial parallel state and re-runs the
//! serial path on a fresh storage, guaranteeing the exact serial result.

use mmdb_disk::BackupStore;
use mmdb_log::{FramePeek, LogDevice, LogRecord};
use mmdb_obs::Obs;
use mmdb_recovery::{recover_observed, InDoubtTxn, RecoveryReport};
use mmdb_storage::Storage;
use mmdb_types::{
    CostMeter, DiskParams, Lsn, MmdbError, RecordId, Result, SegmentId, Timestamp, TxnId, Word,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;

/// One staged write awaiting its transaction's commit.
struct StagedWrite {
    frame: usize,
    record: RecordId,
    end_lsn: Lsn,
}

/// One resolved install, queued for the lane that owns the record.
struct ApplyOp {
    frame: usize,
    record: RecordId,
    end_lsn: Lsn,
}

fn decode_value(frame: &[u8], value_off: usize, value_words: usize) -> Vec<Word> {
    frame[value_off..value_off + value_words * 4]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

fn log_read_time(disk: &DiskParams, log_words: u64) -> f64 {
    if log_words == 0 {
        0.0
    } else {
        disk.t_seek + log_words as f64 * disk.t_trans / disk.n_bdisks as f64
    }
}

/// Parallel recovery: [`mmdb_recovery::recover_observed`] semantics with
/// `workers` apply lanes. With `workers <= 1` this *is* the serial path.
/// The report's modeled-time fields use the paper's formulas (identical
/// to serial — parallelism changes wall-clock, not the model).
pub fn recover_parallel(
    storage: &mut Storage,
    backup: &mut dyn BackupStore,
    log_device: &mut dyn LogDevice,
    disk: &DiskParams,
    meter: &CostMeter,
    obs: &Obs,
    workers: usize,
) -> Result<RecoveryReport> {
    if workers <= 1 {
        return recover_observed(storage, backup, log_device, disk, meter, obs);
    }
    let (copy, ckpt) = backup.recovery_copy()?;
    let db = *storage.db_params();

    // 1: structural scan — control frames fully verified, update frames
    // located with their checksums deferred to the apply workers.
    let resolve_timer = obs.timer();
    let base = log_device.start_offset();
    let bytes = log_device.read_all()?;
    let mut frames: Vec<(usize, usize, FramePeek)> = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match LogRecord::peek(&bytes[pos..]) {
            Ok((peek, used)) => {
                frames.push((pos, used, peek));
                pos += used;
            }
            Err(_) => break, // torn tail: stop here, like the serial scanner
        }
    }
    let valid_len = pos;

    // Locate the restored checkpoint's begin marker and the replay start
    // (mirrors `LogScanner::last_complete_checkpoint` + `replay_start`).
    let mark = frames
        .iter()
        .rev()
        .find_map(|(off, _, peek)| match peek {
            FramePeek::Other(LogRecord::BeginCheckpoint {
                ckpt: c, active, ..
            }) if *c == ckpt => Some((Lsn(base + *off as u64), active.clone())),
            _ => None,
        })
        .ok_or_else(|| {
            MmdbError::Corrupt(format!(
                "backup copy {copy} is complete for {ckpt} but the log has no begin marker for it"
            ))
        })?;
    let (begin_lsn, active) = mark;
    let replay_start = if active.is_empty() {
        begin_lsn
    } else {
        let mut remaining = active;
        let mut earliest = begin_lsn;
        for (off, _, peek) in frames.iter().rev() {
            let lsn = Lsn(base + *off as u64);
            if lsn >= begin_lsn {
                continue;
            }
            if let FramePeek::Other(LogRecord::TxnBegin { txn, .. }) = peek {
                if let Some(i) = remaining.iter().position(|t| t == txn) {
                    remaining.swap_remove(i);
                    earliest = lsn;
                    if remaining.is_empty() {
                        break;
                    }
                }
            }
        }
        earliest
    };

    // 2: commit resolution — the serial staging logic, emitting per-lane
    // apply queues instead of installing inline. Lane assignment is by
    // record segment; every update frame in the validated window (even
    // outside the replay window) joins its lane's verify list, because
    // the serial path checksums the whole log and stops at the first bad
    // frame — a corruption anywhere must trigger the fallback.
    let n_segments = db.n_segments();
    let lane_span = (n_segments as usize).div_ceil(workers).max(1);
    let lane_for = |rid: RecordId| -> usize {
        let sid = (rid.raw() / db.records_per_segment()).min(n_segments.saturating_sub(1));
        (sid as usize / lane_span).min(workers - 1)
    };
    let mut verify: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut queues: Vec<Vec<ApplyOp>> = (0..workers).map(|_| Vec::new()).collect();
    let mut staged: HashMap<TxnId, Vec<StagedWrite>> = HashMap::new();
    let mut prepared: HashMap<TxnId, u64> = HashMap::new();
    let mut decided: HashMap<u64, bool> = HashMap::new();
    let mut max_gid = 0u64;
    let mut updates_applied = 0u64;
    let mut txns_replayed = 0u64;
    for (i, (off, used, peek)) in frames.iter().enumerate() {
        let lsn = Lsn(base + *off as u64);
        if let FramePeek::Update { record, .. } = peek {
            verify[lane_for(*record)].push(i);
        }
        if lsn < replay_start {
            continue;
        }
        match peek {
            FramePeek::Update { txn, record, .. } => {
                staged.entry(*txn).or_default().push(StagedWrite {
                    frame: i,
                    record: *record,
                    end_lsn: Lsn(base + (*off + *used) as u64),
                });
            }
            FramePeek::Other(LogRecord::Commit { txn }) => {
                if let Some(writes) = staged.remove(txn) {
                    for w in writes {
                        queues[lane_for(w.record)].push(ApplyOp {
                            frame: w.frame,
                            record: w.record,
                            end_lsn: w.end_lsn,
                        });
                        updates_applied += 1;
                    }
                }
                prepared.remove(txn);
                txns_replayed += 1;
            }
            FramePeek::Other(LogRecord::Abort { txn }) => {
                staged.remove(txn);
                prepared.remove(txn);
            }
            FramePeek::Other(LogRecord::Prepare { txn, gid }) => {
                prepared.insert(*txn, *gid);
                max_gid = max_gid.max(*gid);
            }
            FramePeek::Other(LogRecord::Decide { gid, commit }) => {
                decided.insert(*gid, *commit);
                max_gid = max_gid.max(*gid);
            }
            _ => {}
        }
    }
    obs.span_end(
        "recovery.resolve",
        "recovery.resolve_ns",
        resolve_timer,
        || {
            format!(
                "{} frames, {} installs across {} lanes",
                frames.len(),
                updates_applied,
                workers
            )
        },
    );

    // 3: parallel apply — workers verify + load + install their lanes
    // while the main thread streams backup segment images to them.
    let apply_timer = obs.timer();
    let corrupt = AtomicBool::new(false);
    let segments_loaded = n_segments;
    storage.with_lanes(workers, |mut lanes| -> Result<()> {
        std::thread::scope(|scope| -> Result<()> {
            let mut senders = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for (w, lane) in lanes.drain(..).enumerate() {
                let (tx, rx) = mpsc::channel::<(SegmentId, Vec<Word>)>();
                senders.push(tx);
                let (bytes, frames) = (&bytes, &frames);
                let (my_verify, my_queue) = (&verify[w], &queues[w]);
                let corrupt = &corrupt;
                handles.push(scope.spawn(move || -> Result<()> {
                    let mut lane = lane;
                    // deferred checksums first: pure CPU, overlaps the
                    // main thread's backup I/O
                    for &fi in my_verify {
                        let (off, len, _) = frames[fi];
                        if !LogRecord::verify_frame(&bytes[off..off + len]) {
                            corrupt.store(true, Ordering::SeqCst);
                            return Ok(());
                        }
                    }
                    // backup images for this lane's segments
                    for (sid, img) in rx {
                        lane.load_segment(sid, &img, Some(copy), meter)?;
                    }
                    if corrupt.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    // installs, in resolved commit order
                    for op in my_queue {
                        let (off, len, ref peek) = frames[op.frame];
                        let (value_off, value_words) = match *peek {
                            FramePeek::Update {
                                value_off,
                                value_words,
                                ..
                            } => (value_off, value_words),
                            _ => {
                                return Err(MmdbError::Invalid(
                                    "apply queue references a non-update frame".into(),
                                ))
                            }
                        };
                        let value = decode_value(&bytes[off..off + len], value_off, value_words);
                        lane.install_record(op.record, &value, op.end_lsn, Timestamp::ZERO, meter)?;
                    }
                    Ok(())
                }));
            }
            let mut buf: Vec<Word> = vec![0; db.s_seg as usize];
            for sid in 0..n_segments as u32 {
                meter.io_op();
                backup.read_segment(copy, SegmentId(sid), &mut buf)?;
                let lane = (sid as usize / lane_span).min(workers - 1);
                // a worker that bailed on corruption dropped its receiver;
                // the send error is fine, the fallback rebuilds everything
                let _ = senders[lane].send((SegmentId(sid), buf.clone()));
            }
            drop(senders);
            for h in handles {
                h.join()
                    .map_err(|_| MmdbError::Invalid("recovery apply worker panicked".into()))??;
            }
            Ok(())
        })
    })?;
    obs.span_end(
        "recovery.parallel_apply",
        "recovery.parallel_apply_ns",
        apply_timer,
        || format!("{workers} workers, {segments_loaded} segments, {updates_applied} installs"),
    );

    if corrupt.load(Ordering::SeqCst) {
        // A deferred update checksum failed. The serial path would have
        // treated that frame as the end of the durable log, which can
        // change the chosen marker and the whole replay — so discard the
        // partial parallel state and defer to the oracle entirely.
        obs.counter("recovery.parallel_fallbacks", 1);
        *storage = Storage::new(db)?;
        return recover_observed(storage, backup, log_device, disk, meter, obs);
    }

    // Prepared branches with no durable outcome are in doubt (their
    // frames were verified above, so decoding the values is safe).
    let mut in_doubt: Vec<InDoubtTxn> = prepared
        .iter()
        .map(|(&txn, &gid)| InDoubtTxn {
            gid,
            txn,
            writes: staged
                .remove(&txn)
                .unwrap_or_default()
                .into_iter()
                .map(|w| {
                    let (off, len, ref peek) = frames[w.frame];
                    let value = match *peek {
                        FramePeek::Update {
                            value_off,
                            value_words,
                            ..
                        } => decode_value(&bytes[off..off + len], value_off, value_words),
                        _ => Vec::new(),
                    };
                    (w.record, value)
                })
                .collect(),
        })
        .collect();
    in_doubt.sort_by_key(|t| (t.gid, t.txn));
    let mut decisions: Vec<(u64, bool)> = decided.into_iter().collect();
    decisions.sort_unstable();
    let txns_discarded = staged.len() as u64;

    let backup_words = segments_loaded * db.s_seg;
    let log_words = (base + valid_len as u64)
        .saturating_sub(replay_start.raw())
        .div_ceil(4);
    let backup_read_seconds = disk.array_time(segments_loaded, db.s_seg);
    let log_read_seconds = log_read_time(disk, log_words);
    obs.observe(
        "recovery.total_modeled_us",
        ((backup_read_seconds + log_read_seconds) * 1e6) as u64,
    );
    obs.counter("recovery.runs", 1);
    obs.counter("recovery.parallel_runs", 1);

    Ok(RecoveryReport {
        ckpt,
        copy,
        segments_loaded,
        backup_words,
        replay_start,
        log_words,
        updates_applied,
        txns_replayed,
        txns_discarded,
        backup_read_seconds,
        log_read_seconds,
        in_doubt,
        decisions,
        max_gid,
    })
}
