//! Live log compaction (recovery pillar 2).
//!
//! Rotation alone bounds the *chunk size*, not the *replay window*: a
//! workload that keeps overwriting the same records accretes cold
//! chunks full of superseded after-images that recovery still has to
//! read. This pass rewrites cold chunks in place, replacing frames that
//! can no longer influence any future recovery with length-preserving
//! [`LogRecord::Compacted`] filler, so every surviving LSN is unchanged
//! and scanners, replication shipping, and `dump-archive` all keep
//! working on the rewritten log.
//!
//! **Drop rules** (conservative by construction):
//!
//! * An update frame is dropped iff its transaction durably **aborted**,
//!   or it durably **committed**, was never **prepared** (two-phase
//!   branches stay intact for the resolver), and the update is
//!   **superseded** — a durably-committed transaction with a higher
//!   `(commit LSN, update LSN)` key also wrote the record. Replay
//!   installs staged writes in commit order, so dropping a non-winner
//!   changes intermediate values only, never the recovered state.
//! * Everything else is kept: control frames (checkpoint markers,
//!   begin/commit/abort/prepare/decide), updates of transactions with
//!   no durable outcome, all updates of prepared transactions, and any
//!   frame that crosses a chunk boundary (filler never spans chunks —
//!   chunk rewrites are atomic per chunk).
//!
//! **Eligibility:** only *cold* chunks (not the active tail) that lie
//! entirely below every pin — the replication truncation pins of
//! attached standbys and whatever checkpoint clamp the caller adds.
//! Classification itself only trusts the checksum-validated prefix of
//! the log ([`LogScanner`] is the arbiter, exactly as in recovery), and
//! chunks not fully inside that prefix are never touched.
//!
//! Compression (pillar 3) rides along: with [`CompactOptions::compress`]
//! set, an eligible chunk is rewritten `.logz` even when nothing is
//! droppable, and filler runs full of zeros make compressed chunks
//! dramatically smaller.

use mmdb_log::{LogDevice, LogRecord, LogScanner, MIN_COMPACTED_LEN};
use mmdb_obs::Obs;
use mmdb_types::{MmdbError, RecordId, Result, TxnId};
use std::collections::{HashMap, HashSet};

/// What the compactor may touch and how.
#[derive(Debug, Clone, Default)]
pub struct CompactOptions {
    /// LSN ceilings the pass must stay below (replication truncation
    /// pins, checkpoint clamps). A chunk is eligible only if it ends at
    /// or below *every* pin; an empty list means no ceiling.
    pub pins: Vec<u64>,
    /// Also rewrite eligible chunks compressed (`.logz`). Chunks that
    /// are already compressed stay compressed regardless.
    pub compress: bool,
}

/// What one compaction pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Cold chunks inspected for droppable frames.
    pub chunks_examined: u64,
    /// Chunks rewritten (dropped frames and/or newly compressed).
    pub chunks_rewritten: u64,
    /// Update frames newly replaced by filler this pass.
    pub frames_dropped: u64,
    /// Bytes of dropped frames (the log stays the same logical length —
    /// this is dead weight turned into filler, which compression then
    /// collapses).
    pub bytes_reclaimed: u64,
    /// Physical bytes of the examined chunks before the pass.
    pub disk_bytes_before: u64,
    /// Physical bytes of those chunks after the pass.
    pub disk_bytes_after: u64,
}

/// One frame's place and classification, from the validated prefix.
struct FrameAt {
    start: u64,
    len: u64,
    kind: FrameKind,
}

enum FrameKind {
    Update { txn: TxnId, record: RecordId },
    Filler,
    Keep,
}

/// Runs one compaction pass over `device`. Devices without chunk
/// support (`chunk_map` empty) produce an all-zero report — the pass is
/// a no-op, not an error, so callers can run it unconditionally.
pub fn compact_device(
    device: &mut dyn LogDevice,
    opts: &CompactOptions,
    obs: &Obs,
) -> Result<CompactReport> {
    let mut report = CompactReport::default();
    let chunks = device.chunk_map();
    if chunks.len() < 2 {
        // nothing cold: zero or one (active) chunk
        return Ok(report);
    }
    let timer = obs.timer();

    // Classify the checksum-validated prefix, exactly the window
    // recovery would trust. Frames beyond it are never touched.
    let scanner = LogScanner::from_device(device)?;
    let valid_end = scanner.end_lsn().raw();
    let mut frames: Vec<FrameAt> = Vec::new();
    let mut committed: HashMap<TxnId, u64> = HashMap::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut prepared: HashSet<TxnId> = HashSet::new();
    for (lsn, rec) in scanner.forward_from(scanner.base_lsn()) {
        let len = rec.encoded_len() as u64;
        let kind = match &rec {
            LogRecord::Update { txn, record, .. } => FrameKind::Update {
                txn: *txn,
                record: *record,
            },
            LogRecord::Compacted { .. } => FrameKind::Filler,
            LogRecord::Commit { txn } => {
                committed.insert(*txn, lsn.raw());
                FrameKind::Keep
            }
            LogRecord::Abort { txn } => {
                aborted.insert(*txn);
                FrameKind::Keep
            }
            LogRecord::Prepare { txn, .. } => {
                prepared.insert(*txn);
                FrameKind::Keep
            }
            _ => FrameKind::Keep,
        };
        frames.push(FrameAt {
            start: lsn.raw(),
            len,
            kind,
        });
    }

    // Winner per record: max (commit LSN, update LSN) among updates of
    // durably-committed transactions.
    let mut winner: HashMap<RecordId, (u64, u64)> = HashMap::new();
    for f in &frames {
        if let FrameKind::Update { txn, record } = &f.kind {
            if let Some(&commit_lsn) = committed.get(txn) {
                let key = (commit_lsn, f.start);
                let w = winner.entry(*record).or_insert(key);
                if key > *w {
                    *w = key;
                }
            }
        }
    }
    let droppable = |f: &FrameAt| -> bool {
        match &f.kind {
            FrameKind::Update { txn, record } => {
                if aborted.contains(txn) {
                    return true;
                }
                if prepared.contains(txn) {
                    return false;
                }
                match committed.get(txn) {
                    Some(&commit_lsn) => winner
                        .get(record)
                        .is_some_and(|&w| (commit_lsn, f.start) < w),
                    None => false, // outcome not durable: keep
                }
            }
            FrameKind::Filler => true, // dead already; merges into runs
            FrameKind::Keep => false,
        }
    };

    let ceiling = opts.pins.iter().copied().min().unwrap_or(u64::MAX);
    let bytes = device.read_all()?;
    let base = device.start_offset();
    let last = chunks.len() - 1;
    let mut examined: HashSet<u64> = HashSet::new();
    for chunk in &chunks[..last] {
        let end = chunk.start + chunk.len;
        if chunk.start < base || end > ceiling || end > valid_end {
            // The chunk straddles the truncation point (its head bytes
            // are no longer readable, and the whole chunk dies at the
            // next truncation past its end), is pinned by a standby, or
            // is not fully validated: leave it alone.
            continue;
        }
        report.chunks_examined += 1;
        report.disk_bytes_before += chunk.disk_bytes;
        examined.insert(chunk.start);

        // Droppable frames fully inside this chunk, merged into
        // contiguous runs. Boundary-crossing frames are copied verbatim.
        let mut runs: Vec<(u64, u64)> = Vec::new(); // (start, len), chunk-relative
        let mut new_drops = 0u64;
        let mut dropped_bytes = 0u64;
        for f in &frames {
            if f.start < chunk.start || f.start + f.len > end {
                continue;
            }
            if !droppable(f) {
                continue;
            }
            if !matches!(f.kind, FrameKind::Filler) {
                new_drops += 1;
                dropped_bytes += f.len;
            }
            let rel = f.start - chunk.start;
            match runs.last_mut() {
                Some((s, l)) if *s + *l == rel => *l += f.len,
                _ => runs.push((rel, f.len)),
            }
        }
        let recompress = opts.compress && !chunk.compressed;
        if new_drops == 0 && !recompress {
            continue; // pre-existing fillers alone are no new gain
        }

        let off = (chunk.start - base) as usize;
        let mut rewritten = bytes[off..off + chunk.len as usize].to_vec();
        for &(rel, len) in &runs {
            debug_assert!(len as usize >= MIN_COMPACTED_LEN);
            let mut filler = Vec::with_capacity(len as usize);
            LogRecord::Compacted { span: len }.encode_into(&mut filler);
            if filler.len() as u64 != len {
                return Err(MmdbError::Invalid(format!(
                    "filler frame for a {len}-byte run encoded to {} bytes",
                    filler.len()
                )));
            }
            rewritten[rel as usize..(rel + len) as usize].copy_from_slice(&filler);
        }
        device.rewrite_chunk(chunk.start, &rewritten, opts.compress)?;
        report.chunks_rewritten += 1;
        report.frames_dropped += new_drops;
        report.bytes_reclaimed += dropped_bytes;
    }
    // Re-read physical sizes for the chunks we examined.
    for chunk in device.chunk_map() {
        if examined.contains(&chunk.start) {
            report.disk_bytes_after += chunk.disk_bytes;
        }
    }

    obs.counter("compact.runs", 1);
    obs.counter("compact.frames_dropped", report.frames_dropped);
    obs.counter("compact.chunks_rewritten", report.chunks_rewritten);
    obs.counter("compact.bytes_reclaimed", report.bytes_reclaimed);
    obs.span_end("compact.pass", "compact.pass_ns", timer, || {
        format!(
            "{} chunks examined, {} rewritten, {} frames dropped ({} bytes)",
            report.chunks_examined,
            report.chunks_rewritten,
            report.frames_dropped,
            report.bytes_reclaimed
        )
    });
    Ok(report)
}
