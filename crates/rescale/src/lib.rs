//! Recovery at scale: parallel partitioned replay, live log compaction,
//! and compressed cold storage.
//!
//! The core recovery path (`mmdb-recovery`) is deliberately serial — it
//! is the paper's §4 cost model made executable, and it doubles as the
//! correctness oracle for everything here. This crate adds the three
//! mechanisms a memory-resident database needs once databases and logs
//! stop being small:
//!
//! * [`recover_parallel`] — partitions the committed-REDO window by
//!   record segment and replays with N workers, overlapped with backup
//!   loading. Bit-identical to the serial path (same fingerprint, same
//!   report), with an automatic serial fallback on any log corruption.
//! * [`compact_device`] — a background pass that rewrites cold log
//!   chunks, replacing durably-dead frames (aborted, or committed and
//!   superseded) with length-preserving filler so the REDO window stays
//!   bounded while every LSN survives. Clamped below replication pins.
//! * Compression — cold chunks and backup segments use the
//!   dependency-free block codec in [`mmdb_types::lz`]; compaction's
//!   zero-filled filler is exactly what makes compressed cold chunks
//!   collapse.
//!
//! Rotation (sealing the active chunk) lives on [`mmdb_log::LogDevice`]
//! itself; this crate provides the policy that makes rotation useful.

#![warn(missing_docs)]

mod bench;
mod compact;
mod parallel;

pub use bench::{
    bench_recovery_json, validate_bench_recovery_json, ParallelEntry, RecoveryBenchReport,
    RecoveryPoint, WindowPoint, BENCH_RECOVERY_SCHEMA,
};
pub use compact::{compact_device, CompactOptions, CompactReport};
pub use parallel::recover_parallel;

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_disk::{BackupStore, MemBackup};
    use mmdb_log::{
        LogDevice, LogManager, LogRecord, LogScanner, MemLogDevice, SegmentedLogDevice,
    };
    use mmdb_obs::Obs;
    use mmdb_recovery::{recover, RecoveryReport};
    use mmdb_storage::Storage;
    use mmdb_types::{
        Algorithm, CkptMode, CostMeter, CostParams, LogMode, Params, RecordId, Timestamp, TxnId,
    };
    use std::path::PathBuf;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmdb-rescale-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A miniature engine (storage + log + backup + checkpointer), the
    /// same shape as the recovery crate's harness, but with a pluggable
    /// log device so compaction can run against real chunk files.
    struct Mini {
        storage: Storage,
        log: LogManager,
        backup: MemBackup,
        ckpt: mmdb_checkpoint::Checkpointer,
        meter: CostMeter,
        next_tau: u64,
        next_txn: u64,
    }

    impl Mini {
        fn new() -> Mini {
            Mini::with_device(Box::new(MemLogDevice::new()))
        }

        fn with_device(device: Box<dyn LogDevice>) -> Mini {
            let p = Params::small();
            Mini {
                storage: Storage::new(p.db).unwrap(),
                log: LogManager::new(
                    device,
                    LogMode::VolatileTail,
                    CostMeter::shared(CostParams::default()),
                ),
                backup: MemBackup::new(p.db),
                ckpt: mmdb_checkpoint::Checkpointer::new(
                    Algorithm::FuzzyCopy,
                    CkptMode::Partial,
                    mmdb_checkpoint::WalPolicy::Force,
                    CostMeter::shared(CostParams::default()),
                ),
                meter: CostMeter::new(CostParams::default()),
                next_tau: 0,
                next_txn: 1000,
            }
        }

        fn tau(&mut self) -> Timestamp {
            self.next_tau += 1;
            Timestamp(self.next_tau)
        }

        /// Runs a whole committed transaction updating `records` with
        /// `fill`, with commit-time log force.
        fn txn(&mut self, records: &[u64], fill: u32) {
            let tau = self.tau();
            self.next_txn += 1;
            let txn = TxnId(self.next_txn);
            self.log.append(&LogRecord::TxnBegin { txn, tau });
            let s_rec = self.storage.db_params().s_rec as usize;
            let mut installs = Vec::new();
            for &rid in records {
                let value = vec![fill; s_rec];
                let rec = LogRecord::Update {
                    txn,
                    record: RecordId(rid),
                    value: value.clone(),
                };
                let lsn = self.log.append(&rec);
                installs.push((RecordId(rid), value, rec.end_lsn(lsn)));
            }
            self.log.append_forced(&LogRecord::Commit { txn }).unwrap();
            for (rid, value, end_lsn) in installs {
                let sid = self.storage.segment_of(rid).unwrap();
                self.ckpt
                    .on_before_install(&mut self.storage, sid, &self.meter)
                    .unwrap();
                self.storage
                    .install_record(rid, &value, end_lsn, tau, &self.meter)
                    .unwrap();
            }
        }

        /// A transaction that durably aborts after logging its updates.
        fn aborted_txn(&mut self, records: &[u64], fill: u32) {
            let tau = self.tau();
            self.next_txn += 1;
            let txn = TxnId(self.next_txn);
            self.log.append(&LogRecord::TxnBegin { txn, tau });
            let s_rec = self.storage.db_params().s_rec as usize;
            for &rid in records {
                self.log.append(&LogRecord::Update {
                    txn,
                    record: RecordId(rid),
                    value: vec![fill; s_rec],
                });
            }
            self.log.append_forced(&LogRecord::Abort { txn }).unwrap();
        }

        /// A prepared branch with no durable outcome (in doubt).
        fn prepared_txn(&mut self, records: &[u64], fill: u32, gid: u64) -> TxnId {
            let tau = self.tau();
            self.next_txn += 1;
            let txn = TxnId(self.next_txn);
            self.log.append(&LogRecord::TxnBegin { txn, tau });
            let s_rec = self.storage.db_params().s_rec as usize;
            for &rid in records {
                self.log.append(&LogRecord::Update {
                    txn,
                    record: RecordId(rid),
                    value: vec![fill; s_rec],
                });
            }
            self.log
                .append_forced(&LogRecord::Prepare { txn, gid })
                .unwrap();
            txn
        }

        fn checkpoint(&mut self) {
            let tau = self.tau();
            self.ckpt
                .begin(&mut self.storage, &mut self.log, &mut self.backup, &[], tau)
                .unwrap();
            self.ckpt
                .run_to_completion(&mut self.storage, &mut self.log, &mut self.backup)
                .unwrap();
        }

        fn crash(&mut self) {
            self.log.crash().unwrap();
            self.ckpt.crash(&mut self.storage);
        }
    }

    /// Serial and parallel recovery of the same crash state must agree
    /// on the report and the storage fingerprint.
    fn assert_parallel_matches_serial(m: &mut Mini, workers: usize) -> (RecoveryReport, Storage) {
        let db = *m.storage.db_params();
        let disk = Params::small().disk;
        let mut serial = Storage::new(db).unwrap();
        let serial_report = recover(
            &mut serial,
            &mut m.backup,
            m.log.device_mut(),
            &disk,
            &m.meter,
        )
        .unwrap();
        let mut par = Storage::new(db).unwrap();
        let par_report = recover_parallel(
            &mut par,
            &mut m.backup,
            m.log.device_mut(),
            &disk,
            &m.meter,
            &Obs::disabled(),
            workers,
        )
        .unwrap();
        assert_eq!(serial_report, par_report, "{workers}-worker report");
        assert_eq!(
            serial.fingerprint(),
            par.fingerprint(),
            "{workers}-worker fingerprint"
        );
        assert_eq!(serial.current_version(), par.current_version());
        (par_report, par)
    }

    #[test]
    fn parallel_matches_serial_across_worker_counts() {
        let mut m = Mini::new();
        m.txn(&[0, 100, 2000], 7);
        m.checkpoint();
        m.txn(&[0, 550], 8);
        m.txn(&[550, 1, 901], 9);
        m.aborted_txn(&[2, 700], 99);
        let pre_crash = m.storage.fingerprint();
        m.crash();
        for workers in [1, 2, 3, 8] {
            let (report, recovered) = assert_parallel_matches_serial(&mut m, workers);
            assert_eq!(recovered.fingerprint(), pre_crash);
            assert_eq!(report.txns_replayed, 2); // the two post-checkpoint commits
        }
    }

    #[test]
    fn parallel_carries_in_doubt_branches() {
        let mut m = Mini::new();
        m.txn(&[0, 64], 1);
        m.checkpoint();
        m.txn(&[10], 2);
        let txn = m.prepared_txn(&[20, 21], 3, 77);
        m.crash();
        let (report, _) = assert_parallel_matches_serial(&mut m, 4);
        assert_eq!(report.in_doubt.len(), 1);
        assert_eq!(report.in_doubt[0].txn, txn);
        assert_eq!(report.in_doubt[0].gid, 77);
        assert_eq!(report.in_doubt[0].writes.len(), 2);
        assert_eq!(report.max_gid, 77);
    }

    #[test]
    fn parallel_falls_back_to_serial_on_corrupt_update_payload() {
        let mut m = Mini::new();
        m.txn(&[0, 100], 1);
        m.checkpoint();
        m.txn(&[5, 6, 7], 2);
        m.txn(&[5], 3);
        m.crash();

        // Flip one byte inside the *value* of the first post-checkpoint
        // update: structurally intact (peek accepts it), checksum bad.
        // The serial scanner treats that frame as the end of the log, so
        // both commits after it vanish — the parallel path must detect
        // the bad payload and defer to the serial result.
        let raw = m.log.device_mut().read_all().unwrap();
        let scanner = LogScanner::from_bytes_at(raw.clone(), 0);
        let victim = scanner
            .forward_from(scanner.base_lsn())
            .find_map(|(lsn, rec)| match rec {
                LogRecord::Update { value, .. } if value[0] == 2 => Some(lsn.raw() as usize),
                _ => None,
            })
            .unwrap();
        let mut corrupted = raw;
        corrupted[victim + 30] ^= 0xff; // inside the after-image
        let make_dev = || {
            let mut d = MemLogDevice::new();
            d.append(&corrupted).unwrap();
            d
        };

        let db = *m.storage.db_params();
        let disk = Params::small().disk;
        let mut serial = Storage::new(db).unwrap();
        let serial_report =
            recover(&mut serial, &mut m.backup, &mut make_dev(), &disk, &m.meter).unwrap();
        assert_eq!(serial_report.txns_replayed, 0); // torn at the bad frame
        let mut par = Storage::new(db).unwrap();
        let par_report = recover_parallel(
            &mut par,
            &mut m.backup,
            &mut make_dev(),
            &disk,
            &m.meter,
            &Obs::disabled(),
            4,
        )
        .unwrap();
        assert_eq!(serial_report, par_report);
        assert_eq!(serial.fingerprint(), par.fingerprint());
    }

    /// Segmented-device harness with small chunks so rotation and
    /// compaction have something to chew on.
    fn segmented_mini(name: &str, chunk_bytes: u64) -> (Mini, PathBuf) {
        let dir = scratch_dir(name);
        let dev = SegmentedLogDevice::open(&dir, chunk_bytes, false).unwrap();
        (Mini::with_device(Box::new(dev)), dir)
    }

    #[test]
    fn compaction_drops_superseded_frames_and_recovery_agrees() {
        let (mut m, dir) = segmented_mini("compact-super", 4096);
        m.txn(&[0, 1, 2, 3], 1);
        m.checkpoint();
        // Overwrite the same records many times: everything but the last
        // committed image of each record is superseded.
        for round in 2..30 {
            m.txn(&[0, 1, 2, 3], round);
        }
        m.log.rotate().unwrap();
        m.crash();

        let pre = {
            let mut s = Storage::new(*m.storage.db_params()).unwrap();
            recover(
                &mut s,
                &mut m.backup,
                m.log.device_mut(),
                &Params::small().disk,
                &m.meter,
            )
            .unwrap();
            s.fingerprint()
        };

        let report = compact_device(
            m.log.device_mut(),
            &CompactOptions::default(),
            &Obs::disabled(),
        )
        .unwrap();
        assert!(report.chunks_examined > 0);
        assert!(report.frames_dropped > 0, "{report:?}");
        assert!(report.chunks_rewritten > 0);

        // Length-preserving: the log's logical extent is unchanged and
        // recovery over the compacted log reaches the same state.
        let (mut serial, mut par) = (
            Storage::new(*m.storage.db_params()).unwrap(),
            Storage::new(*m.storage.db_params()).unwrap(),
        );
        let disk = Params::small().disk;
        recover(
            &mut serial,
            &mut m.backup,
            m.log.device_mut(),
            &disk,
            &m.meter,
        )
        .unwrap();
        assert_eq!(serial.fingerprint(), pre);
        recover_parallel(
            &mut par,
            &mut m.backup,
            m.log.device_mut(),
            &disk,
            &m.meter,
            &Obs::disabled(),
            4,
        )
        .unwrap();
        assert_eq!(par.fingerprint(), pre);

        // A second pass finds nothing new.
        let again = compact_device(
            m.log.device_mut(),
            &CompactOptions::default(),
            &Obs::disabled(),
        )
        .unwrap();
        assert_eq!(again.frames_dropped, 0);
        assert_eq!(again.chunks_rewritten, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_respects_pins() {
        let (mut m, dir) = segmented_mini("compact-pins", 4096);
        m.txn(&[0, 1], 1);
        m.checkpoint();
        for round in 2..30 {
            m.txn(&[0, 1], round);
        }
        m.log.rotate().unwrap();
        m.crash();
        // Pin at zero: everything is above the ceiling, nothing moves —
        // this is the lagging-standby contract.
        let report = compact_device(
            m.log.device_mut(),
            &CompactOptions {
                pins: vec![0],
                compress: false,
            },
            &Obs::disabled(),
        )
        .unwrap();
        assert_eq!(report.chunks_examined, 0);
        assert_eq!(report.chunks_rewritten, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_skips_chunk_straddling_the_truncation_point() {
        // Checkpoint-driven truncation cuts at a record boundary that
        // usually lands *inside* a chunk: fully-dead chunks below the
        // cut are deleted, but the straddling chunk keeps its original
        // start — now below the device's start_offset. The compactor
        // must leave that chunk alone (its head bytes are unreadable),
        // not underflow the offset arithmetic.
        let (mut m, dir) = segmented_mini("compact-midtrunc", 4096);
        for round in 1..20 {
            m.txn(&[0, 1, 2, 3], round); // several chunks of dead prefix
        }
        m.checkpoint();
        for round in 20..40 {
            m.txn(&[0, 1, 2, 3], round);
        }
        m.log.rotate().unwrap();
        m.crash();

        // Cut at a frame boundary strictly inside the second chunk,
        // below the completed checkpoint's begin marker (recovery still
        // needs that marker).
        let (_copy, ckpt) = m.backup.recovery_copy().unwrap();
        let dev = m.log.device_mut();
        let (lo, hi) = {
            let chunks = dev.chunk_map();
            assert!(
                chunks.len() >= 4,
                "workload built only {} chunks",
                chunks.len()
            );
            (chunks[1].start, chunks[1].start + chunks[1].len)
        };
        let cut = {
            let scanner = LogScanner::from_device(dev).unwrap();
            let marker = scanner
                .backward()
                .find_map(|(lsn, rec)| match rec {
                    LogRecord::BeginCheckpoint { ckpt: c, .. } if c == ckpt => Some(lsn.raw()),
                    _ => None,
                })
                .unwrap();
            scanner
                .forward_from(scanner.base_lsn())
                .map(|(lsn, _)| lsn.raw())
                .find(|&l| l > lo && l < hi && l <= marker)
                .expect("a frame boundary inside the second chunk below the marker")
        };
        dev.truncate_prefix(cut).unwrap();
        let cold = {
            let chunks = dev.chunk_map();
            assert!(
                chunks[0].start < dev.start_offset(),
                "cut must land mid-chunk"
            );
            chunks.len() - 1
        };

        let pre = {
            let mut s = Storage::new(*m.storage.db_params()).unwrap();
            recover(
                &mut s,
                &mut m.backup,
                m.log.device_mut(),
                &Params::small().disk,
                &m.meter,
            )
            .unwrap();
            s.fingerprint()
        };

        let report = compact_device(
            m.log.device_mut(),
            &CompactOptions::default(),
            &Obs::disabled(),
        )
        .unwrap();
        // The straddler was skipped; every other cold chunk was examined
        // and the superseded prefix still compacted.
        assert_eq!(report.chunks_examined, cold as u64 - 1);
        assert!(report.chunks_rewritten > 0, "{report:?}");

        // Recovery over the truncated-then-compacted log is unchanged,
        // serial and parallel alike.
        let db = *m.storage.db_params();
        let disk = Params::small().disk;
        let mut serial = Storage::new(db).unwrap();
        recover(
            &mut serial,
            &mut m.backup,
            m.log.device_mut(),
            &disk,
            &m.meter,
        )
        .unwrap();
        assert_eq!(serial.fingerprint(), pre);
        let mut par = Storage::new(db).unwrap();
        recover_parallel(
            &mut par,
            &mut m.backup,
            m.log.device_mut(),
            &disk,
            &m.meter,
            &Obs::disabled(),
            4,
        )
        .unwrap();
        assert_eq!(par.fingerprint(), pre);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_keeps_prepared_and_undecided_branches() {
        let (mut m, dir) = segmented_mini("compact-prep", 4096);
        m.txn(&[0, 1], 1);
        m.checkpoint();
        let prepared = m.prepared_txn(&[0, 1], 42, 9);
        for round in 2..30 {
            m.txn(&[0, 1], round);
        }
        m.log.rotate().unwrap();
        m.crash();
        compact_device(
            m.log.device_mut(),
            &CompactOptions::default(),
            &Obs::disabled(),
        )
        .unwrap();
        // The prepared branch's updates survive compaction verbatim.
        let scanner = LogScanner::from_device(m.log.device_mut()).unwrap();
        let kept: Vec<_> = scanner
            .forward_from(scanner.base_lsn())
            .filter_map(|(_, rec)| match rec {
                LogRecord::Update { txn, .. } if txn == prepared => Some(txn),
                _ => None,
            })
            .collect();
        assert_eq!(kept.len(), 2);
        // And recovery still reports it in doubt.
        let mut s = Storage::new(*m.storage.db_params()).unwrap();
        let report = recover_parallel(
            &mut s,
            &mut m.backup,
            m.log.device_mut(),
            &Params::small().disk,
            &m.meter,
            &Obs::disabled(),
            4,
        )
        .unwrap();
        assert_eq!(report.in_doubt.len(), 1);
        assert_eq!(report.in_doubt[0].txn, prepared);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_with_compression_shrinks_cold_chunks() {
        let (mut m, dir) = segmented_mini("compact-z", 4096);
        m.txn(&[0, 1, 2, 3], 1);
        m.checkpoint();
        for round in 2..40 {
            m.txn(&[0, 1, 2, 3], round);
        }
        m.log.rotate().unwrap();
        m.crash();
        let pre = {
            let mut s = Storage::new(*m.storage.db_params()).unwrap();
            recover(
                &mut s,
                &mut m.backup,
                m.log.device_mut(),
                &Params::small().disk,
                &m.meter,
            )
            .unwrap();
            s.fingerprint()
        };
        let report = compact_device(
            m.log.device_mut(),
            &CompactOptions {
                pins: Vec::new(),
                compress: true,
            },
            &Obs::disabled(),
        )
        .unwrap();
        assert!(report.chunks_rewritten > 0);
        assert!(
            report.disk_bytes_after < report.disk_bytes_before,
            "{report:?}"
        );
        // Logical layout intact: recovery agrees bit for bit.
        let mut s = Storage::new(*m.storage.db_params()).unwrap();
        recover(
            &mut s,
            &mut m.backup,
            m.log.device_mut(),
            &Params::small().disk,
            &m.meter,
        )
        .unwrap();
        assert_eq!(s.fingerprint(), pre);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_noop_on_unchunked_devices() {
        let mut dev = MemLogDevice::new();
        let report =
            compact_device(&mut dev, &CompactOptions::default(), &Obs::disabled()).unwrap();
        assert_eq!(report, CompactReport::default());
    }
}
