//! `BENCH_recovery.json`: the recovery-at-scale benchmark's
//! fixed-schema report.
//!
//! The report answers the paper's §4 question — what does recovery
//! *cost* — for the scaled-up engine: wall-clock restart time across
//! database size, log length and replay parallelism, plus the
//! bounded-window demonstration (recovery time stays flat while total
//! log written grows an order of magnitude, because continuous
//! checkpointing truncates the replay window). Like the other
//! `BENCH_*.json` artifacts, values are wall-clock — CI validates the
//! shape and the headline bounds, not bytes.

use mmdb_obs::json::{parse, Value};

/// Schema tag for [`bench_recovery_json`] output.
pub const BENCH_RECOVERY_SCHEMA: &str = "mmdb-bench-recovery/v1";

/// One worker count's wall-clock measurement on a sweep point.
#[derive(Debug, Clone, Default)]
pub struct ParallelEntry {
    /// Apply lanes used (1 = the serial oracle path via the parallel
    /// entry point).
    pub workers: u64,
    /// Wall-clock seconds for the full restart (open + replay).
    pub seconds: f64,
    /// `serial_s / seconds` for the same point.
    pub speedup: f64,
}

/// One database-size × log-length sweep point.
#[derive(Debug, Clone, Default)]
pub struct RecoveryPoint {
    /// Human label; the largest point is labeled `"large"` and carries
    /// the headline speedup gate.
    pub label: String,
    /// Segments in the database.
    pub n_segments: u64,
    /// Database size in bytes (segments × segment words × 4).
    pub db_bytes: u64,
    /// Committed transactions in the replay window at the crash.
    pub log_txns: u64,
    /// Log bytes in the replay window at the crash.
    pub log_bytes: u64,
    /// Wall-clock seconds for serial recovery ([`recover_observed`]
    /// — the oracle path).
    ///
    /// [`recover_observed`]: mmdb_recovery::recover_observed
    pub serial_s: f64,
    /// Wall-clock seconds per worker count for
    /// [`recover_parallel`](crate::recover_parallel).
    pub parallel: Vec<ParallelEntry>,
    /// Wall-clock seconds for 4-worker parallel recovery when both the
    /// backup slots and the cold log chunks are LZ-compressed.
    pub compressed_parallel_s: f64,
    /// Compressed on-disk footprint (backup + log) over the raw
    /// footprint for the same state — below 1.0 when compression wins.
    pub compressed_disk_ratio: f64,
}

/// One bounded-replay-window point: the same workload shape run `growth`
/// times longer, with continuous checkpointing truncating the log.
#[derive(Debug, Clone, Default)]
pub struct WindowPoint {
    /// Total-work multiplier relative to the first point (1, then 10).
    pub growth: u64,
    /// Log bytes written over the whole run (grows with the work).
    pub total_log_bytes: u64,
    /// Replay-window bytes at the crash (stays bounded).
    pub window_bytes: u64,
    /// Wall-clock recovery seconds (stays flat).
    pub recovery_s: f64,
}

/// Everything one recovery benchmark run measures.
#[derive(Debug, Clone, Default)]
pub struct RecoveryBenchReport {
    /// Checkpoint algorithm that produced the backups.
    pub algorithm: String,
    /// Words per record.
    pub record_words: u64,
    /// Words per segment.
    pub segment_words: u64,
    /// Updates per committed transaction in the workload.
    pub updates_per_txn: u64,
    /// The size × parallelism sweep.
    pub points: Vec<RecoveryPoint>,
    /// The bounded-window demonstration.
    pub bounded_window: Vec<WindowPoint>,
}

fn parallel_value(p: &ParallelEntry) -> Value {
    Value::Obj(vec![
        ("workers".into(), Value::u(p.workers)),
        ("seconds".into(), Value::f(p.seconds)),
        ("speedup".into(), Value::f(p.speedup)),
    ])
}

fn point_value(p: &RecoveryPoint) -> Value {
    Value::Obj(vec![
        ("label".into(), Value::s(&p.label)),
        ("n_segments".into(), Value::u(p.n_segments)),
        ("db_bytes".into(), Value::u(p.db_bytes)),
        ("log_txns".into(), Value::u(p.log_txns)),
        ("log_bytes".into(), Value::u(p.log_bytes)),
        ("serial_s".into(), Value::f(p.serial_s)),
        (
            "parallel".into(),
            Value::Arr(p.parallel.iter().map(parallel_value).collect()),
        ),
        (
            "compressed_parallel_s".into(),
            Value::f(p.compressed_parallel_s),
        ),
        (
            "compressed_disk_ratio".into(),
            Value::f(p.compressed_disk_ratio),
        ),
    ])
}

fn window_value(w: &WindowPoint) -> Value {
    Value::Obj(vec![
        ("growth".into(), Value::u(w.growth)),
        ("total_log_bytes".into(), Value::u(w.total_log_bytes)),
        ("window_bytes".into(), Value::u(w.window_bytes)),
        ("recovery_s".into(), Value::f(w.recovery_s)),
    ])
}

/// Renders a [`RecoveryBenchReport`] as pretty-printed JSON with the
/// fixed key set [`validate_bench_recovery_json`] checks.
pub fn bench_recovery_json(report: &RecoveryBenchReport) -> String {
    let v = Value::Obj(vec![
        ("schema".into(), Value::s(BENCH_RECOVERY_SCHEMA)),
        (
            "config".into(),
            Value::Obj(vec![
                ("algorithm".into(), Value::s(&report.algorithm)),
                ("record_words".into(), Value::u(report.record_words)),
                ("segment_words".into(), Value::u(report.segment_words)),
                ("updates_per_txn".into(), Value::u(report.updates_per_txn)),
            ]),
        ),
        (
            "points".into(),
            Value::Arr(report.points.iter().map(point_value).collect()),
        ),
        (
            "bounded_window".into(),
            Value::Arr(report.bounded_window.iter().map(window_value).collect()),
        ),
    ]);
    let mut s = v.to_pretty();
    s.push('\n');
    s
}

fn finite_nonneg(v: &Value, what: &str) -> Result<f64, String> {
    let f = v
        .as_f64()
        .ok_or_else(|| format!("{what} missing or not a number"))?;
    if !f.is_finite() || f < 0.0 {
        return Err(format!("{what} = {f} is not a finite non-negative"));
    }
    Ok(f)
}

/// Validates the fixed schema of [`bench_recovery_json`] output: the
/// schema tag, every required key, and basic sanity (finite
/// non-negative timings, non-empty sweeps, positive worker counts).
/// The headline performance gates (4-worker speedup, bounded-window
/// flatness) live in the repo-level schema test, like the other bench
/// artifacts' bounds.
pub fn validate_bench_recovery_json(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema tag")?;
    if schema != BENCH_RECOVERY_SCHEMA {
        return Err(format!(
            "schema {schema:?}, expected {BENCH_RECOVERY_SCHEMA:?}"
        ));
    }
    let config = v.get("config").ok_or("missing config")?;
    config
        .get("algorithm")
        .and_then(Value::as_str)
        .ok_or("config.algorithm missing or not a string")?;
    for key in ["record_words", "segment_words", "updates_per_txn"] {
        config
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("config.{key} missing or not an integer"))?;
    }

    let points = v
        .get("points")
        .and_then(Value::as_arr)
        .ok_or("missing points array")?;
    if points.is_empty() {
        return Err("points array is empty".into());
    }
    for (i, p) in points.iter().enumerate() {
        p.get("label")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("points[{i}].label missing or not a string"))?;
        for key in ["n_segments", "db_bytes", "log_txns", "log_bytes"] {
            p.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("points[{i}].{key} missing or not an integer"))?;
        }
        let serial = finite_nonneg(
            p.get("serial_s").unwrap_or(&Value::Null),
            &format!("points[{i}].serial_s"),
        )?;
        if serial == 0.0 {
            return Err(format!(
                "points[{i}].serial_s is zero — nothing was measured"
            ));
        }
        let parallel = p
            .get("parallel")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("points[{i}].parallel missing or not an array"))?;
        if parallel.is_empty() {
            return Err(format!("points[{i}].parallel is empty"));
        }
        for (j, entry) in parallel.iter().enumerate() {
            let workers = entry
                .get("workers")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("points[{i}].parallel[{j}].workers missing"))?;
            if workers == 0 {
                return Err(format!("points[{i}].parallel[{j}].workers is zero"));
            }
            finite_nonneg(
                entry.get("seconds").unwrap_or(&Value::Null),
                &format!("points[{i}].parallel[{j}].seconds"),
            )?;
            finite_nonneg(
                entry.get("speedup").unwrap_or(&Value::Null),
                &format!("points[{i}].parallel[{j}].speedup"),
            )?;
        }
        finite_nonneg(
            p.get("compressed_parallel_s").unwrap_or(&Value::Null),
            &format!("points[{i}].compressed_parallel_s"),
        )?;
        let ratio = finite_nonneg(
            p.get("compressed_disk_ratio").unwrap_or(&Value::Null),
            &format!("points[{i}].compressed_disk_ratio"),
        )?;
        if ratio == 0.0 || ratio > 1.5 {
            return Err(format!(
                "points[{i}].compressed_disk_ratio = {ratio} is implausible"
            ));
        }
    }

    let window = v
        .get("bounded_window")
        .and_then(Value::as_arr)
        .ok_or("missing bounded_window array")?;
    if window.len() < 2 {
        return Err("bounded_window needs at least the 1x and 10x points".into());
    }
    for (i, w) in window.iter().enumerate() {
        for key in ["growth", "total_log_bytes", "window_bytes"] {
            w.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("bounded_window[{i}].{key} missing or not an integer"))?;
        }
        finite_nonneg(
            w.get("recovery_s").unwrap_or(&Value::Null),
            &format!("bounded_window[{i}].recovery_s"),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RecoveryBenchReport {
        let parallel = |serial: f64| {
            [1u64, 2, 4, 8]
                .iter()
                .map(|&w| {
                    let seconds = serial / (w as f64).min(3.0);
                    ParallelEntry {
                        workers: w,
                        seconds,
                        speedup: serial / seconds,
                    }
                })
                .collect()
        };
        RecoveryBenchReport {
            algorithm: "fuzzy-copy".into(),
            record_words: 64,
            segment_words: 65_536,
            updates_per_txn: 8,
            points: vec![
                RecoveryPoint {
                    label: "small".into(),
                    n_segments: 16,
                    db_bytes: 16 * 65_536 * 4,
                    log_txns: 2_000,
                    log_bytes: 4 << 20,
                    serial_s: 0.11,
                    parallel: parallel(0.11),
                    compressed_parallel_s: 0.05,
                    compressed_disk_ratio: 0.4,
                },
                RecoveryPoint {
                    label: "large".into(),
                    n_segments: 128,
                    db_bytes: 128 * 65_536 * 4,
                    log_txns: 20_000,
                    log_bytes: 40 << 20,
                    serial_s: 1.2,
                    parallel: parallel(1.2),
                    compressed_parallel_s: 0.5,
                    compressed_disk_ratio: 0.35,
                },
            ],
            bounded_window: vec![
                WindowPoint {
                    growth: 1,
                    total_log_bytes: 8 << 20,
                    window_bytes: 2 << 20,
                    recovery_s: 0.2,
                },
                WindowPoint {
                    growth: 10,
                    total_log_bytes: 80 << 20,
                    window_bytes: 2 << 20,
                    recovery_s: 0.22,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_validator() {
        let text = bench_recovery_json(&report());
        validate_bench_recovery_json(&text).expect("valid");
    }

    #[test]
    fn validator_rejects_wrong_schema_and_missing_keys() {
        assert!(validate_bench_recovery_json("{}").is_err());
        let text =
            bench_recovery_json(&report()).replace(BENCH_RECOVERY_SCHEMA, "mmdb-bench-repl/v1");
        assert!(validate_bench_recovery_json(&text).is_err());
        let text = bench_recovery_json(&report()).replace("\"speedup\"", "\"speed\"");
        assert!(validate_bench_recovery_json(&text).is_err());
        let text = bench_recovery_json(&report()).replace("\"window_bytes\"", "\"window\"");
        assert!(validate_bench_recovery_json(&text).is_err());
    }

    #[test]
    fn validator_rejects_empty_sweeps_and_zero_measurements() {
        let mut r = report();
        r.points.clear();
        assert!(validate_bench_recovery_json(&bench_recovery_json(&r)).is_err());

        let mut r = report();
        r.points[0].serial_s = 0.0;
        let err = validate_bench_recovery_json(&bench_recovery_json(&r)).expect_err("zero serial");
        assert!(err.contains("serial_s"), "{err}");

        let mut r = report();
        r.bounded_window.truncate(1);
        let err = validate_bench_recovery_json(&bench_recovery_json(&r)).expect_err("one point");
        assert!(err.contains("bounded_window"), "{err}");

        let mut r = report();
        r.points[1].compressed_disk_ratio = 0.0;
        assert!(validate_bench_recovery_json(&bench_recovery_json(&r)).is_err());
    }
}
