//! Property tests: histogram quantiles vs exact order statistics.
//!
//! For arbitrary value sets, the recorded p50/p99/max must match the
//! exact quantiles computed from a sorted reference vector to within the
//! structural error bound of the log-linear layout: reported values are
//! upper bucket bounds, so `exact <= reported <= exact * (1 + 1/16)`,
//! and `max` is tracked exactly.

use mmdb_obs::hist::{Histogram, SUB_BUCKETS};
use proptest::prelude::*;

/// Exact order statistic matching the histogram's rank convention
/// (1-based ceil rank).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn check(values: &[u64]) {
    let mut h = Histogram::new();
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    for &v in values {
        h.record(v);
    }
    assert_eq!(h.max(), *sorted.last().unwrap_or(&0), "max must be exact");
    assert_eq!(h.min(), *sorted.first().unwrap_or(&0), "min must be exact");
    assert_eq!(h.count(), values.len() as u64);
    let bound = 1.0 + 1.0 / SUB_BUCKETS as f64;
    for q in [0.5, 0.99] {
        let exact = exact_quantile(&sorted, q);
        let got = h.quantile(q);
        assert!(got >= exact, "q={q}: reported {got} < exact {exact}");
        assert!(
            got as f64 <= exact as f64 * bound + 1.0,
            "q={q}: reported {got} overshoots exact {exact} past {bound}x"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn quantiles_track_exact_order_statistics(
        values in proptest::collection::vec(0u64..1_000_000_000_000, 1..400)
    ) {
        check(&values);
    }

    #[test]
    fn quantiles_track_small_skewed_values(
        values in proptest::collection::vec(0u64..64, 1..200)
    ) {
        check(&values);
    }

    #[test]
    fn merged_halves_agree_with_single_recording(
        a in proptest::collection::vec(0u64..1_000_000, 0..150),
        b in proptest::collection::vec(0u64..1_000_000, 1..150)
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.summary(), hall.summary());
    }
}
