//! [`MetricsSnapshot`]: the unified export surface.
//!
//! A snapshot is a point-in-time dump of every counter, gauge and
//! histogram in a registry, plus the paper's own overhead accounting
//! (`OverheadReport` totals and per-transaction rates) copied verbatim so
//! the exported numbers reconcile *exactly* with `Meters` — one source of
//! truth, two serializations (pretty JSON and Prometheus text exposition).

use crate::hist::HistSummary;
use crate::json::{self, Value};
use crate::registry::AttributionEntry;
use crate::Obs;
use std::fmt::Write as _;

/// The paper's §4 overhead accounting, copied from `OverheadReport`.
///
/// Totals are raw instruction counts from the cost meters; the `*_per_txn`
/// fields are the exact values of `OverheadReport::sync_per_txn()` et al.
/// so telemetry consumers and the paper tables can never disagree.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PaperOverhead {
    /// Committed transactions in the measurement window.
    pub committed: u64,
    /// Total synchronous checkpoint instructions.
    pub sync_ckpt_total: u64,
    /// Total asynchronous checkpoint instructions.
    pub async_ckpt_total: u64,
    /// Total logging instructions.
    pub logging_total: u64,
    /// Total base (non-overhead) transaction instructions.
    pub base_total: u64,
    /// `sync_ckpt_total / committed` — `OverheadReport::sync_per_txn()`.
    pub sync_ckpt_per_txn: f64,
    /// `async_ckpt_total / committed` — `OverheadReport::async_per_txn()`.
    pub async_ckpt_per_txn: f64,
    /// `logging_total / committed` — `OverheadReport::logging_per_txn()`.
    pub logging_per_txn: f64,
    /// Combined checkpoint overhead per committed transaction —
    /// `OverheadReport::ckpt_overhead_per_txn()`.
    pub ckpt_overhead_per_txn: f64,
}

/// A point-in-time dump of the whole telemetry surface.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram digests, sorted by name.
    pub hists: Vec<(String, HistSummary)>,
    /// Latency attribution per opcode (empty when no request scope ever
    /// finished — the JSON key is omitted then, keeping pre-attribution
    /// documents byte-compatible).
    pub attribution: Vec<AttributionEntry>,
    /// Paper cost-model reconciliation, when an engine supplied one.
    pub paper: Option<PaperOverhead>,
}

impl MetricsSnapshot {
    /// Capture the registry contents of `obs` (no paper section).
    pub fn capture(obs: &Obs) -> MetricsSnapshot {
        let (counters, gauges, hists) = obs.dump();
        MetricsSnapshot {
            counters,
            gauges,
            hists,
            attribution: obs.attribution(),
            paper: None,
        }
    }

    /// Add or overwrite a counter, keeping name order.
    pub fn put_counter(&mut self, name: &str, value: u64) {
        upsert(&mut self.counters, name, value);
    }

    /// Add or overwrite a gauge, keeping name order.
    pub fn put_gauge(&mut self, name: &str, value: u64) {
        upsert(&mut self.gauges, name, value);
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// Look up a histogram digest by name.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        lookup(&self.hists, name)
    }

    /// Build the JSON document model.
    pub fn to_json_value(&self) -> Value {
        let mut root = Vec::new();
        root.push((
            "counters".to_string(),
            Value::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::u(*v)))
                    .collect(),
            ),
        ));
        root.push((
            "gauges".to_string(),
            Value::Obj(
                self.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::u(*v)))
                    .collect(),
            ),
        ));
        root.push((
            "histograms".to_string(),
            Value::Obj(
                self.hists
                    .iter()
                    .map(|(k, h)| (k.clone(), hist_to_json(h)))
                    .collect(),
            ),
        ));
        if !self.attribution.is_empty() {
            root.push((
                "attribution".to_string(),
                attribution_to_json(&self.attribution),
            ));
        }
        if let Some(p) = &self.paper {
            root.push(("paper".to_string(), paper_to_json(p)));
        }
        Value::Obj(root)
    }

    /// Serialize to pretty (2-space indented) JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Parse a snapshot back from its JSON serialization.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let counters = read_u64_map(&v, "counters")?;
        let gauges = read_u64_map(&v, "gauges")?;
        let hists = match v.get("histograms") {
            Some(Value::Obj(pairs)) => pairs
                .iter()
                .map(|(k, hv)| Ok((k.clone(), hist_from_json(hv)?)))
                .collect::<Result<Vec<_>, String>>()?,
            Some(_) => return Err("histograms: not an object".into()),
            None => Vec::new(),
        };
        let attribution = match v.get("attribution") {
            Some(av) => attribution_from_json(av)?,
            None => Vec::new(),
        };
        let paper = match v.get("paper") {
            Some(pv) => Some(paper_from_json(pv)?),
            None => None,
        };
        Ok(MetricsSnapshot {
            counters,
            gauges,
            hists,
            attribution,
            paper,
        })
    }

    /// Serialize to the Prometheus text exposition format (version 0.0.4).
    ///
    /// Counters and gauges export directly; histograms export as
    /// `summary`-typed families with `quantile` labels plus `_sum`,
    /// `_count`, `_min` and `_max` samples. Metric names are prefixed
    /// `mmdb_` and dots become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.hists {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (q, val) in [
                ("0.5", h.p50),
                ("0.9", h.p90),
                ("0.99", h.p99),
                ("0.999", h.p999),
            ] {
                let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {val}");
            }
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            let _ = writeln!(out, "{n}_min {}", h.min);
            let _ = writeln!(out, "{n}_max {}", h.max);
        }
        if let Some(p) = &self.paper {
            for (name, v) in [
                ("paper.committed", p.committed as f64),
                ("paper.sync_ckpt_total", p.sync_ckpt_total as f64),
                ("paper.async_ckpt_total", p.async_ckpt_total as f64),
                ("paper.logging_total", p.logging_total as f64),
                ("paper.base_total", p.base_total as f64),
                ("paper.sync_ckpt_per_txn", p.sync_ckpt_per_txn),
                ("paper.async_ckpt_per_txn", p.async_ckpt_per_txn),
                ("paper.logging_per_txn", p.logging_per_txn),
                ("paper.ckpt_overhead_per_txn", p.ckpt_overhead_per_txn),
            ] {
                let n = prom_name(name);
                let _ = writeln!(out, "# TYPE {n} gauge");
                let _ = writeln!(out, "{n} {v}");
            }
        }
        out
    }
}

/// Merge per-shard snapshots into one Prometheus document with `shard`
/// labels.
///
/// Each shard of a sharded engine owns its own registry, so the same
/// metric family exists once per shard. Emitting each shard's
/// [`MetricsSnapshot::to_prometheus`] back to back would repeat every
/// `# TYPE` line — a malformed exposition (Prometheus requires one TYPE
/// per family). This function emits each family's `# TYPE` line exactly
/// once, followed by one `{shard="i"}`-labeled sample per shard that has
/// it; histogram families get `shard` plus `quantile` labels.
pub fn to_prometheus_sharded(shards: &[MetricsSnapshot]) -> String {
    use std::collections::BTreeSet;
    let mut out = String::new();

    let counter_names: BTreeSet<&str> = shards
        .iter()
        .flat_map(|s| s.counters.iter().map(|(k, _)| k.as_str()))
        .collect();
    for name in counter_names {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        for (i, s) in shards.iter().enumerate() {
            if let Some(v) = s.counter(name) {
                let _ = writeln!(out, "{n}{{shard=\"{i}\"}} {v}");
            }
        }
    }

    let gauge_names: BTreeSet<&str> = shards
        .iter()
        .flat_map(|s| s.gauges.iter().map(|(k, _)| k.as_str()))
        .collect();
    for name in gauge_names {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        for (i, s) in shards.iter().enumerate() {
            if let Some(v) = s.gauge(name) {
                let _ = writeln!(out, "{n}{{shard=\"{i}\"}} {v}");
            }
        }
    }

    let hist_names: BTreeSet<&str> = shards
        .iter()
        .flat_map(|s| s.hists.iter().map(|(k, _)| k.as_str()))
        .collect();
    for name in hist_names {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (i, s) in shards.iter().enumerate() {
            if let Some(h) = s.hist(name) {
                for (q, val) in [
                    ("0.5", h.p50),
                    ("0.9", h.p90),
                    ("0.99", h.p99),
                    ("0.999", h.p999),
                ] {
                    let _ = writeln!(out, "{n}{{shard=\"{i}\",quantile=\"{q}\"}} {val}");
                }
                let _ = writeln!(out, "{n}_sum{{shard=\"{i}\"}} {}", h.sum);
                let _ = writeln!(out, "{n}_count{{shard=\"{i}\"}} {}", h.count);
                let _ = writeln!(out, "{n}_min{{shard=\"{i}\"}} {}", h.min);
                let _ = writeln!(out, "{n}_max{{shard=\"{i}\"}} {}", h.max);
            }
        }
    }
    out
}

fn lookup<'a, T>(v: &'a [(String, T)], name: &str) -> Option<&'a T> {
    v.binary_search_by(|(k, _)| k.as_str().cmp(name))
        .ok()
        .map(|i| &v[i].1)
}

fn upsert(v: &mut Vec<(String, u64)>, name: &str, value: u64) {
    match v.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
        Ok(i) => v[i].1 = value,
        Err(i) => v.insert(i, (name.to_string(), value)),
    }
}

fn hist_to_json(h: &HistSummary) -> Value {
    Value::Obj(vec![
        ("count".into(), Value::u(h.count)),
        ("sum".into(), Value::u(h.sum)),
        ("min".into(), Value::u(h.min)),
        ("max".into(), Value::u(h.max)),
        ("mean".into(), Value::f(h.mean)),
        ("p50".into(), Value::u(h.p50)),
        ("p90".into(), Value::u(h.p90)),
        ("p99".into(), Value::u(h.p99)),
        ("p999".into(), Value::u(h.p999)),
    ])
}

fn hist_from_json(v: &Value) -> Result<HistSummary, String> {
    Ok(HistSummary {
        count: read_u64(v, "count")?,
        sum: read_u64(v, "sum")?,
        min: read_u64(v, "min")?,
        max: read_u64(v, "max")?,
        mean: read_f64(v, "mean")?,
        p50: read_u64(v, "p50")?,
        p90: read_u64(v, "p90")?,
        p99: read_u64(v, "p99")?,
        p999: read_u64(v, "p999")?,
    })
}

/// Serialize the attribution report: per opcode, `requests` and
/// `total_ns` (which reconcile exactly with the request histogram),
/// then per phase `count`, `total_ns` and — when the opcode saw any
/// request time — `share`, the phase's fraction of it. `share` is
/// derived, so [`attribution_from_json`] ignores it on the way back.
fn attribution_to_json(entries: &[AttributionEntry]) -> Value {
    Value::Obj(
        entries
            .iter()
            .map(|e| {
                let phases = e
                    .phases
                    .iter()
                    .map(|(name, count, total_ns)| {
                        let mut fields = vec![
                            ("count".to_string(), Value::u(*count)),
                            ("total_ns".to_string(), Value::u(*total_ns)),
                        ];
                        if e.total_ns > 0 {
                            fields.push((
                                "share".to_string(),
                                Value::f(*total_ns as f64 / e.total_ns as f64),
                            ));
                        }
                        (name.clone(), Value::Obj(fields))
                    })
                    .collect();
                (
                    e.op.clone(),
                    Value::Obj(vec![
                        ("requests".to_string(), Value::u(e.requests)),
                        ("total_ns".to_string(), Value::u(e.total_ns)),
                        ("phases".to_string(), Value::Obj(phases)),
                    ]),
                )
            })
            .collect(),
    )
}

fn attribution_from_json(v: &Value) -> Result<Vec<AttributionEntry>, String> {
    let Value::Obj(ops) = v else {
        return Err("attribution: not an object".into());
    };
    ops.iter()
        .map(|(op, row)| {
            let phases = match row.get("phases") {
                Some(Value::Obj(pairs)) => pairs
                    .iter()
                    .map(|(name, pv)| {
                        Ok((
                            name.clone(),
                            read_u64(pv, "count")?,
                            read_u64(pv, "total_ns")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                Some(_) => return Err(format!("attribution.{op}.phases: not an object")),
                None => Vec::new(),
            };
            Ok(AttributionEntry {
                op: op.clone(),
                requests: read_u64(row, "requests")?,
                total_ns: read_u64(row, "total_ns")?,
                phases,
            })
        })
        .collect()
}

fn paper_to_json(p: &PaperOverhead) -> Value {
    Value::Obj(vec![
        ("committed".into(), Value::u(p.committed)),
        ("sync_ckpt_total".into(), Value::u(p.sync_ckpt_total)),
        ("async_ckpt_total".into(), Value::u(p.async_ckpt_total)),
        ("logging_total".into(), Value::u(p.logging_total)),
        ("base_total".into(), Value::u(p.base_total)),
        ("sync_ckpt_per_txn".into(), Value::f(p.sync_ckpt_per_txn)),
        ("async_ckpt_per_txn".into(), Value::f(p.async_ckpt_per_txn)),
        ("logging_per_txn".into(), Value::f(p.logging_per_txn)),
        (
            "ckpt_overhead_per_txn".into(),
            Value::f(p.ckpt_overhead_per_txn),
        ),
    ])
}

fn paper_from_json(v: &Value) -> Result<PaperOverhead, String> {
    Ok(PaperOverhead {
        committed: read_u64(v, "committed")?,
        sync_ckpt_total: read_u64(v, "sync_ckpt_total")?,
        async_ckpt_total: read_u64(v, "async_ckpt_total")?,
        logging_total: read_u64(v, "logging_total")?,
        base_total: read_u64(v, "base_total")?,
        sync_ckpt_per_txn: read_f64(v, "sync_ckpt_per_txn")?,
        async_ckpt_per_txn: read_f64(v, "async_ckpt_per_txn")?,
        logging_per_txn: read_f64(v, "logging_per_txn")?,
        ckpt_overhead_per_txn: read_f64(v, "ckpt_overhead_per_txn")?,
    })
}

fn read_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{key}: missing or not a u64"))
}

fn read_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{key}: missing or not a number"))
}

fn read_u64_map(v: &Value, key: &str) -> Result<Vec<(String, u64)>, String> {
    match v.get(key) {
        Some(Value::Obj(pairs)) => pairs
            .iter()
            .map(|(k, kv)| {
                kv.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("{key}.{k}: not a u64"))
            })
            .collect(),
        Some(_) => Err(format!("{key}: not an object")),
        None => Ok(Vec::new()),
    }
}

/// Map an internal dotted metric name to a Prometheus-legal one.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("mmdb_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Validate a Prometheus text-exposition document line by line.
///
/// The workspace vendors no regex engine, so this is a hand-rolled
/// recognizer for the sample-line grammar
/// `name ['{' label '=' '"' value '"' [',' ...] '}'] ' ' number` plus
/// `# TYPE` / `# HELP` comment lines. Each metric family may carry at
/// most one `TYPE` line (naively concatenating per-shard expositions
/// violates this — use [`to_prometheus_sharded`] instead). Returns the
/// offending line on error.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut typed_families: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("TYPE ") || rest.starts_with("HELP ")) {
                return Err(format!("line {}: unknown comment form: {line}", lineno + 1));
            }
            if let Some(type_rest) = rest.strip_prefix("TYPE ") {
                let mut parts = type_rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !is_metric_name(name)
                    || !matches!(
                        kind,
                        "counter" | "gauge" | "summary" | "histogram" | "untyped"
                    )
                    || parts.next().is_some()
                {
                    return Err(format!("line {}: malformed TYPE line: {line}", lineno + 1));
                }
                if !typed_families.insert(name) {
                    return Err(format!(
                        "line {}: duplicate TYPE line for family {name}: {line}",
                        lineno + 1
                    ));
                }
            }
            continue;
        }
        validate_sample_line(line).map_err(|e| format!("line {}: {e}: {line}", lineno + 1))?;
    }
    Ok(())
}

fn validate_sample_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    // Metric name.
    let name_start = i;
    while i < bytes.len() && is_name_char(bytes[i], i == name_start) {
        i += 1;
    }
    if i == name_start {
        return Err("missing metric name".into());
    }
    // Optional label set.
    if i < bytes.len() && bytes[i] == b'{' {
        i += 1;
        loop {
            let lstart = i;
            while i < bytes.len() && is_name_char(bytes[i], i == lstart) {
                i += 1;
            }
            if i == lstart {
                return Err("missing label name".into());
            }
            if i >= bytes.len() || bytes[i] != b'=' {
                return Err("expected '=' after label name".into());
            }
            i += 1;
            if i >= bytes.len() || bytes[i] != b'"' {
                return Err("expected opening quote for label value".into());
            }
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            if i >= bytes.len() {
                return Err("unterminated label value".into());
            }
            i += 1; // closing quote
            match bytes.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                _ => return Err("expected ',' or '}' in label set".into()),
            }
        }
    }
    // Mandatory space, then a number.
    if i >= bytes.len() || bytes[i] != b' ' {
        return Err("expected space before sample value".into());
    }
    let value = line[i + 1..].trim();
    if value.is_empty() {
        return Err("missing sample value".into());
    }
    // Accept the Prometheus float grammar (incl. +Inf/-Inf/NaN).
    let ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !ok {
        return Err(format!("unparseable sample value '{value}'"));
    }
    Ok(())
}

fn is_metric_name(s: &str) -> bool {
    !s.is_empty() && s.bytes().enumerate().all(|(i, b)| is_name_char(b, i == 0))
}

fn is_name_char(b: u8, first: bool) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || (!first && b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_snapshot() -> MetricsSnapshot {
        let obs = Obs::enabled();
        obs.counter("txn.committed", 42);
        obs.counter("log.forces", 7);
        obs.gauge("seg.total", 32);
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 5000] {
            h.record(v);
        }
        for v in [10u64, 20, 30, 40, 5000] {
            obs.observe("log.force_ns", v);
        }
        let mut snap = MetricsSnapshot::capture(&obs);
        snap.paper = Some(PaperOverhead {
            committed: 42,
            sync_ckpt_total: 1000,
            async_ckpt_total: 2000,
            logging_total: 500,
            base_total: 42_000,
            sync_ckpt_per_txn: 1000.0 / 42.0,
            async_ckpt_per_txn: 2000.0 / 42.0,
            logging_per_txn: 500.0 / 42.0,
            ckpt_overhead_per_txn: 3000.0 / 42.0,
        });
        snap
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot();
        let text = snap.to_json_pretty();
        let back = MetricsSnapshot::from_json(&text).expect("parse back");
        assert_eq!(back, snap);
        // And the document itself round-trips at the Value level.
        let v1 = json::parse(&text).expect("parse");
        let v2 = json::parse(&v1.to_pretty()).expect("reparse");
        assert_eq!(v1, v2);
    }

    #[test]
    fn prometheus_output_validates_and_names_are_legal() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        validate_prometheus(&text).expect("valid exposition format");
        assert!(text.contains("# TYPE mmdb_txn_committed counter"));
        assert!(text.contains("mmdb_txn_committed 42"));
        assert!(text.contains("mmdb_log_force_ns{quantile=\"0.99\"}"));
        assert!(text.contains("mmdb_log_force_ns_count 5"));
        assert!(text.contains("# TYPE mmdb_paper_sync_ckpt_per_txn gauge"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "no_value_here",
            "1leading_digit 3",
            "name{unterminated=\"x 3",
            "name{a=\"b\"",
            "name 1.2.3",
            "# FROB nonsense",
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted: {bad}");
        }
        validate_prometheus("ok_name{l=\"v\",m=\"w\"} 1e-9\n# HELP x y\nplain 3")
            .expect("good doc");
    }

    #[test]
    fn validator_rejects_duplicate_type_families() {
        // Naive concatenation of two shards' expositions: same family,
        // two TYPE lines. Must be rejected.
        let doc = "# TYPE mmdb_x counter\nmmdb_x 1\n# TYPE mmdb_x counter\nmmdb_x 2\n";
        let err = validate_prometheus(doc).unwrap_err();
        assert!(err.contains("duplicate TYPE"), "{err}");
        // One TYPE line with many samples (labeled) is fine.
        let ok = "# TYPE mmdb_x counter\nmmdb_x{shard=\"0\"} 1\nmmdb_x{shard=\"1\"} 2\n";
        validate_prometheus(ok).expect("labeled samples under one TYPE");
    }

    #[test]
    fn sharded_exposition_validates_with_one_type_per_family() {
        let mut shards = Vec::new();
        for i in 0..4u64 {
            let obs = Obs::enabled();
            obs.counter("txn.committed", 10 + i);
            obs.gauge("seg.total", 8);
            obs.observe("net.request_ns", 100 * (i + 1));
            shards.push(MetricsSnapshot::capture(&obs));
        }
        let text = to_prometheus_sharded(&shards);
        validate_prometheus(&text).expect("valid sharded exposition");
        // family typed once...
        assert_eq!(text.matches("# TYPE mmdb_txn_committed counter").count(), 1);
        // ...with one labeled sample per shard
        for i in 0..4 {
            assert!(
                text.contains(&format!("mmdb_txn_committed{{shard=\"{i}\"}} {}", 10 + i)),
                "{text}"
            );
        }
        assert!(text.contains("mmdb_net_request_ns{shard=\"2\",quantile=\"0.5\"}"));
        // concatenating the per-shard docs instead must NOT validate
        let naive: String = shards.iter().map(|s| s.to_prometheus()).collect();
        assert!(validate_prometheus(&naive).is_err());
    }

    #[test]
    fn attribution_section_round_trips_and_is_omitted_when_empty() {
        let empty = MetricsSnapshot::capture(&Obs::enabled());
        assert!(
            !empty.to_json_pretty().contains("attribution"),
            "no request scopes -> no attribution key"
        );

        let obs = Obs::enabled();
        obs.set_slow_threshold_us(0);
        let scope = obs.request_scope("net.request", "net.request_ns", "batch", 0, 0);
        obs.phase("txn.exec", obs.timer());
        scope.finish();
        let snap = MetricsSnapshot::capture(&obs);
        let text = snap.to_json_pretty();
        assert!(text.contains("\"attribution\""));
        assert!(text.contains("\"txn.exec\""));
        assert!(text.contains("\"share\""));
        let back = MetricsSnapshot::from_json(&text).expect("parse back");
        assert_eq!(back, snap, "share is derived, everything else round-trips");
        // attribution total reconciles with the request histogram
        let row = &snap.attribution[0];
        assert_eq!(row.total_ns, snap.hist("net.request_ns").unwrap().sum);
    }

    #[test]
    fn put_counter_upserts_sorted() {
        let mut s = MetricsSnapshot::default();
        s.put_counter("b", 2);
        s.put_counter("a", 1);
        s.put_counter("b", 5);
        assert_eq!(s.counters, vec![("a".to_string(), 1), ("b".to_string(), 5)]);
    }
}
