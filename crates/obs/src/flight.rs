//! The always-on flight recorder: per-thread ring buffers of typed
//! phase events.
//!
//! Every enabled [`crate::Obs`] handle owns one recorder. Each thread
//! that records gets its *own* fixed-capacity ring behind its own
//! [`RankedMutex`] — uncontended on the hot path (the snapshotter is
//! the only other taker), so recording is one uncontended lock, no
//! allocation, no clock read beyond the caller's timer. Memory is
//! bounded: `threads × capacity × size_of::<FlightEvent>()`.
//!
//! Request scoping rides on a thread-local scope installed by
//! [`crate::Obs::request_scope`]: the request's trace id and root span
//! id are installed for the duration of its dispatch, and every phase
//! event recorded on that thread while the scope is active becomes a
//! child of the request's root span — *whichever* `Obs` handle recorded
//! it, so a per-shard engine's `log.force` lands in the router's
//! request tree. Threads working outside any request (group-commit
//! flushers, checkpointers) record with a zero trace id and attribute
//! to the `"system"` pseudo-opcode.

use crate::trace::SpanRecord;
use mmdb_sync::{leak_name, LockRank, RankedMutex};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-thread ring capacity (events retained per thread).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Attribution bucket for work done outside any request scope
/// (flusher forces, checkpoint passes, connection-level queueing).
pub const SYSTEM_OP: &str = "system";

/// One recorded phase event. Fixed-size and `Copy`: the hot path never
/// allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// This event's span id (process-unique, never reused).
    pub span_id: u64,
    /// The span this event is a child of (0 = root / unparented).
    pub parent_span: u64,
    /// The request's trace id (0 = not request-scoped).
    pub trace_id: u64,
    /// Static phase name, e.g. `engine.lock_wait`.
    pub name: &'static str,
    /// Opcode of the enclosing request (or [`SYSTEM_OP`]).
    pub op: &'static str,
    /// Start offset in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Free numeric detail (shard index, byte count, ...).
    pub detail: u64,
}

impl FlightEvent {
    /// Convert to the trace-ring span shape for rendering and dumps
    /// (the only allocating step, taken off the hot path).
    pub fn to_span(&self, seq: u64) -> SpanRecord {
        SpanRecord {
            seq,
            name: self.name,
            label: if self.detail == 0 {
                self.op.to_string()
            } else {
                format!("{} detail={}", self.op, self.detail)
            },
            start_ns: self.start_ns,
            dur_ns: self.dur_ns,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span: self.parent_span,
        }
    }
}

/// The request identity carried by a thread-local scope (see
/// `registry::SCOPE`): every phase event recorded while it is installed
/// becomes a child of `span_id` under `trace_id`, attributed to `op`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CurrentCtx {
    pub trace_id: u64,
    pub span_id: u64,
    pub op: &'static str,
}

thread_local! {
    /// This thread's rings, keyed by recorder id (a process can host
    /// several recorders — one per enabled `Obs` — in tests).
    static RINGS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// Fixed-capacity event storage: a preallocated vector with a wrapping
/// write cursor once full.
#[derive(Debug)]
struct RingBuf {
    buf: Vec<FlightEvent>,
    cap: usize,
    /// Oldest slot (and next overwrite target) once the ring is full.
    cursor: usize,
    recorded: u64,
}

impl RingBuf {
    fn push(&mut self, ev: FlightEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.cursor] = ev;
            self.cursor = (self.cursor + 1) % self.cap;
        }
        self.recorded += 1;
    }

    /// Events in chronological (recording) order.
    fn chronological(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.cursor..]);
        out.extend_from_slice(&self.buf[..self.cursor]);
        out
    }

    fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }
}

/// One thread's ring. The owning thread is the only pusher; snapshots
/// from other threads take the same (uncontended) lock briefly.
#[derive(Debug)]
pub(crate) struct ThreadRing {
    events: RankedMutex<RingBuf>,
}

impl ThreadRing {
    fn new(name: &'static str, cap: usize) -> ThreadRing {
        ThreadRing {
            events: RankedMutex::new(
                name,
                LockRank::OBS_FLIGHT,
                RingBuf {
                    buf: Vec::with_capacity(cap.min(DEFAULT_FLIGHT_CAPACITY)),
                    cap: cap.max(1),
                    cursor: 0,
                    recorded: 0,
                },
            ),
        }
    }

    fn push(&self, ev: FlightEvent) {
        self.events.lock().push(ev);
    }
}

/// Hands each recorder a process-unique id so thread-local ring caches
/// never alias across recorders (Arc addresses can be reused).
static RECORDER_SEQ: AtomicU64 = AtomicU64::new(1);

/// The per-`Obs` flight recorder: a registry of per-thread rings plus
/// the process-unique span-id allocator.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    id: u64,
    capacity: usize,
    /// All rings ever registered (threads are never unregistered; a
    /// ring is a few KiB and thread counts are bounded in this system).
    rings: RankedMutex<Vec<Arc<ThreadRing>>>,
    next_span: AtomicU64,
}

impl FlightRecorder {
    pub(crate) fn new(capacity: usize) -> FlightRecorder {
        let id = RECORDER_SEQ.fetch_add(1, Ordering::Relaxed);
        FlightRecorder {
            id,
            capacity,
            rings: RankedMutex::new(
                leak_name(format!("obs.flight_registry.{id}")),
                LockRank::OBS_FLIGHT,
                Vec::new(),
            ),
            next_span: AtomicU64::new(1),
        }
    }

    /// Allocate a fresh span id (lock-free).
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// The calling thread's ring for this recorder, creating and
    /// registering it on first use.
    fn ring(&self) -> Arc<ThreadRing> {
        RINGS.with(|rings| {
            let mut cached = rings.borrow_mut();
            if let Some((_, ring)) = cached.iter().find(|(id, _)| *id == self.id) {
                return ring.clone();
            }
            let seq = {
                // registration is rare (once per thread per recorder)
                let mut all = self.rings.lock();
                let ring = Arc::new(ThreadRing::new(
                    leak_name(format!("obs.flight.{}.{}", self.id, all.len())),
                    self.capacity,
                ));
                all.push(ring.clone());
                ring
            };
            cached.push((self.id, seq.clone()));
            seq
        })
    }

    /// Record one event into the calling thread's ring.
    pub(crate) fn record(&self, ev: FlightEvent) {
        self.ring().push(ev);
    }

    /// Events recorded by the calling thread whose parent (or self) is
    /// `span_id`, chronologically — the slow-request extraction path.
    pub(crate) fn thread_events_under(&self, span_id: u64) -> Vec<FlightEvent> {
        self.ring()
            .events
            .lock()
            .chronological()
            .into_iter()
            .filter(|e| e.span_id == span_id || e.parent_span == span_id)
            .collect()
    }

    /// Merge every thread's ring into one chronological view, plus
    /// `(recorded, dropped)` totals. Takes each ring lock briefly, one
    /// at a time.
    pub(crate) fn snapshot(&self) -> (Vec<FlightEvent>, u64, u64) {
        let rings: Vec<Arc<ThreadRing>> = self.rings.lock().clone();
        let mut events = Vec::new();
        let (mut recorded, mut dropped) = (0u64, 0u64);
        for ring in rings {
            let buf = ring.events.lock();
            recorded += buf.recorded;
            dropped += buf.dropped();
            events.extend(buf.chronological());
        }
        events.sort_by_key(|e| (e.start_ns, e.span_id));
        (events, recorded, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let mut rb = RingBuf {
            buf: Vec::new(),
            cap: 3,
            cursor: 0,
            recorded: 0,
        };
        for i in 1..=5u64 {
            rb.push(FlightEvent {
                span_id: i,
                parent_span: 0,
                trace_id: 0,
                name: "x",
                op: SYSTEM_OP,
                start_ns: i * 10,
                dur_ns: 1,
                detail: 0,
            });
        }
        assert_eq!(rb.recorded, 5);
        assert_eq!(rb.dropped(), 2);
        let chron: Vec<u64> = rb.chronological().iter().map(|e| e.span_id).collect();
        assert_eq!(chron, vec![3, 4, 5]);
    }

    #[test]
    fn recorder_merges_across_threads() {
        let rec = Arc::new(FlightRecorder::new(16));
        let ev = |span_id, start_ns| FlightEvent {
            span_id,
            parent_span: 0,
            trace_id: 7,
            name: "t",
            op: "put",
            start_ns,
            dur_ns: 5,
            detail: 0,
        };
        rec.record(ev(rec.next_span_id(), 30));
        let rec2 = rec.clone();
        std::thread::spawn(move || {
            rec2.record(ev(rec2.next_span_id(), 10));
        })
        .join()
        .expect("recorder thread");
        let (events, recorded, dropped) = rec.snapshot();
        assert_eq!(recorded, 2);
        assert_eq!(dropped, 0);
        let starts: Vec<u64> = events.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![10, 30], "merged view is chronological");
    }

    #[test]
    fn thread_events_under_filters_by_parent() {
        let rec = FlightRecorder::new(16);
        let root = rec.next_span_id();
        let other = rec.next_span_id();
        for (span_id, parent_span) in [(root, 0), (rec.next_span_id(), root), (other, 999)] {
            rec.record(FlightEvent {
                span_id,
                parent_span,
                trace_id: 1,
                name: "p",
                op: "get",
                start_ns: span_id,
                dur_ns: 1,
                detail: 0,
            });
        }
        let under = rec.thread_events_under(root);
        assert_eq!(under.len(), 2, "root itself plus its one child");
        assert!(under.iter().all(|e| e.span_id != other));
    }
}
