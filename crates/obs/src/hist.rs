//! Fixed-bucket log-linear histograms in the spirit of HdrHistogram.
//!
//! Values are unsigned integers (nanoseconds, words, counts — the unit is
//! the caller's business). The bucket layout is *log-linear*: each power
//! of two is split into [`SUB_BUCKETS`] equal-width linear sub-buckets, so
//! the worst-case relative quantile error is bounded by
//! `1 / SUB_BUCKETS` (6.25%) regardless of magnitude, while the whole
//! `u64` range fits in under a thousand buckets (&lt;8 KiB per histogram).
//! Recording is O(1) with no allocation; merging is element-wise.

/// Number of linear sub-buckets per power-of-two group (must be 2^k).
pub const SUB_BUCKETS: u64 = 16;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 4

/// Total bucket count covering all of `u64`.
///
/// Values below `SUB_BUCKETS` get one exact bucket each; every group of
/// values sharing a highest set bit `h >= SUB_BITS` gets `SUB_BUCKETS`
/// buckets of width `2^(h - SUB_BITS)`.
pub const N_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// Map a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // highest set bit, >= SUB_BITS
    let group = (h - SUB_BITS + 1) as usize;
    let sub = ((v >> (h - SUB_BITS)) - SUB_BUCKETS) as usize;
    group * SUB_BUCKETS as usize + sub
}

/// Lowest value mapping to bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        return i as u64;
    }
    let group = i / SUB_BUCKETS as usize;
    let sub = (i % SUB_BUCKETS as usize) as u64;
    let h = (group as u32) + SUB_BITS - 1;
    (1u64 << h) + (sub << (h - SUB_BITS))
}

/// Highest value mapping to bucket `i` (inclusive).
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= N_BUCKETS {
        return u64::MAX;
    }
    bucket_low(i + 1) - 1
}

/// A mergeable log-linear histogram with exact count/sum/min/max and
/// bounded-error quantiles.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation of `v`.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (element-wise; exact stats combine).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact, 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`0.0 <= q <= 1.0`). The returned value is `>=` the exact order
    /// statistic and overshoots it by at most a factor `1 + 1/SUB_BUCKETS`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target order statistic, 1-based ceil as in HdrHistogram.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the exact max.
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for [`Histogram::quantile`] at 0.50.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand for [`Histogram::quantile`] at 0.99.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Shorthand for [`Histogram::quantile`] at 0.999.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Condense into the exported summary form.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            mean: self.mean(),
            p50: self.p50(),
            p90: self.quantile(0.90),
            p99: self.p99(),
            p999: self.p999(),
        }
    }
}

/// The exported digest of a [`Histogram`]: exact count/sum/min/max plus
/// bounded-error quantiles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate (upper bucket bound, <= 6.25% high).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate — the coordinated-omission-sensitive
    /// tail the load driver's intended-send-time recording feeds.
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact_buckets() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_ordered() {
        let mut prev_high = None;
        for i in 0..N_BUCKETS {
            let lo = bucket_low(i);
            let hi = bucket_high(i);
            assert!(lo <= hi, "bucket {i}: low {lo} > high {hi}");
            if let Some(p) = prev_high {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            prev_high = if hi == u64::MAX { None } else { Some(hi) };
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes = [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            255,
            256,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "v={v} i={i}");
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in SUB_BUCKETS as usize..N_BUCKETS - 1 {
            let lo = bucket_low(i);
            let hi = bucket_high(i);
            let width = hi - lo + 1;
            assert!(
                (width as f64) <= lo as f64 / SUB_BUCKETS as f64 * 2.0,
                "bucket {i}: width {width} too wide for low {lo}"
            );
        }
    }

    #[test]
    fn record_and_basic_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [5u64, 5, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 277.5).abs() < 1e-9);
        // p50 falls in the exact bucket for 5.
        assert_eq!(h.p50(), 5);
    }

    #[test]
    fn quantile_never_exceeds_max_and_is_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 7);
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let e = h.quantile(q);
            assert!(e >= prev, "quantile not monotone at q={q}");
            assert!(e <= h.max());
            prev = e;
        }
        assert_eq!(h.quantile(1.0), 7000);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 11 + 7);
            all.record(v * 11 + 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record_n(42, 10);
        let before = a.summary();
        a.merge(&Histogram::new());
        assert_eq!(a.summary(), before);
    }
}
