//! [`TraceDumpDoc`]: the serialized span-tree dump.
//!
//! One document shape serves every consumer: the `Request::TraceDump`
//! wire opcode returns it as JSON, `mmdb-cli trace` renders it (local
//! and `--remote` traces go through the *same* formatter), and
//! dump-on-crash writes it to `<dir>/flightrec.json` for post-mortem.
//!
//! Trace, span and parent-span ids are serialized as 16-digit hex
//! *strings*: they are full 64-bit values (a traced client's parent
//! span id is drawn from the whole range), and the workspace's JSON
//! number model (like JavaScript's) is only exact to 2^53.

use crate::json::{self, Value};
use crate::registry::Obs;
use crate::trace::SpanRecord;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema tag carried by every dump document.
pub const TRACE_SCHEMA: &str = "mmdb-trace/v1";

/// One span in a dump (the owned-string form of [`SpanRecord`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DumpSpan {
    /// Phase name, e.g. `engine.lock_wait`.
    pub name: String,
    /// Label: the opcode, plus `detail=` when the phase carried one.
    pub label: String,
    /// Start offset in ns since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Trace id (0 = not request-scoped).
    pub trace_id: u64,
    /// Span id.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span: u64,
}

impl From<&SpanRecord> for DumpSpan {
    fn from(s: &SpanRecord) -> DumpSpan {
        DumpSpan {
            name: s.name.to_string(),
            label: s.label.clone(),
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            trace_id: s.trace_id,
            span_id: s.span_id,
            parent_span: s.parent_span,
        }
    }
}

/// One slow request: its identity plus its full span tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlowEntry {
    /// The request's trace id.
    pub trace_id: u64,
    /// Wire opcode (or local pseudo-opcode).
    pub op: String,
    /// Root-span start offset in ns since the epoch.
    pub start_ns: u64,
    /// End-to-end duration in ns.
    pub total_ns: u64,
    /// Root span plus every phase under it, chronologically.
    pub spans: Vec<DumpSpan>,
}

/// The span-tree dump: the slow-request log plus the flight recorder's
/// merged recent view.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceDumpDoc {
    /// Slow-request threshold in µs at capture time (0 = disabled).
    pub slow_threshold_us: u64,
    /// Flight events ever recorded / evicted across all thread rings.
    pub recorded: u64,
    /// See [`TraceDumpDoc::recorded`].
    pub dropped: u64,
    /// Slow requests ever logged (the `slow` list is bounded).
    pub slow_recorded: u64,
    /// The retained slow requests, oldest first.
    pub slow: Vec<SlowEntry>,
    /// The most recent flight-recorder spans, chronologically.
    pub recent: Vec<DumpSpan>,
}

impl TraceDumpDoc {
    /// Snapshot `obs` into a dump: up to `limit` slow requests and
    /// `limit` recent flight spans.
    pub fn capture(obs: &Obs, limit: usize) -> TraceDumpDoc {
        let (slow, slow_recorded) = obs.slow_requests(limit);
        let (recent, recorded, dropped) = obs.flight_spans(limit);
        TraceDumpDoc {
            slow_threshold_us: obs.slow_threshold_us(),
            recorded,
            dropped,
            slow_recorded,
            slow: slow
                .iter()
                .map(|t| SlowEntry {
                    trace_id: t.trace_id,
                    op: t.op.to_string(),
                    start_ns: t.start_ns,
                    total_ns: t.total_ns,
                    spans: t.spans.iter().map(DumpSpan::from).collect(),
                })
                .collect(),
            recent: recent.iter().map(DumpSpan::from).collect(),
        }
    }

    /// Build the JSON document model.
    pub fn to_json_value(&self) -> Value {
        Value::Obj(vec![
            ("schema".into(), Value::Str(TRACE_SCHEMA.into())),
            ("slow_threshold_us".into(), Value::u(self.slow_threshold_us)),
            ("recorded".into(), Value::u(self.recorded)),
            ("dropped".into(), Value::u(self.dropped)),
            ("slow_recorded".into(), Value::u(self.slow_recorded)),
            (
                "slow".into(),
                Value::Arr(
                    self.slow
                        .iter()
                        .map(|e| {
                            Value::Obj(vec![
                                ("trace_id".into(), Value::Str(hex_id(e.trace_id))),
                                ("op".into(), Value::Str(e.op.clone())),
                                ("start_ns".into(), Value::u(e.start_ns)),
                                ("total_ns".into(), Value::u(e.total_ns)),
                                (
                                    "spans".into(),
                                    Value::Arr(e.spans.iter().map(span_to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "recent".into(),
                Value::Arr(self.recent.iter().map(span_to_json).collect()),
            ),
        ])
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Parse a dump back from its JSON serialization, checking the
    /// schema tag.
    pub fn from_json(text: &str) -> Result<TraceDumpDoc, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        match v.get("schema").and_then(Value::as_str) {
            Some(TRACE_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported trace schema {other:?}")),
            None => return Err("missing schema tag".into()),
        }
        let slow = match v.get("slow") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|e| {
                    Ok(SlowEntry {
                        trace_id: read_hex_id(e, "trace_id")?,
                        op: e
                            .get("op")
                            .and_then(Value::as_str)
                            .ok_or("slow entry: op missing")?
                            .to_string(),
                        start_ns: read_u64(e, "start_ns")?,
                        total_ns: read_u64(e, "total_ns")?,
                        spans: read_spans(e, "spans")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            Some(_) => return Err("slow: not an array".into()),
            None => Vec::new(),
        };
        Ok(TraceDumpDoc {
            slow_threshold_us: read_u64(&v, "slow_threshold_us")?,
            recorded: read_u64(&v, "recorded")?,
            dropped: read_u64(&v, "dropped")?,
            slow_recorded: read_u64(&v, "slow_recorded")?,
            slow,
            recent: read_spans(&v, "recent")?,
        })
    }

    /// Render the dump for humans: the slow-request log first (each
    /// request as an indented span tree), then the recent flight view.
    /// This is the one formatter both local and remote traces share.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.slow_threshold_us > 0 {
            let _ = writeln!(
                out,
                "slow requests (threshold {} us): {} logged, {} shown",
                self.slow_threshold_us,
                self.slow_recorded,
                self.slow.len()
            );
            for e in &self.slow {
                let _ = writeln!(
                    out,
                    "trace {} op={} total {} ns",
                    hex_id(e.trace_id),
                    e.op,
                    e.total_ns
                );
                out.push_str(&render_tree(&e.spans));
            }
        }
        let _ = writeln!(
            out,
            "recent spans ({} recorded, {} evicted):",
            self.recorded, self.dropped
        );
        out.push_str(&render_tree(&self.recent));
        out
    }
}

/// Render spans as an indented tree: children nest under their parent,
/// spans whose parent is absent (or 0) print at the margin, everything
/// stays in chronological order within a level.
pub fn render_tree(spans: &[DumpSpan]) -> String {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        let parent = (s.parent_span != 0)
            .then(|| {
                spans
                    .iter()
                    .position(|p| p.span_id == s.parent_span && p.span_id != s.span_id)
            })
            .flatten();
        match parent {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let mut out = String::new();
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        let name = format!("{:indent$}{}", "", s.name, indent = depth * 2);
        let _ = writeln!(
            out,
            "[{:>12.6}s] {:>11} ns  {:<26} {}",
            s.start_ns as f64 / 1e9,
            s.dur_ns,
            name,
            s.label
        );
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

/// Capture and write the flight recorder to `<dir>/flightrec.json` —
/// the dump-on-crash path (fsck failure, audit violation). Returns the
/// path written, or `None` for a disabled handle.
pub fn write_flightrec(obs: &Obs, dir: &Path) -> std::io::Result<Option<PathBuf>> {
    if !obs.is_enabled() {
        return Ok(None);
    }
    let doc = TraceDumpDoc::capture(obs, crate::trace::DEFAULT_SPAN_CAPACITY);
    let path = dir.join("flightrec.json");
    std::fs::write(&path, doc.to_json())?;
    Ok(Some(path))
}

fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

fn span_to_json(s: &DumpSpan) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::Str(s.name.clone())),
        ("label".into(), Value::Str(s.label.clone())),
        ("start_ns".into(), Value::u(s.start_ns)),
        ("dur_ns".into(), Value::u(s.dur_ns)),
        ("trace_id".into(), Value::Str(hex_id(s.trace_id))),
        ("span_id".into(), Value::Str(hex_id(s.span_id))),
        ("parent_span".into(), Value::Str(hex_id(s.parent_span))),
    ])
}

fn span_from_json(v: &Value) -> Result<DumpSpan, String> {
    Ok(DumpSpan {
        name: v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span: name missing")?
            .to_string(),
        label: v
            .get("label")
            .and_then(Value::as_str)
            .ok_or("span: label missing")?
            .to_string(),
        start_ns: read_u64(v, "start_ns")?,
        dur_ns: read_u64(v, "dur_ns")?,
        trace_id: read_hex_id(v, "trace_id")?,
        span_id: read_hex_id(v, "span_id")?,
        parent_span: read_hex_id(v, "parent_span")?,
    })
}

fn read_spans(v: &Value, key: &str) -> Result<Vec<DumpSpan>, String> {
    match v.get(key) {
        Some(Value::Arr(items)) => items.iter().map(span_from_json).collect(),
        Some(_) => Err(format!("{key}: not an array")),
        None => Ok(Vec::new()),
    }
}

fn read_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{key}: missing or not a u64"))
}

fn read_hex_id(v: &Value, key: &str) -> Result<u64, String> {
    let s = v
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{key}: missing or not a hex string"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("{key}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> TraceDumpDoc {
        let span = |name: &str, span_id, parent_span, start_ns| DumpSpan {
            name: name.to_string(),
            label: "batch".to_string(),
            start_ns,
            dur_ns: 10,
            // deliberately above 2^53: must survive JSON round-trip
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            span_id,
            parent_span,
        };
        TraceDumpDoc {
            slow_threshold_us: 1_000,
            recorded: 3,
            dropped: 0,
            slow_recorded: 1,
            slow: vec![SlowEntry {
                trace_id: 0xDEAD_BEEF_CAFE_F00D,
                op: "batch".to_string(),
                start_ns: 100,
                total_ns: 30,
                spans: vec![
                    span("net.request", 1, 0, 100),
                    span("engine.lock_wait", 2, 1, 105),
                    span("log.force", 3, 1, 110),
                ],
            }],
            recent: vec![span("net.request", 1, 0, 100)],
        }
    }

    #[test]
    fn json_round_trip_preserves_64_bit_trace_ids() {
        let doc = sample_doc();
        let text = doc.to_json();
        assert!(
            text.contains("\"deadbeefcafef00d\""),
            "trace ids serialize as hex strings: {text}"
        );
        let back = TraceDumpDoc::from_json(&text).expect("parse back");
        assert_eq!(back, doc);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(TraceDumpDoc::from_json("{\"schema\":\"mmdb-trace/v9\"}").is_err());
        assert!(TraceDumpDoc::from_json("{}").is_err());
    }

    #[test]
    fn render_nests_children_under_their_parent() {
        let doc = sample_doc();
        let text = doc.render();
        let lock_line = text
            .lines()
            .find(|l| l.contains("engine.lock_wait"))
            .expect("phase line");
        assert!(
            lock_line.contains("  engine.lock_wait"),
            "child is indented: {lock_line}"
        );
        assert!(text.contains("slow requests (threshold 1000 us)"));
        assert!(text.contains("trace deadbeefcafef00d op=batch"));
    }

    #[test]
    fn render_tree_orphans_print_at_the_margin() {
        let spans = vec![DumpSpan {
            name: "x".into(),
            label: String::new(),
            start_ns: 5,
            dur_ns: 1,
            trace_id: 0,
            span_id: 9,
            parent_span: 1234, // parent not in the set
        }];
        let text = render_tree(&spans);
        assert!(text.contains(" x"), "{text}");
        assert!(!text.contains("   x "), "no stray indent: {text}");
    }

    #[test]
    fn capture_and_write_flightrec_round_trip() {
        let obs = Obs::enabled();
        let scope = obs.request_scope("net.request", "net.request_ns", "put", 0, 0);
        obs.phase("txn.exec", obs.timer());
        scope.finish();
        let doc = TraceDumpDoc::capture(&obs, 100);
        assert_eq!(doc.recorded, 2);
        assert_eq!(doc.recent.len(), 2);

        let dir = std::env::temp_dir().join(format!("mmdb-flightrec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = write_flightrec(&obs, &dir)
            .expect("write")
            .expect("enabled");
        let text = std::fs::read_to_string(&path).expect("read back");
        let back = TraceDumpDoc::from_json(&text).expect("parse");
        assert_eq!(back, doc);
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(
            write_flightrec(&Obs::disabled(), &dir).expect("disabled ok"),
            None
        );
    }
}
