//! **mmdb-obs** — dependency-free telemetry for the mmdb workspace.
//!
//! Three pillars, all built without registry crates (the workspace vendors
//! only no-op shims):
//!
//! 1. **Spans** ([`trace`]): named wall-clock intervals in a bounded ring
//!    buffer, emitted by the engine, checkpointer, log manager and
//!    recovery so a `trace` dump explains *where* time goes inside a
//!    checkpoint pass or a restart.
//! 2. **Metrics** ([`Obs`] / [`Registry`]): named counters, gauges and
//!    log-linear [`Histogram`]s (HdrHistogram-style fixed buckets,
//!    ≤6.25% quantile error).
//! 3. **Export** ([`MetricsSnapshot`]): one snapshot type serializable to
//!    pretty JSON and Prometheus text exposition, carrying the paper's
//!    `OverheadReport` numbers verbatim so telemetry and the reproduction
//!    tables reconcile exactly.
//!
//! The [`Obs`] handle follows the workspace's audit-handle idiom: a
//! disabled handle is a `None` and every call on it is a no-op — no lock,
//! no clock read, no allocation, label closures never invoked — so
//! telemetry is zero-cost when `MmdbConfig.telemetry` is off.

mod dump;
pub mod flight;
pub mod hist;
pub mod json;
mod registry;
mod snapshot;
pub mod trace;

pub use dump::{render_tree, write_flightrec, DumpSpan, SlowEntry, TraceDumpDoc, TRACE_SCHEMA};
pub use flight::SYSTEM_OP;
pub use hist::{HistSummary, Histogram};
pub use registry::{
    current_trace_id, AttributionEntry, Obs, Registry, RequestScope, RequestTrace, Timer,
    DEFAULT_SLOW_THRESHOLD_US,
};
pub use snapshot::{
    prom_name, to_prometheus_sharded, validate_prometheus, MetricsSnapshot, PaperOverhead,
};
pub use trace::SpanRecord;

/// Render spans as a human-readable trace, one line each, plus a footer
/// noting ring evictions when any occurred.
pub fn render_spans(spans: &[SpanRecord], dropped: u64) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.render());
        out.push('\n');
    }
    if dropped > 0 {
        out.push_str(&format!("({dropped} older spans evicted from ring)\n"));
    }
    out
}
