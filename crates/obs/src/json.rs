//! A minimal, dependency-free JSON document model with a pretty serializer
//! and a strict parser.
//!
//! The vendored `serde` shim in this workspace is a no-op marker-trait
//! stand-in, so export formats are hand-rolled here. The parser exists so
//! tests can round-trip [`crate::MetricsSnapshot`] exports and so the bench
//! trajectory files can be machine-checked without a registry dependency.
//! Numbers are modeled as `f64` (every counter this repo emits fits in the
//! 2^53 exact-integer range).

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, order-preserving.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: wrap an unsigned integer.
    pub fn u(v: u64) -> Value {
        Value::Num(v as f64)
    }

    /// Convenience: wrap a float, mapping non-finite values to `null`.
    pub fn f(v: f64) -> Value {
        if v.is_finite() {
            Value::Num(v)
        } else {
            Value::Null
        }
    }

    /// Convenience: wrap a string slice.
    pub fn s(v: &str) -> Value {
        Value::Str(v.to_string())
    }

    /// Look up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (must be an exact non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest-round-trip formatting is valid JSON for finite values.
    let _ = write!(out, "{n}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Strict: exactly one value, nothing trailing.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs are not emitted by our writer;
                            // accept lone BMP escapes only.
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    match s.chars().next() {
                        Some(c) if (c as u32) >= 0x20 => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        _ => return Err(self.err("unescaped control character")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected hex digit")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(parse("42"), Ok(Value::u(42)));
        assert_eq!(parse("-1.5e3"), Ok(Value::Num(-1500.0)));
        assert_eq!(parse("\"a\\nb\""), Ok(Value::s("a\nb")));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("42 13").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::s("mmdb")),
            ("n".into(), Value::u(12345678901234)),
            ("f".into(), Value::Num(0.125)),
            ("neg".into(), Value::Num(-7.25)),
            ("flag".into(), Value::Bool(false)),
            ("nil".into(), Value::Null),
            (
                "arr".into(),
                Value::Arr(vec![Value::u(1), Value::s("two \"quoted\"\n"), Value::Null]),
            ),
            (
                "obj".into(),
                Value::Obj(vec![("k".into(), Value::Arr(vec![]))]),
            ),
        ]);
        for text in [doc.to_pretty(), doc.to_compact()] {
            let back = parse(&text).expect("round-trip parse");
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn shortest_float_repr_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 12345.6789, 2f64.powi(53) - 1.0] {
            let text = Value::Num(v).to_compact();
            assert_eq!(parse(&text), Ok(Value::Num(v)));
        }
    }
}
