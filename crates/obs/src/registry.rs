//! The metrics registry and the cloneable [`Obs`] handle.
//!
//! [`Obs`] follows the same idiom as the audit handle: a disabled handle
//! is an `Option::None` and every operation on it is a no-op that never
//! takes a lock, allocates, or reads the clock — label closures are not
//! even invoked. An enabled handle shares one registry + trace buffer
//! across every component it is cloned into (engine, checkpointer, log
//! manager, recovery, simulator), so a snapshot sees the whole system.

use crate::flight::{CurrentCtx, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY, SYSTEM_OP};
use crate::hist::Histogram;
use crate::trace::{SpanIds, SpanRecord, TraceBuffer, DEFAULT_SPAN_CAPACITY};
use mmdb_sync::{ContentionSink, LockRank, RankedMutex};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default slow-request threshold: a request slower than this gets its
/// span tree copied into the slow-request log.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 1_000;

/// Default slow-request log capacity (entries retained).
pub const DEFAULT_SLOW_CAPACITY: usize = 64;

/// Sorted `(name, counter)`, `(name, gauge)` and `(name, histogram
/// summary)` triple produced by [`Obs::dump`].
pub type RegistryDump = (
    Vec<(String, u64)>,
    Vec<(String, u64)>,
    Vec<(String, crate::HistSummary)>,
);

/// Named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

/// One request's span tree, extracted into the slow-request log when
/// its end-to-end latency crossed the threshold.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// The request's trace id (client-supplied or locally generated).
    pub trace_id: u64,
    /// Wire opcode (or local pseudo-opcode) of the request.
    pub op: &'static str,
    /// Root-span start offset in ns since the handle's epoch.
    pub start_ns: u64,
    /// End-to-end duration in ns.
    pub total_ns: u64,
    /// The root span plus every phase recorded under it on the
    /// dispatching thread, chronologically.
    pub spans: Vec<SpanRecord>,
}

/// Bounded slow-request log (oldest evicted first).
#[derive(Debug)]
struct SlowLog {
    entries: VecDeque<RequestTrace>,
    capacity: usize,
    recorded: u64,
}

impl SlowLog {
    fn push(&mut self, t: RequestTrace) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(t);
        self.recorded += 1;
    }
}

/// Per-phase aggregate inside one opcode's attribution row.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseAgg {
    count: u64,
    total_ns: u64,
}

/// Per-opcode attribution row.
#[derive(Debug, Default)]
struct OpAttr {
    requests: u64,
    total_ns: u64,
    phases: BTreeMap<&'static str, PhaseAgg>,
}

/// The latency-attribution table: per opcode, end-to-end request time
/// plus per-phase time recorded under that opcode's request scopes.
/// Phase spans may nest (`txn.commit` contains `log.force`), so phase
/// totals are *not* a partition of the request total.
#[derive(Debug, Default)]
struct AttrTable {
    ops: BTreeMap<&'static str, OpAttr>,
}

impl AttrTable {
    fn add_phase(&mut self, op: &'static str, phase: &'static str, dur_ns: u64) {
        let agg = self
            .ops
            .entry(op)
            .or_default()
            .phases
            .entry(phase)
            .or_default();
        agg.count += 1;
        agg.total_ns += dur_ns;
    }
}

/// One opcode's row of the exported attribution report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttributionEntry {
    /// Wire opcode, or `"system"` for work outside any request.
    pub op: String,
    /// Request scopes finished under this opcode.
    pub requests: u64,
    /// Summed end-to-end request time in ns (matches the corresponding
    /// histogram's `sum` exactly — both record the same measurement).
    pub total_ns: u64,
    /// Per-phase `(name, count, total_ns)`, sorted by name.
    pub phases: Vec<(String, u64, u64)>,
}

struct ObsInner {
    epoch: Instant,
    // The registry locks sit at the very bottom of the lock hierarchy
    // (DESIGN.md §6.6): every subsystem records telemetry while holding
    // its own locks, so nothing may be acquired below these. They carry
    // no contention sink of their own — the sink *is* this registry, and
    // instrumenting it with itself would recurse.
    metrics: RankedMutex<Registry>,
    trace: RankedMutex<TraceBuffer>,
    flight: FlightRecorder,
    slow: RankedMutex<SlowLog>,
    attr: RankedMutex<AttrTable>,
    /// Slow-request threshold in ns (0 disables the slow log).
    slow_threshold_ns: AtomicU64,
}

/// The thread-local request scope. It carries the owning handle's inner
/// alongside the request identity so phase events recorded through *any*
/// enabled handle (a per-shard engine's, the log manager's) route to the
/// scope owner's recorder and attribution table, on the owner's epoch —
/// one coherent timeline per request no matter which subsystem recorded.
struct ScopeState {
    ctx: CurrentCtx,
    inner: Arc<ObsInner>,
}

thread_local! {
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// The trace id of the request scope active on the calling thread
/// (0 = none) — lets subsystems hand work to another thread (a flusher
/// doorbell) tagged with the requester's trace.
pub fn current_trace_id() -> u64 {
    SCOPE.with(|s| s.borrow().as_ref().map_or(0, |sc| sc.ctx.trace_id))
}

/// Record one phase event: into the active scope's recorder as a child
/// of the request's root span when one is installed on this thread,
/// else into `inner`'s own recorder as an unparented system event.
fn record_flight(
    inner: &Arc<ObsInner>,
    name: &'static str,
    started: Instant,
    dur_ns: u64,
    detail: u64,
) {
    SCOPE.with(|s| {
        let borrow = s.borrow();
        let (target, ctx) = match borrow.as_ref() {
            Some(scope) => (&scope.inner, Some(scope.ctx)),
            None => (inner, None),
        };
        let ev = FlightEvent {
            span_id: target.flight.next_span_id(),
            parent_span: ctx.map_or(0, |c| c.span_id),
            trace_id: ctx.map_or(0, |c| c.trace_id),
            name,
            op: ctx.map_or(SYSTEM_OP, |c| c.op),
            start_ns: rel_ns(started, target.epoch),
            dur_ns,
            detail,
        };
        target.flight.record(ev);
        target.attr.lock().add_phase(ev.op, name, dur_ns);
    });
}

/// Deterministic local trace id for requests that arrived without one
/// (splitmix64 of the root span id, never zero).
fn local_trace_id(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

impl std::fmt::Debug for ObsInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsInner").finish_non_exhaustive()
    }
}

/// A started wall-clock measurement. Disabled handles hand out inert
/// timers, so the clock is only read when telemetry is on.
#[derive(Debug, Default)]
pub struct Timer(Option<Instant>);

/// Cloneable telemetry handle; see module docs.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A live handle with the default span-ring capacity.
    pub fn enabled() -> Obs {
        Obs::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A live handle retaining at most `span_capacity` finished spans.
    pub fn with_capacity(span_capacity: usize) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                epoch: Instant::now(),
                metrics: RankedMutex::new(
                    "obs.metrics",
                    LockRank::OBS_METRICS,
                    Registry::default(),
                ),
                trace: RankedMutex::new(
                    "obs.trace",
                    LockRank::OBS_TRACE,
                    TraceBuffer::new(span_capacity),
                ),
                flight: FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY),
                slow: RankedMutex::new(
                    "obs.slow",
                    LockRank::OBS_SLOW,
                    SlowLog {
                        entries: VecDeque::new(),
                        capacity: DEFAULT_SLOW_CAPACITY,
                        recorded: 0,
                    },
                ),
                attr: RankedMutex::new("obs.attr", LockRank::OBS_ATTR, AttrTable::default()),
                slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US * 1_000),
            })),
        }
    }

    /// The no-op handle.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a wall-clock measurement (inert when disabled).
    pub fn timer(&self) -> Timer {
        Timer(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Add `delta` to the counter `name`.
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut m = inner.metrics.lock();
            *m.counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut m = inner.metrics.lock();
            m.gauges.insert(name, value);
        }
    }

    /// Record `value` into the histogram `name`.
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut m = inner.metrics.lock();
            m.hists.entry(name).or_default().record(value);
        }
    }

    /// Record a duration in microseconds into the histogram `name` —
    /// for intervals measured by the caller rather than a [`Timer`].
    pub fn observe_duration_us(&self, name: &'static str, d: std::time::Duration) {
        self.observe(name, u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Record the elapsed time of `timer` (in ns) into the histogram
    /// `hist` without emitting a span.
    pub fn observe_timer(&self, hist: &'static str, timer: Timer) {
        if let (Some(inner), Some(started)) = (&self.inner, timer.0) {
            let ns = elapsed_ns(started);
            let mut m = inner.metrics.lock();
            m.hists.entry(hist).or_default().record(ns);
        }
    }

    /// Finish a span started at `timer`: push a trace record named `span`
    /// (labelled by `label`, which is only invoked when enabled) and
    /// record the duration into the histogram `hist`.
    pub fn span_end(
        &self,
        span: &'static str,
        hist: &'static str,
        timer: Timer,
        label: impl FnOnce() -> String,
    ) {
        if let (Some(inner), Some(started)) = (&self.inner, timer.0) {
            let dur_ns = elapsed_ns(started);
            let start_ns = rel_ns(started, inner.epoch);
            inner.trace.lock().push(span, label(), start_ns, dur_ns);
            {
                let mut m = inner.metrics.lock();
                m.hists.entry(hist).or_default().record(dur_ns);
            }
            // Every span is also a flight-recorder phase, routed to the
            // active request scope if one is installed on this thread:
            // an inline `log.force` inside commit becomes a child of
            // the request that paid for it.
            record_flight(inner, span, started, dur_ns, 0);
        }
    }

    /// Record a typed phase event into the flight recorder (routed to
    /// the active request scope, if any) without touching the trace
    /// ring or any histogram.
    pub fn phase(&self, name: &'static str, timer: Timer) {
        self.phase_detail(name, timer, 0);
    }

    /// Like [`Obs::phase`], carrying a free numeric detail (shard
    /// index, byte count, ...).
    pub fn phase_detail(&self, name: &'static str, timer: Timer, detail: u64) {
        if let (Some(inner), Some(started)) = (&self.inner, timer.0) {
            record_flight(inner, name, started, elapsed_ns(started), detail);
        }
    }

    /// Like [`Obs::phase_detail`], also recording the duration into the
    /// histogram `hist`.
    pub fn phase_hist(&self, name: &'static str, hist: &'static str, timer: Timer, detail: u64) {
        if let (Some(inner), Some(started)) = (&self.inner, timer.0) {
            let dur_ns = elapsed_ns(started);
            record_flight(inner, name, started, dur_ns, detail);
            let mut m = inner.metrics.lock();
            m.hists.entry(hist).or_default().record(dur_ns);
        }
    }

    /// Record a phase that started at `started` (an interval measured
    /// by the caller rather than a [`Timer`] — the accept-queue delay).
    pub fn phase_from(&self, name: &'static str, started: Instant, detail: u64) {
        if let Some(inner) = &self.inner {
            record_flight(inner, name, started, elapsed_ns(started), detail);
        }
    }

    /// Record a phase on behalf of a request running on *another*
    /// thread: the event lands in this handle's own recorder as a
    /// system event tagged with `trace_id` (a flusher forcing the log
    /// for the requester that rang its doorbell).
    pub fn phase_for_trace(&self, name: &'static str, timer: Timer, detail: u64, trace_id: u64) {
        if let (Some(inner), Some(started)) = (&self.inner, timer.0) {
            let dur_ns = elapsed_ns(started);
            inner.flight.record(FlightEvent {
                span_id: inner.flight.next_span_id(),
                parent_span: 0,
                trace_id,
                name,
                op: SYSTEM_OP,
                start_ns: rel_ns(started, inner.epoch),
                dur_ns,
                detail,
            });
            inner.attr.lock().add_phase(SYSTEM_OP, name, dur_ns);
        }
    }

    /// Open a request scope: allocates the root span, installs it as
    /// this thread's active scope (routing every subsequent phase on
    /// this thread into the request's tree), and on [`RequestScope::finish`]
    /// (or drop) records the root span into the flight recorder, the
    /// trace ring, the histogram `hist` and the attribution table — all
    /// from the *same* duration measurement, so attribution totals and
    /// the end-to-end histogram reconcile exactly. A request slower
    /// than the slow threshold gets its span tree copied into the
    /// slow-request log. `trace_id` 0 (an untraced client) generates a
    /// local id so the tree is still linked.
    pub fn request_scope(
        &self,
        span: &'static str,
        hist: &'static str,
        op: &'static str,
        trace_id: u64,
        parent_span: u64,
    ) -> RequestScope {
        let Some(inner) = &self.inner else {
            return RequestScope { active: None };
        };
        let root_span = inner.flight.next_span_id();
        let trace_id = if trace_id == 0 {
            local_trace_id(root_span)
        } else {
            trace_id
        };
        let prev = SCOPE.with(|s| {
            s.borrow_mut().replace(ScopeState {
                ctx: CurrentCtx {
                    trace_id,
                    span_id: root_span,
                    op,
                },
                inner: inner.clone(),
            })
        });
        RequestScope {
            active: Some(ActiveScope {
                inner: inner.clone(),
                span,
                hist,
                op,
                trace_id,
                parent_span,
                root_span,
                started: Instant::now(),
                prev,
            }),
        }
    }

    /// Set the slow-request threshold (0 disables the slow log).
    pub fn set_slow_threshold_us(&self, us: u64) {
        if let Some(inner) = &self.inner {
            inner
                .slow_threshold_ns
                .store(us.saturating_mul(1_000), Ordering::Relaxed);
        }
    }

    /// The current slow-request threshold in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.slow_threshold_ns.load(Ordering::Relaxed) / 1_000,
            None => 0,
        }
    }

    /// The most recent `limit` slow requests, oldest first, plus the
    /// total ever recorded.
    pub fn slow_requests(&self, limit: usize) -> (Vec<RequestTrace>, u64) {
        match &self.inner {
            Some(inner) => {
                let log = inner.slow.lock();
                let skip = log.entries.len().saturating_sub(limit);
                (
                    log.entries.iter().skip(skip).cloned().collect(),
                    log.recorded,
                )
            }
            None => (Vec::new(), 0),
        }
    }

    /// Merge every thread's flight-recorder ring into one chronological
    /// span view (most recent `limit`), plus `(recorded, dropped)`.
    pub fn flight_spans(&self, limit: usize) -> (Vec<SpanRecord>, u64, u64) {
        match &self.inner {
            Some(inner) => {
                let (events, recorded, dropped) = inner.flight.snapshot();
                let skip = events.len().saturating_sub(limit);
                let spans = events[skip..]
                    .iter()
                    .enumerate()
                    .map(|(i, e)| e.to_span(i as u64 + 1))
                    .collect();
                (spans, recorded, dropped)
            }
            None => (Vec::new(), 0, 0),
        }
    }

    /// The latency-attribution report: one row per opcode, sorted by
    /// opcode, phases sorted by name.
    pub fn attribution(&self) -> Vec<AttributionEntry> {
        match &self.inner {
            Some(inner) => {
                let t = inner.attr.lock();
                t.ops
                    .iter()
                    .map(|(op, row)| AttributionEntry {
                        op: op.to_string(),
                        requests: row.requests,
                        total_ns: row.total_ns,
                        phases: row
                            .phases
                            .iter()
                            .map(|(name, agg)| (name.to_string(), agg.count, agg.total_ns))
                            .collect(),
                    })
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// The most recent `limit` finished spans, oldest first.
    pub fn spans(&self, limit: usize) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.trace.lock().recent(limit),
            None => Vec::new(),
        }
    }

    /// Total spans recorded and spans evicted from the ring.
    pub fn span_stats(&self) -> (u64, u64) {
        match &self.inner {
            Some(inner) => {
                let t = inner.trace.lock();
                (t.recorded(), t.dropped())
            }
            None => (0, 0),
        }
    }

    /// Run `f` against the registry (no-op when disabled).
    pub fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&inner.metrics.lock()))
    }

    /// Dump the registry contents for snapshotting: sorted counters,
    /// gauges and histogram summaries.
    pub fn dump(&self) -> RegistryDump {
        match &self.inner {
            Some(inner) => {
                let m = inner.metrics.lock();
                (
                    m.counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                    m.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                    m.hists
                        .iter()
                        .map(|(k, h)| (k.to_string(), h.summary()))
                        .collect(),
                )
            }
            None => (Vec::new(), Vec::new(), Vec::new()),
        }
    }
}

struct ActiveScope {
    inner: Arc<ObsInner>,
    span: &'static str,
    hist: &'static str,
    op: &'static str,
    trace_id: u64,
    parent_span: u64,
    root_span: u64,
    started: Instant,
    prev: Option<ScopeState>,
}

/// RAII guard for one request's scope — see [`Obs::request_scope`].
/// Inert (a no-op on finish/drop) when the handle was disabled.
#[must_use = "the request scope records on finish/drop"]
pub struct RequestScope {
    active: Option<ActiveScope>,
}

impl RequestScope {
    /// The request's trace id (0 when the handle was disabled).
    pub fn trace_id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.trace_id)
    }

    /// Finish the scope now (equivalent to dropping it).
    pub fn finish(self) {}

    fn end(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_ns = elapsed_ns(a.started);
        // Restore the previous scope first: the bookkeeping below must
        // not attribute to the request that just ended.
        SCOPE.with(|s| *s.borrow_mut() = a.prev);
        let start_ns = rel_ns(a.started, a.inner.epoch);
        a.inner.flight.record(FlightEvent {
            span_id: a.root_span,
            parent_span: a.parent_span,
            trace_id: a.trace_id,
            name: a.span,
            op: a.op,
            start_ns,
            dur_ns,
            detail: 0,
        });
        a.inner.trace.lock().push_traced(
            a.span,
            a.op.to_string(),
            start_ns,
            dur_ns,
            SpanIds {
                trace_id: a.trace_id,
                span_id: a.root_span,
                parent_span: a.parent_span,
            },
        );
        {
            let mut m = a.inner.metrics.lock();
            m.hists.entry(a.hist).or_default().record(dur_ns);
        }
        {
            let mut t = a.inner.attr.lock();
            let row = t.ops.entry(a.op).or_default();
            row.requests += 1;
            row.total_ns += dur_ns;
        }
        let threshold = a.inner.slow_threshold_ns.load(Ordering::Relaxed);
        if threshold > 0 && dur_ns >= threshold {
            // The dispatching thread recorded every phase of this
            // request into its own ring, so the extraction never
            // crosses threads.
            let events = a.inner.flight.thread_events_under(a.root_span);
            let spans = events
                .iter()
                .enumerate()
                .map(|(i, e)| e.to_span(i as u64 + 1))
                .collect();
            a.inner.slow.lock().push(RequestTrace {
                trace_id: a.trace_id,
                op: a.op,
                start_ns,
                total_ns: dur_ns,
                spans,
            });
        }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        self.end();
    }
}

impl Registry {
    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if any value was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }
}

/// The registry doubles as the [`ContentionSink`] for every
/// [`RankedMutex`] in the system: a contended acquisition becomes a
/// `sync.<name>.contended` counter bump and hold intervals land in the
/// `sync.<name>.held_us` histogram. Sinks are invoked only *after* the
/// instrumented guard is released, so recording here (rank
/// `OBS_METRICS`, the hierarchy floor) can never invert the order.
impl ContentionSink for Obs {
    fn contended(&self, metric: &'static str) {
        self.counter(metric, 1);
    }

    fn held_us(&self, metric: &'static str, us: u64) {
        self.observe(metric, us);
    }
}

impl Obs {
    /// This handle as a contention sink for `RankedMutex::set_sink`, or
    /// `None` when disabled (leaving instrumented locks on their
    /// zero-overhead fast path).
    pub fn contention_sink(&self) -> Option<Arc<dyn ContentionSink>> {
        self.inner
            .as_ref()
            .map(|_| Arc::new(self.clone()) as Arc<dyn ContentionSink>)
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    started.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Offset of `t` from `epoch` in ns (0 when `t` predates the epoch).
fn rel_ns(t: Instant, epoch: Instant) -> u64 {
    t.saturating_duration_since(epoch)
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let mut called = false;
        obs.counter("c", 1);
        obs.observe("h", 42);
        obs.span_end("s", "s_ns", obs.timer(), || {
            called = true;
            String::new()
        });
        assert!(!called, "label closure must not run when disabled");
        assert!(obs.spans(10).is_empty());
        assert_eq!(obs.with_registry(|r| r.counter_value("c")), None);
    }

    #[test]
    fn enabled_handle_shares_state_across_clones() {
        let a = Obs::enabled();
        let b = a.clone();
        a.counter("txn.committed", 2);
        b.counter("txn.committed", 3);
        b.gauge("seg.total", 32);
        b.observe("lat", 100);
        assert_eq!(
            a.with_registry(|r| r.counter_value("txn.committed")),
            Some(5)
        );
        assert_eq!(
            a.with_registry(|r| r.gauge_value("seg.total")),
            Some(Some(32))
        );
        assert_eq!(
            a.with_registry(|r| r.hist("lat").map(|h| h.count())),
            Some(Some(1))
        );
    }

    #[test]
    fn span_end_records_trace_and_histogram() {
        let obs = Obs::enabled();
        let t = obs.timer();
        obs.span_end("ckpt.pass", "ckpt.pass_ns", t, || "FUZZY".into());
        let spans = obs.spans(10);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "ckpt.pass");
        assert_eq!(spans[0].label, "FUZZY");
        assert_eq!(
            obs.with_registry(|r| r.hist("ckpt.pass_ns").map(|h| h.count())),
            Some(Some(1))
        );
        assert_eq!(obs.span_stats(), (1, 0));
    }

    #[test]
    fn stale_default_timer_is_ignored() {
        let obs = Obs::enabled();
        obs.span_end("x", "x_ns", Timer::default(), || "ignored".into());
        assert!(obs.spans(10).is_empty());
        obs.phase("p", Timer::default());
        assert_eq!(obs.flight_spans(10).1, 0);
    }

    #[test]
    fn request_scope_builds_a_span_tree_and_feeds_the_slow_log() {
        let obs = Obs::enabled();
        let scope = obs.request_scope("net.request", "net.request_ns", "batch", 0xABCD, 7);
        assert_eq!(scope.trace_id(), 0xABCD);
        let t = obs.timer();
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.phase_detail("engine.lock_wait", t, 3);
        scope.finish();

        let (spans, recorded, dropped) = obs.flight_spans(16);
        assert_eq!((recorded, dropped), (2, 0));
        let root = spans
            .iter()
            .find(|s| s.name == "net.request")
            .expect("root");
        let phase = spans
            .iter()
            .find(|s| s.name == "engine.lock_wait")
            .expect("phase");
        assert_eq!(root.trace_id, 0xABCD);
        assert_eq!(root.parent_span, 7);
        assert_eq!(phase.trace_id, 0xABCD);
        assert_eq!(
            phase.parent_span, root.span_id,
            "phase is a child of the root"
        );
        assert_eq!(phase.label, "batch detail=3");

        // >= 2 ms end to end beats the default 1 ms threshold
        let (slow, slow_recorded) = obs.slow_requests(8);
        assert_eq!(slow_recorded, 1);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].op, "batch");
        assert_eq!(slow[0].trace_id, 0xABCD);
        assert_eq!(slow[0].spans.len(), 2, "root plus its phase");

        // the trace ring carries the same root with trace identity
        let ring = obs.spans(16);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].trace_id, 0xABCD);
        assert_eq!(ring[0].span_id, root.span_id);
    }

    #[test]
    fn attribution_totals_match_the_request_histogram_exactly() {
        let obs = Obs::enabled();
        obs.set_slow_threshold_us(0);
        for _ in 0..5 {
            let scope = obs.request_scope("net.request", "net.request_ns", "put", 0, 0);
            let t = obs.timer();
            obs.phase("txn.exec", t);
            scope.finish();
        }
        let attr = obs.attribution();
        let row = attr.iter().find(|e| e.op == "put").expect("put row");
        assert_eq!(row.requests, 5);
        let hist_sum = obs
            .with_registry(|r| r.hist("net.request_ns").map(|h| h.summary().sum))
            .flatten()
            .expect("histogram");
        assert_eq!(row.total_ns, hist_sum, "same measurement feeds both");
        let (name, count, _) = &row.phases[0];
        assert_eq!((name.as_str(), *count), ("txn.exec", 5));
    }

    #[test]
    fn phases_route_to_the_scope_owner_across_handles() {
        let router = Obs::enabled();
        let engine = Obs::enabled();
        router.set_slow_threshold_us(0);
        {
            let _scope = router.request_scope("net.request", "net.request_ns", "commit", 99, 0);
            // recorded via a different handle, as the engine does for
            // an inline log force
            engine.span_end("log.force", "log.force_ns", engine.timer(), String::new);
        }
        let (spans, _, _) = router.flight_spans(16);
        let force = spans
            .iter()
            .find(|s| s.name == "log.force")
            .expect("routed");
        assert_eq!(force.trace_id, 99);
        assert_eq!(force.label, "commit");
        // the engine's own recorder saw nothing; its trace ring did
        assert_eq!(engine.flight_spans(16).1, 0);
        assert_eq!(engine.spans(16).len(), 1);
        // attribution for the phase landed on the router under the op
        let row = router
            .attribution()
            .into_iter()
            .find(|e| e.op == "commit")
            .expect("commit row");
        assert!(row
            .phases
            .iter()
            .any(|(n, c, _)| n == "log.force" && *c == 1));
    }

    #[test]
    fn unscoped_phases_attribute_to_system() {
        let obs = Obs::enabled();
        obs.phase("log.force", obs.timer());
        let (spans, recorded, _) = obs.flight_spans(4);
        assert_eq!(recorded, 1);
        assert_eq!(spans[0].trace_id, 0);
        assert_eq!(spans[0].label, crate::flight::SYSTEM_OP);
        assert_eq!(current_trace_id(), 0);
        let row = &obs.attribution()[0];
        assert_eq!(row.op, crate::flight::SYSTEM_OP);
        assert_eq!(row.requests, 0);
    }

    #[test]
    fn nested_scopes_restore_the_outer_scope() {
        let obs = Obs::enabled();
        obs.set_slow_threshold_us(0);
        let outer = obs.request_scope("net.request", "net.request_ns", "outer", 1, 0);
        {
            let inner = obs.request_scope("net.request", "net.request_ns", "inner", 2, 0);
            assert_eq!(current_trace_id(), 2);
            inner.finish();
        }
        assert_eq!(current_trace_id(), 1, "outer scope restored");
        outer.finish();
        assert_eq!(current_trace_id(), 0);
    }
}
