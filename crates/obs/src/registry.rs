//! The metrics registry and the cloneable [`Obs`] handle.
//!
//! [`Obs`] follows the same idiom as the audit handle: a disabled handle
//! is an `Option::None` and every operation on it is a no-op that never
//! takes a lock, allocates, or reads the clock — label closures are not
//! even invoked. An enabled handle shares one registry + trace buffer
//! across every component it is cloned into (engine, checkpointer, log
//! manager, recovery, simulator), so a snapshot sees the whole system.

use crate::hist::Histogram;
use crate::trace::{SpanRecord, TraceBuffer, DEFAULT_SPAN_CAPACITY};
use mmdb_sync::{ContentionSink, LockRank, RankedMutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Sorted `(name, counter)`, `(name, gauge)` and `(name, histogram
/// summary)` triple produced by [`Obs::dump`].
pub type RegistryDump = (
    Vec<(String, u64)>,
    Vec<(String, u64)>,
    Vec<(String, crate::HistSummary)>,
);

/// Named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

struct ObsInner {
    epoch: Instant,
    // The registry locks sit at the very bottom of the lock hierarchy
    // (DESIGN.md §6.6): every subsystem records telemetry while holding
    // its own locks, so nothing may be acquired below these. They carry
    // no contention sink of their own — the sink *is* this registry, and
    // instrumenting it with itself would recurse.
    metrics: RankedMutex<Registry>,
    trace: RankedMutex<TraceBuffer>,
}

impl std::fmt::Debug for ObsInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsInner").finish_non_exhaustive()
    }
}

/// A started wall-clock measurement. Disabled handles hand out inert
/// timers, so the clock is only read when telemetry is on.
#[derive(Debug, Default)]
pub struct Timer(Option<Instant>);

/// Cloneable telemetry handle; see module docs.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A live handle with the default span-ring capacity.
    pub fn enabled() -> Obs {
        Obs::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A live handle retaining at most `span_capacity` finished spans.
    pub fn with_capacity(span_capacity: usize) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                epoch: Instant::now(),
                metrics: RankedMutex::new(
                    "obs.metrics",
                    LockRank::OBS_METRICS,
                    Registry::default(),
                ),
                trace: RankedMutex::new(
                    "obs.trace",
                    LockRank::OBS_TRACE,
                    TraceBuffer::new(span_capacity),
                ),
            })),
        }
    }

    /// The no-op handle.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a wall-clock measurement (inert when disabled).
    pub fn timer(&self) -> Timer {
        Timer(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Add `delta` to the counter `name`.
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut m = inner.metrics.lock();
            *m.counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut m = inner.metrics.lock();
            m.gauges.insert(name, value);
        }
    }

    /// Record `value` into the histogram `name`.
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut m = inner.metrics.lock();
            m.hists.entry(name).or_default().record(value);
        }
    }

    /// Record a duration in microseconds into the histogram `name` —
    /// for intervals measured by the caller rather than a [`Timer`].
    pub fn observe_duration_us(&self, name: &'static str, d: std::time::Duration) {
        self.observe(name, u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Record the elapsed time of `timer` (in ns) into the histogram
    /// `hist` without emitting a span.
    pub fn observe_timer(&self, hist: &'static str, timer: Timer) {
        if let (Some(inner), Some(started)) = (&self.inner, timer.0) {
            let ns = elapsed_ns(started);
            let mut m = inner.metrics.lock();
            m.hists.entry(hist).or_default().record(ns);
        }
    }

    /// Finish a span started at `timer`: push a trace record named `span`
    /// (labelled by `label`, which is only invoked when enabled) and
    /// record the duration into the histogram `hist`.
    pub fn span_end(
        &self,
        span: &'static str,
        hist: &'static str,
        timer: Timer,
        label: impl FnOnce() -> String,
    ) {
        if let (Some(inner), Some(started)) = (&self.inner, timer.0) {
            let dur_ns = elapsed_ns(started);
            let start_ns = started
                .saturating_duration_since(inner.epoch)
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            inner.trace.lock().push(span, label(), start_ns, dur_ns);
            let mut m = inner.metrics.lock();
            m.hists.entry(hist).or_default().record(dur_ns);
        }
    }

    /// The most recent `limit` finished spans, oldest first.
    pub fn spans(&self, limit: usize) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.trace.lock().recent(limit),
            None => Vec::new(),
        }
    }

    /// Total spans recorded and spans evicted from the ring.
    pub fn span_stats(&self) -> (u64, u64) {
        match &self.inner {
            Some(inner) => {
                let t = inner.trace.lock();
                (t.recorded(), t.dropped())
            }
            None => (0, 0),
        }
    }

    /// Run `f` against the registry (no-op when disabled).
    pub fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&inner.metrics.lock()))
    }

    /// Dump the registry contents for snapshotting: sorted counters,
    /// gauges and histogram summaries.
    pub fn dump(&self) -> RegistryDump {
        match &self.inner {
            Some(inner) => {
                let m = inner.metrics.lock();
                (
                    m.counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                    m.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                    m.hists
                        .iter()
                        .map(|(k, h)| (k.to_string(), h.summary()))
                        .collect(),
                )
            }
            None => (Vec::new(), Vec::new(), Vec::new()),
        }
    }
}

impl Registry {
    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if any value was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }
}

/// The registry doubles as the [`ContentionSink`] for every
/// [`RankedMutex`] in the system: a contended acquisition becomes a
/// `sync.<name>.contended` counter bump and hold intervals land in the
/// `sync.<name>.held_us` histogram. Sinks are invoked only *after* the
/// instrumented guard is released, so recording here (rank
/// `OBS_METRICS`, the hierarchy floor) can never invert the order.
impl ContentionSink for Obs {
    fn contended(&self, metric: &'static str) {
        self.counter(metric, 1);
    }

    fn held_us(&self, metric: &'static str, us: u64) {
        self.observe(metric, us);
    }
}

impl Obs {
    /// This handle as a contention sink for `RankedMutex::set_sink`, or
    /// `None` when disabled (leaving instrumented locks on their
    /// zero-overhead fast path).
    pub fn contention_sink(&self) -> Option<Arc<dyn ContentionSink>> {
        self.inner
            .as_ref()
            .map(|_| Arc::new(self.clone()) as Arc<dyn ContentionSink>)
    }
}

fn elapsed_ns(started: Instant) -> u64 {
    started.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let mut called = false;
        obs.counter("c", 1);
        obs.observe("h", 42);
        obs.span_end("s", "s_ns", obs.timer(), || {
            called = true;
            String::new()
        });
        assert!(!called, "label closure must not run when disabled");
        assert!(obs.spans(10).is_empty());
        assert_eq!(obs.with_registry(|r| r.counter_value("c")), None);
    }

    #[test]
    fn enabled_handle_shares_state_across_clones() {
        let a = Obs::enabled();
        let b = a.clone();
        a.counter("txn.committed", 2);
        b.counter("txn.committed", 3);
        b.gauge("seg.total", 32);
        b.observe("lat", 100);
        assert_eq!(
            a.with_registry(|r| r.counter_value("txn.committed")),
            Some(5)
        );
        assert_eq!(
            a.with_registry(|r| r.gauge_value("seg.total")),
            Some(Some(32))
        );
        assert_eq!(
            a.with_registry(|r| r.hist("lat").map(|h| h.count())),
            Some(Some(1))
        );
    }

    #[test]
    fn span_end_records_trace_and_histogram() {
        let obs = Obs::enabled();
        let t = obs.timer();
        obs.span_end("ckpt.pass", "ckpt.pass_ns", t, || "FUZZY".into());
        let spans = obs.spans(10);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "ckpt.pass");
        assert_eq!(spans[0].label, "FUZZY");
        assert_eq!(
            obs.with_registry(|r| r.hist("ckpt.pass_ns").map(|h| h.count())),
            Some(Some(1))
        );
        assert_eq!(obs.span_stats(), (1, 0));
    }

    #[test]
    fn stale_default_timer_is_ignored() {
        let obs = Obs::enabled();
        obs.span_end("x", "x_ns", Timer::default(), || "ignored".into());
        assert!(obs.spans(10).is_empty());
    }
}
