//! Lightweight scoped spans with a bounded ring-buffer sink.
//!
//! A span is a named, labelled interval of wall-clock time. Finished spans
//! land in a fixed-capacity ring buffer (oldest evicted first, with an
//! eviction counter) so tracing never grows without bound and never
//! allocates past the cap. Span timestamps are offsets from the owning
//! [`crate::Obs`] handle's creation instant, so a trace reads as a single
//! monotonic timeline.

use std::collections::VecDeque;

/// Default ring capacity (finished spans retained).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotone sequence number (1-based, never reused).
    pub seq: u64,
    /// Static span name, e.g. `ckpt.pass`.
    pub name: &'static str,
    /// Free-form label, e.g. the algorithm or segment id.
    pub label: String,
    /// Start offset in nanoseconds since the handle was created.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace id of the enclosing request (0 = not request-scoped;
    /// such spans render flat, exactly as before the extension).
    pub trace_id: u64,
    /// This span's id (0 = unidentified).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span: u64,
}

impl SpanRecord {
    /// Render as one human-readable trace line.
    pub fn render(&self) -> String {
        format!(
            "[{:>12.6}s] {:>11} ns  {:<22} {}",
            self.start_ns as f64 / 1e9,
            self.dur_ns,
            self.name,
            self.label
        )
    }
}

/// Trace identity attached to a span (all zero when the span was not
/// recorded inside a request scope).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanIds {
    /// Trace id of the enclosing request.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id.
    pub parent_span: u64,
}

/// Fixed-capacity span sink.
#[derive(Debug)]
pub struct TraceBuffer {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty buffer retaining at most `capacity` spans.
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            spans: VecDeque::with_capacity(capacity.min(DEFAULT_SPAN_CAPACITY)),
            capacity: capacity.max(1),
            next_seq: 1,
            dropped: 0,
        }
    }

    /// Append a finished span, evicting the oldest past capacity.
    pub fn push(&mut self, name: &'static str, label: String, start_ns: u64, dur_ns: u64) {
        self.push_traced(name, label, start_ns, dur_ns, SpanIds::default());
    }

    /// Like [`TraceBuffer::push`], carrying trace identity.
    pub fn push_traced(
        &mut self,
        name: &'static str,
        label: String,
        start_ns: u64,
        dur_ns: u64,
        ids: SpanIds,
    ) {
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(SpanRecord {
            seq: self.next_seq,
            name,
            label,
            start_ns,
            dur_ns,
            trace_id: ids.trace_id,
            span_id: ids.span_id,
            parent_span: ids.parent_span,
        });
        self.next_seq += 1;
    }

    /// The most recent `limit` spans, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<SpanRecord> {
        let skip = self.spans.len().saturating_sub(limit);
        self.spans.iter().skip(skip).cloned().collect()
    }

    /// Total spans ever recorded.
    pub fn recorded(&self) -> u64 {
        self.next_seq - 1
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.push("x", format!("{i}"), i * 10, 1);
        }
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        let recent = t.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].label, "2");
        assert_eq!(recent[2].label, "4");
        assert_eq!(recent[2].seq, 5);
    }

    #[test]
    fn recent_respects_limit() {
        let mut t = TraceBuffer::new(100);
        for i in 0..10u64 {
            t.push("y", String::new(), i, 0);
        }
        let last2 = t.recent(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[0].seq, 9);
        assert_eq!(last2[1].seq, 10);
    }
}
